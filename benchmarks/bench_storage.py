"""Section 4 storage benchmark: temporary arrays per specification.

Wall time measures full naive vs optimized execution (allocation of the
temporaries included); extra_info records the 12 / 3 / 0 temporary
counts and the peak memory the paper's storage argument is about.
"""

import pytest

from repro import kernels
from repro.baselines.naive import compile_xlhpf_like
from repro.compiler import compile_hpf
from repro.experiments.fig11 import count_temp_storage
from repro.machine import Machine

N = 256
GRID = (2, 2)

SPECS = [
    ("nine_point_single", kernels.NINE_POINT_CSHIFT, "DST", 12),
    ("problem9", kernels.PURDUE_PROBLEM9, "T", 3),
]


@pytest.mark.parametrize("name,source,out,expected_temps", SPECS,
                         ids=[s[0] for s in SPECS])
def test_naive_storage(benchmark, name, source, out, expected_temps):
    compiled = compile_xlhpf_like(source, bindings={"N": N},
                                  outputs={out})
    assert count_temp_storage(compiled, out) == expected_temps
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine)

    result = benchmark(run)
    benchmark.extra_info["temp_storage"] = expected_temps
    benchmark.extra_info["peak_bytes_per_pe"] = result.peak_memory_per_pe


@pytest.mark.parametrize("name,source,out,_expected", SPECS,
                         ids=[s[0] for s in SPECS])
def test_optimized_storage(benchmark, name, source, out, _expected):
    compiled = compile_hpf(source, bindings={"N": N}, level="O4",
                           outputs={out})
    assert count_temp_storage(compiled, out) == 0
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine)

    result = benchmark(run)
    benchmark.extra_info["temp_storage"] = 0
    benchmark.extra_info["peak_bytes_per_pe"] = result.peak_memory_per_pe
