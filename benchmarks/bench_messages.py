"""Section 3.3 benchmark: communication unioning across stencil shapes.

Wall time here measures the *communication phase* of each compiled
kernel (the overlap shifts on the simulated network); extra_info records
the 12->4-style shift-call reductions the paper reports in Figure 6.
"""

import pytest

from repro import kernels
from repro.compiler import compile_hpf
from repro.plan import OverlapShiftOp
from repro.machine import Machine

GRID = (2, 2)

CASES = [
    ("nine_point_cshift", kernels.NINE_POINT_CSHIFT, "DST", 128, 12, 4),
    ("problem9", kernels.PURDUE_PROBLEM9, "T", 128, 8, 4),
    ("twentyfive_point", kernels.TWENTYFIVE_POINT_ARRAY_SYNTAX, "DST",
     128, 40, 4),
    ("box27_3d", kernels.TWENTYSEVEN_POINT_3D_CSHIFT, "DST", 24, 54, 6),
]


def shift_count(compiled) -> int:
    return sum(1 for op in compiled.plan.walk_ops()
               if isinstance(op, OverlapShiftOp))


@pytest.mark.parametrize("name,source,out,n,before,after", CASES,
                         ids=[c[0] for c in CASES])
def test_unioned_communication(benchmark, name, source, out, n, before,
                               after):
    unopt = compile_hpf(source, bindings={"N": n}, level="O2",
                        outputs={out})
    opt = compile_hpf(source, bindings={"N": n}, level="O3",
                      outputs={out})
    assert shift_count(unopt) == before
    assert shift_count(opt) == after

    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return opt.run(machine)

    result = benchmark(run)
    benchmark.extra_info["shifts_before"] = before
    benchmark.extra_info["shifts_after"] = after
    benchmark.extra_info["messages"] = result.report.messages


def test_message_reduction_times():
    """Unioned communication must be measurably cheaper in the model."""
    for name, source, out, n, *_ in CASES:
        t = {}
        for level in ("O2", "O3"):
            compiled = compile_hpf(source, bindings={"N": n},
                                   level=level, outputs={out})
            machine = Machine(grid=GRID, keep_message_log=False)
            res = compiled.run(machine)
            t[level] = (res.report.pe_comm_times[0], res.report.messages)
        assert t["O3"][1] <= t["O2"][1], name
        assert t["O3"][0] <= t["O2"][0] + 1e-12, name
