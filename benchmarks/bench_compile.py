"""Compiler throughput: time to run the full pass pipeline.

Not a paper exhibit, but a practical property of the system — the
strategy is a fixed sequence of linear-ish passes and should compile
stencils in milliseconds.
"""

import pytest

from repro import kernels
from repro.compiler import compile_hpf

CASES = [
    ("five_point", kernels.FIVE_POINT_ARRAY_SYNTAX, "DST"),
    ("nine_point_cshift", kernels.NINE_POINT_CSHIFT, "DST"),
    ("problem9", kernels.PURDUE_PROBLEM9, "T"),
    ("twentyfive_point", kernels.TWENTYFIVE_POINT_ARRAY_SYNTAX, "DST"),
    ("box27_3d", kernels.TWENTYSEVEN_POINT_3D_CSHIFT, "DST"),
]


@pytest.mark.parametrize("name,source,out", CASES,
                         ids=[c[0] for c in CASES])
def test_compile_o4(benchmark, name, source, out):
    compiled = benchmark(compile_hpf, source, bindings={"N": 128},
                         level="O4", outputs={out})
    benchmark.extra_info["overlap_shifts"] = compiled.report.overlap_shifts
    benchmark.extra_info["loop_nests"] = compiled.report.loop_nests


@pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3", "O4"])
def test_compile_levels(benchmark, level):
    benchmark(compile_hpf, kernels.PURDUE_PROBLEM9, bindings={"N": 128},
              level=level, outputs={"T"})
