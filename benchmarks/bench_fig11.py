"""Figure 11 benchmark: single-statement vs multi-statement under xlhpf.

Wall time covers the naive backend's full shift movement (temporary
copies included); extra_info carries the peak per-PE memory and the
temporary-array counts whose 12-vs-3 gap drives the paper's
out-of-memory crossover.
"""

import pytest

from repro import kernels
from repro.baselines.naive import compile_xlhpf_like
from repro.errors import SimulatedOutOfMemoryError
from repro.experiments.fig11 import count_temp_storage
from repro.machine import Machine

N = 256
GRID = (2, 2)

SPECS = [
    ("single_statement", kernels.NINE_POINT_CSHIFT, "DST", "SRC"),
    ("problem9", kernels.PURDUE_PROBLEM9, "T", "U"),
]


@pytest.mark.parametrize("name,source,out,inp", SPECS,
                         ids=[s[0] for s in SPECS])
def test_naive_execution(benchmark, input_grid, name, source, out, inp):
    compiled = compile_xlhpf_like(source, bindings={"N": N},
                                  outputs={out})
    u = input_grid(N)
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine, inputs={inp: u})

    result = benchmark(run)
    benchmark.extra_info["temp_storage"] = count_temp_storage(compiled,
                                                              out)
    benchmark.extra_info["peak_bytes_per_pe"] = result.peak_memory_per_pe
    benchmark.extra_info["modelled_time_s"] = result.modelled_time
    benchmark.extra_info["N"] = N


def test_fig11_oom_crossover():
    """The 12-temporary form must exhaust memory at a size the
    3-temporary form survives."""
    cap = 1024 * 1024
    single = compile_xlhpf_like(kernels.NINE_POINT_CSHIFT,
                                bindings={"N": 384}, outputs={"DST"})
    multi = compile_xlhpf_like(kernels.PURDUE_PROBLEM9,
                               bindings={"N": 384}, outputs={"T"})
    with pytest.raises(SimulatedOutOfMemoryError):
        single.run(Machine(grid=GRID, memory_per_pe=cap))
    res = multi.run(Machine(grid=GRID, memory_per_pe=cap))
    assert res.modelled_time > 0
