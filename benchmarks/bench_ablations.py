"""Ablation benchmarks for the design choices DESIGN.md calls out:
loop fusion, unroll-and-jam depth, and RSD corner handling."""

import pytest

from repro import kernels
from repro.compiler import compile_hpf
from repro.machine import Machine

N = 256
GRID = (2, 2)


@pytest.mark.parametrize("config,limit", [("fused", 0), ("unfused", 1)],
                         ids=["fused", "unfused"])
def test_fusion_ablation(benchmark, config, limit):
    compiled = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": N},
                           level="O4", outputs={"T"}, fusion_limit=limit)
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine)

    result = benchmark(run)
    benchmark.extra_info["config"] = config
    benchmark.extra_info["modelled_time_s"] = result.modelled_time
    benchmark.extra_info["loop_nests"] = compiled.report.loop_nests


@pytest.mark.parametrize("unroll", [1, 2, 4, 8])
def test_unroll_jam_ablation(benchmark, unroll):
    compiled = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": N},
                           level="O4", outputs={"T"}, unroll_jam=unroll)
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine)

    result = benchmark(run)
    benchmark.extra_info["unroll_jam"] = unroll
    benchmark.extra_info["modelled_time_s"] = result.modelled_time


@pytest.mark.parametrize("level", ["O2", "O3"], ids=["corners-chained",
                                                     "corners-rsd"])
def test_corner_handling_ablation(benchmark, level):
    compiled = compile_hpf(kernels.NINE_POINT_CSHIFT, bindings={"N": N},
                           level=level, outputs={"DST"})
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine)

    result = benchmark(run)
    benchmark.extra_info["level"] = level
    benchmark.extra_info["messages"] = result.report.messages
    benchmark.extra_info["modelled_time_s"] = result.modelled_time
