"""CI bench smoke: backend wall-clock + plan-cache latency artifacts.

Measures (1) real execution wall-clock of the 9-point 512x512 kernel
under both backends, (2) cold/warm compile latency through the plan
cache, and (3) the communication-profile matrix totals of ``nine_point``
at every optimization level, plus (4) an instrumented compiled-backend
run capturing cache hit rates, JIT materialization time, and per-nest
native/fallback counts; writes ``BENCH_exec.json``,
``BENCH_compile.json``, ``PROFILE_smoke.json``, and
``BENCH_metrics.json``, and fails if a
gated metric regresses >20% against the recorded baseline
(``benchmarks/baselines/bench_smoke_baseline.json``) or if the
message-count monotonicity invariant (O0 >= O1 >= ... >= O4 — each
optimization level can only remove or union messages, never add them)
is violated.

Gated metrics are *ratios of times measured in the same process*
(vectorized speedup over per-PE, warm-hit speedup over cold compile) —
stable across runner hardware, unlike absolute milliseconds, which are
reported for information only.

Usage::

    python benchmarks/bench_smoke.py                 # measure + gate
    python benchmarks/bench_smoke.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

BASELINE = Path(__file__).parent / "baselines" / \
    "bench_smoke_baseline.json"
#: fail when a gated (higher-is-better) metric drops below this fraction
#: of its recorded baseline
REGRESSION_FLOOR = 0.8

#: absolute floor for the parallel backend's real speedup over perpe:
#: ownership execution must actually beat the serial walk on a 2-core
#: runner.  Skipped (with a printed warning) on single-core machines,
#: where a second worker has no core to run on.
PARALLEL_SPEEDUP_FLOOR = 1.2

#: absolute floor for the compiled backend's real speedup over the
#: vectorized slabs: fused/tiled native loop nests must beat NumPy's
#: whole-array evaluation by an integer factor.  Skipped (with a
#: printed notice) when numba is not importable — the graceful
#: sub-Numba fallback runs the same slabs, so the "speedup" would be
#: ~1x by construction and gauge nothing.
COMPILED_SPEEDUP_FLOOR = 2.0


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_exec(kernel: str = "nine_point", n: int = 512,
               grid: tuple[int, ...] = (32, 32), iterations: int = 2,
               repeats: int = 5, workers: int = 2) -> dict:
    from repro.compiler import compile_hpf
    from repro.kernels import KERNELS
    from repro.machine import Machine

    spec = KERNELS[kernel]
    compiled = compile_hpf(spec.source, bindings={"N": n}, level="O4",
                           outputs=set(spec.outputs))
    out = {"kernel": kernel, "n": n, "grid": list(grid),
           "iterations": iterations, "workers": workers}
    for backend in ("perpe", "vectorized"):
        out[f"{backend}_ms"] = _best(
            lambda: compiled.run(Machine(grid=grid,
                                         keep_message_log=False),
                                 iterations=iterations,
                                 backend=backend),
            repeats) * 1e3
    out["vectorized_speedup"] = out["perpe_ms"] / out["vectorized_ms"]
    # the parallel backend pays real process/shared-memory startup per
    # run, so fewer repeats suffice (best-of semantics unchanged);
    # ownership execution makes the work genuinely divide across
    # workers, so with >= 2 cores the speedup must clear
    # PARALLEL_SPEEDUP_FLOOR
    out["parallel_ms"] = _best(
        lambda: compiled.run(Machine(grid=grid, keep_message_log=False),
                             iterations=iterations, backend="parallel",
                             workers=workers),
        max(2, repeats - 2)) * 1e3
    out["parallel_speedup"] = out["perpe_ms"] / out["parallel_ms"]
    # compiled: generated fused/tiled loop nests, native under numba.
    # One warm-up run pays the lowering + JIT compile outside the
    # timed samples (kernels are cached in-process by content key).
    from repro.codegen import codegen_options, numba_available
    with codegen_options(jit="auto"):
        compiled.run(Machine(grid=grid, keep_message_log=False),
                     iterations=1, backend="compiled")
        out["compiled_ms"] = _best(
            lambda: compiled.run(Machine(grid=grid,
                                         keep_message_log=False),
                                 iterations=iterations,
                                 backend="compiled"),
            repeats) * 1e3
    out["compiled_speedup"] = out["vectorized_ms"] / out["compiled_ms"]
    out["compiled_jit"] = "numba" if numba_available() \
        else "slab-fallback"
    return out


def bench_compile(repeats: int = 5, warm_repeats: int = 50) -> dict:
    from repro.compiler import PlanCache
    from repro.kernels import KERNELS, compile_kernel

    cold_ms = {}
    for name in sorted(KERNELS):
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            compile_kernel(name, bindings={"N": 128})
            samples.append((time.perf_counter() - t0) * 1e3)
        cold_ms[name] = statistics.median(samples)

    cache = PlanCache()
    compile_kernel("purdue9", bindings={"N": 128}, cache=cache)
    warm_ms = _best(
        lambda: compile_kernel("purdue9", bindings={"N": 128},
                               cache=cache), warm_repeats) * 1e3
    return {"cold_ms": cold_ms, "warm_hit_ms": warm_ms,
            "warm_hit_speedup": cold_ms["purdue9"] / warm_ms,
            "cache": cache.stats.as_dict()}


#: the warm persistent-cache hit must beat a cold compile by this much
PERSISTENT_SPEEDUP_FLOOR = 10.0


def bench_persistent(kernel: str = "box27_3d", n: int = 64,
                     repeats: int = 3) -> dict:
    """Cold vs warm compile latency through the on-disk plan cache,
    each sample in a **fresh interpreter** — the scenario the
    persistent cache exists for (the in-memory cache can't help a new
    process).  The 27-point 3-D kernel is the slowest cold compile, so
    it bounds the realistic saving."""
    import os
    import subprocess
    import tempfile

    src_dir = str(Path(__file__).resolve().parents[1] / "src")
    code = (
        "import sys, time\n"
        "from repro.compiler import PersistentPlanCache\n"
        "from repro.kernels import compile_kernel\n"
        "cache = PersistentPlanCache(sys.argv[1])\n"
        "t0 = time.perf_counter()\n"
        f"compile_kernel({kernel!r}, bindings={{'N': {n}}}, "
        "cache=cache)\n"
        "print((time.perf_counter() - t0) * 1e3)\n")

    def sample(cache_dir: str) -> float:
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + \
            env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", code, cache_dir],
                             capture_output=True, text=True, check=True,
                             env=env)
        return float(out.stdout.strip())

    with tempfile.TemporaryDirectory() as cache_dir:
        cold_ms = sample(cache_dir)           # miss: compile + store
        warm_ms = min(sample(cache_dir)       # hit: load + deserialize
                      for _ in range(repeats))
    return {"kernel": kernel, "n": n, "cold_ms": cold_ms,
            "warm_ms": warm_ms,
            "persistent_warm_speedup": cold_ms / warm_ms}


def bench_metrics(kernel: str = "nine_point", n: int = 256,
                  grid: tuple[int, ...] = (4, 4)) -> dict:
    """One instrumented compiled-backend run: cache hit rates, JIT
    materialization time, per-nest native/fallback counts.

    Published as ``BENCH_metrics.json`` so CI archives the observability
    surface itself — a run where the kernel cache stops hitting or
    nests silently fall back to slabs shows up in the artifact diff
    even while the wall-clock gates still pass.
    """
    from repro.codegen import cache as kcache
    from repro.codegen import codegen_options, numba_available
    from repro.compiler import PlanCache, compile_hpf
    from repro.kernels import KERNELS
    from repro.machine import Machine
    from repro.obs import metrics as obs_metrics

    spec = KERNELS[kernel]
    plan_cache = PlanCache()
    kcache.clear_modules()
    # numba-or-python (not "auto"): always run generated kernels so the
    # JIT and kernel-cache series exist even on numba-less runners
    jit = "numba" if numba_available() else "python"
    with obs_metrics.use_registry() as registry, \
            codegen_options(jit=jit):
        for _ in range(3):  # repeat compiles: exercises the plan cache
            compiled = compile_hpf(spec.source, bindings={"N": n},
                                   level="O4",
                                   outputs=set(spec.outputs),
                                   cache=plan_cache)
        for _ in range(2):  # repeat runs: exercises the kernel cache
            compiled.run(Machine(grid=grid, keep_message_log=False),
                         iterations=1, backend="compiled")

    def series(name: str) -> dict[str, float]:
        metric = registry.get(name)
        if metric is None:
            return {}
        from repro.obs.metrics import format_labels
        return {format_labels(k) or "(total)": v
                for k, v in metric.samples()}

    jit = registry.get("repro_jit_materialize_seconds")
    jit_seconds = sum(v["sum"] for _, v in jit.samples()) if jit else 0.0
    nests = series("repro_codegen_nests_total")
    return {
        "kernel": kernel, "n": n, "grid": list(grid),
        "plan_cache": plan_cache.stats.snapshot(),
        "kernel_memory_cache": kcache.MEMORY_STATS.snapshot(),
        "cache_events": series("repro_cache_events_total"),
        "jit_materialize_seconds": jit_seconds,
        "nests_native": sum(v for k, v in nests.items()
                            if 'status="native"' in k),
        "nests_fallback": sum(v for k, v in nests.items()
                              if 'status="fallback"' in k),
        "nest_counts": nests,
    }


#: solver kernels swept by :func:`bench_solvers`; ``jacobi`` is the
#: gated one (its coefficient exchanges hoist and its double-buffer
#: copy swaps away), the other two are invariance witnesses — the loop
#: passes must not change their per-iteration cost at all
SOLVER_KERNELS = ("jacobi", "red_black", "cg")


def bench_solvers(n: int = 512, grid: tuple[int, ...] = (2, 2)) -> dict:
    """Per-iteration modelled message/byte counts of the whole-solver
    kernels at O4, with and without the loop-aware plan passes.

    The steady-state per-iteration cost is measured differentially —
    run the solver for 2 and for 4 iterations and divide the delta by
    2 — so one-time preheader exchanges (the hoisted invariant shifts)
    are charged to setup, not to the loop body.  Published as
    ``BENCH_solvers.json``; :func:`check_solvers` gates on it.
    """
    from repro.kernels import KERNELS, run_kernel

    out: dict = {"n": n, "grid": list(grid), "kernels": {}}
    for name in SOLVER_KERNELS:
        spec = KERNELS[name]
        trip_key = next(k for k in spec.default_bindings if k != "N")
        entry: dict = {}
        for mode, passes in (("plain", False), ("loop_aware", True)):
            totals = {}
            for trips in (2, 4):
                result = run_kernel(
                    name, grid=grid,
                    bindings={"N": n, trip_key: trips},
                    level="O4", plan_passes=passes)
                totals[trips] = (result.report.messages,
                                 result.report.message_bytes)
            entry[mode] = {
                "messages_per_iter":
                    (totals[4][0] - totals[2][0]) / 2,
                "bytes_per_iter":
                    (totals[4][1] - totals[2][1]) / 2,
                "messages_total_4iter": totals[4][0],
                "bytes_total_4iter": totals[4][1],
            }
        out["kernels"][name] = entry
    return out


def check_solvers(solver_res: dict) -> list[str]:
    """Loop-aware gate: Jacobi's steady-state per-iteration messages
    and modelled bytes must be *strictly* below the pre-pass plan's,
    and the passes must leave the invariant solvers' per-iteration
    cost untouched."""
    errors = []
    jac = solver_res["kernels"]["jacobi"]
    for metric in ("messages_per_iter", "bytes_per_iter"):
        plain, aware = jac["plain"][metric], jac["loop_aware"][metric]
        if not aware < plain:
            errors.append(
                f"jacobi: loop-aware {metric} {aware:g} not strictly "
                f"below plain {plain:g}")
    for name in SOLVER_KERNELS:
        if name == "jacobi":
            continue
        entry = solver_res["kernels"][name]
        for metric in ("messages_per_iter", "bytes_per_iter"):
            plain = entry["plain"][metric]
            aware = entry["loop_aware"][metric]
            if aware > plain:
                errors.append(
                    f"{name}: loop passes increased {metric} "
                    f"({plain:g} -> {aware:g})")
    return errors


#: optimization ladder for the profile monotonicity gate
LEVELS = ("O0", "O1", "O2", "O3", "O4")


def bench_profile(kernel: str = "nine_point", n: int = 64,
                  grid: tuple[int, ...] = (2, 2)) -> dict:
    """Comm-profile matrix totals of one kernel across O0..O4.

    Published as ``PROFILE_smoke.json`` so CI archives the message-count
    trajectory of the optimization ladder; :func:`check_monotonic`
    gates on it.
    """
    from repro.kernels import run_kernel

    levels = {}
    for level in LEVELS:
        result = run_kernel(kernel, grid=grid, bindings={"N": n},
                            level=level, profile=True)
        profile = result.profile
        levels[level] = {
            "messages": profile.totals["messages"],
            "message_bytes": profile.totals["message_bytes"],
            "messages_by_class": profile.totals["messages_by_class"],
            "bytes_by_class": profile.totals["bytes_by_class"],
        }
    return {"kernel": kernel, "n": n, "grid": list(grid),
            "levels": levels}


def check_monotonic(profile_res: dict) -> list[str]:
    """Message-count monotonicity violations along the O0..O4 ladder."""
    counts = [profile_res["levels"][lv]["messages"] for lv in LEVELS]
    errors = []
    for i in range(1, len(LEVELS)):
        if counts[i] > counts[i - 1]:
            errors.append(
                f"{profile_res['kernel']}: {LEVELS[i]} sends "
                f"{counts[i]} messages > {LEVELS[i - 1]}'s "
                f"{counts[i - 1]}")
    return errors


def gated_metrics(exec_res: dict, compile_res: dict,
                  persistent_res: dict) -> dict[str, float]:
    return {
        "exec.vectorized_speedup": exec_res["vectorized_speedup"],
        "exec.parallel_speedup": exec_res["parallel_speedup"],
        "exec.compiled_speedup": exec_res["compiled_speedup"],
        "compile.warm_hit_speedup": compile_res["warm_hit_speedup"],
        "compile.persistent_warm_speedup":
            persistent_res["persistent_warm_speedup"],
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out-dir", default=".",
                    help="where to write BENCH_*.json (default: cwd)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="record current gated metrics as the baseline")
    args = ap.parse_args(argv)

    exec_res = bench_exec()
    compile_res = bench_compile()
    persistent_res = bench_persistent()
    profile_res = bench_profile()
    metrics_res = bench_metrics()
    solver_res = bench_solvers()
    out_dir = Path(args.out_dir)
    (out_dir / "BENCH_solvers.json").write_text(
        json.dumps(solver_res, indent=2) + "\n")
    (out_dir / "BENCH_exec.json").write_text(
        json.dumps(exec_res, indent=2) + "\n")
    compile_res["persistent"] = persistent_res
    (out_dir / "BENCH_compile.json").write_text(
        json.dumps(compile_res, indent=2) + "\n")
    (out_dir / "PROFILE_smoke.json").write_text(
        json.dumps(profile_res, indent=2) + "\n")
    (out_dir / "BENCH_metrics.json").write_text(
        json.dumps(metrics_res, indent=2) + "\n")
    metrics = gated_metrics(exec_res, compile_res, persistent_res)
    print(f"exec: perpe {exec_res['perpe_ms']:.1f} ms, "
          f"vectorized {exec_res['vectorized_ms']:.1f} ms "
          f"({metrics['exec.vectorized_speedup']:.1f}x), "
          f"parallel[{exec_res['workers']}w] "
          f"{exec_res['parallel_ms']:.1f} ms "
          f"({metrics['exec.parallel_speedup']:.2f}x), "
          f"compiled[{exec_res['compiled_jit']}] "
          f"{exec_res['compiled_ms']:.1f} ms "
          f"({metrics['exec.compiled_speedup']:.2f}x vs vectorized)")
    print(f"compile: cold {compile_res['cold_ms']['purdue9']:.1f} ms, "
          f"warm hit {compile_res['warm_hit_ms'] * 1e3:.1f} us "
          f"({metrics['compile.warm_hit_speedup']:.0f}x), "
          f"hit rate {compile_res['cache']['hit_rate']:.2f}")
    print(f"persistent: {persistent_res['kernel']} cold "
          f"{persistent_res['cold_ms']:.1f} ms, warm "
          f"{persistent_res['warm_ms']:.1f} ms in a fresh process "
          f"({metrics['compile.persistent_warm_speedup']:.0f}x)")
    ladder = " >= ".join(
        f"{lv}:{profile_res['levels'][lv]['messages']}" for lv in LEVELS)
    print(f"profile: {profile_res['kernel']} messages {ladder}")
    print(f"metrics: plan-cache hit rate "
          f"{metrics_res['plan_cache']['hit_rate']:.2f}, kernel-cache "
          f"hit rate "
          f"{metrics_res['kernel_memory_cache']['hit_rate']:.2f}, jit "
          f"{metrics_res['jit_materialize_seconds'] * 1e3:.1f} ms, "
          f"nests {metrics_res['nests_native']:.0f} native / "
          f"{metrics_res['nests_fallback']:.0f} fallback")
    jac = solver_res["kernels"]["jacobi"]
    print(f"solvers: jacobi per-iter messages "
          f"{jac['plain']['messages_per_iter']:g} -> "
          f"{jac['loop_aware']['messages_per_iter']:g}, bytes "
          f"{jac['plain']['bytes_per_iter']:g} -> "
          f"{jac['loop_aware']['bytes_per_iter']:g} with loop-aware "
          f"passes")
    mono_errors = check_monotonic(profile_res)
    for err in mono_errors:
        print(f"gate profile.monotonic: {err} VIOLATION",
              file=sys.stderr)
    solver_errors = check_solvers(solver_res)
    for err in solver_errors:
        print(f"gate solvers.loop_aware: {err} VIOLATION",
              file=sys.stderr)
    mono_errors += solver_errors
    import os
    if (os.cpu_count() or 1) < 2:
        # one core cannot run two workers concurrently; the measured
        # "speedup" would only gauge scheduler interleaving
        print("gate exec.parallel_speedup: SKIPPED (single-core "
              "runner; needs >= 2 cores)")
        metrics.pop("exec.parallel_speedup")
    elif metrics["exec.parallel_speedup"] < PARALLEL_SPEEDUP_FLOOR:
        mono_errors.append(
            f"parallel backend only "
            f"{metrics['exec.parallel_speedup']:.2f}x faster than "
            f"perpe (floor {PARALLEL_SPEEDUP_FLOOR:.1f}x)")
        print(f"gate exec.parallel_floor: {mono_errors[-1]} VIOLATION",
              file=sys.stderr)
    if exec_res["compiled_jit"] != "numba":
        # sub-Numba fallback: the compiled backend ran the same slabs
        # as vectorized, so the ratio gauges nothing — skip, loudly
        print("gate exec.compiled_speedup: SKIPPED (numba not "
              "importable; compiled backend ran the graceful slab "
              "fallback)")
        metrics.pop("exec.compiled_speedup")
    elif metrics["exec.compiled_speedup"] < COMPILED_SPEEDUP_FLOOR:
        mono_errors.append(
            f"compiled backend only "
            f"{metrics['exec.compiled_speedup']:.2f}x faster than "
            f"vectorized (floor {COMPILED_SPEEDUP_FLOOR:.1f}x)")
        print(f"gate exec.compiled_floor: {mono_errors[-1]} VIOLATION",
              file=sys.stderr)
    if metrics["compile.persistent_warm_speedup"] < \
            PERSISTENT_SPEEDUP_FLOOR:
        mono_errors.append(
            f"persistent cache warm hit only "
            f"{metrics['compile.persistent_warm_speedup']:.1f}x faster "
            f"than cold (floor {PERSISTENT_SPEEDUP_FLOOR:.0f}x)")
        print(f"gate compile.persistent_floor: "
              f"{mono_errors[-1]} VIOLATION", file=sys.stderr)

    if args.update_baseline:
        BASELINE.parent.mkdir(parents=True, exist_ok=True)
        BASELINE.write_text(json.dumps({"metrics": metrics}, indent=2)
                            + "\n")
        print(f"baseline updated: {BASELINE}")
        return 0

    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; run with --update-baseline",
              file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE.read_text())["metrics"]
    failed = bool(mono_errors)
    for name, current in metrics.items():
        if name not in baseline:
            # e.g. a baseline recorded on a single-core machine has no
            # parallel entry; report, don't gate
            print(f"gate {name}: {current:.2f} (no baseline entry)")
            continue
        floor = baseline[name] * REGRESSION_FLOOR
        status = "ok" if current >= floor else "REGRESSION"
        print(f"gate {name}: {current:.2f} vs baseline "
              f"{baseline[name]:.2f} (floor {floor:.2f}) {status}")
        failed |= current < floor
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
