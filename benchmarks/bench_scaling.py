"""Strong-scaling benchmark: wall + modelled time across PE counts.

The extension study of repro.experiments.scaling as a benchmark: the
simulated wall time grows mildly with PE count (more Python-level PEs),
while the modelled machine time — the series the study plots — drops
nearly linearly until latency dominates.
"""

import pytest

from repro import kernels
from repro.compiler import compile_hpf
from repro.machine import Machine

N = 256


@pytest.mark.parametrize("grid", [(1, 1), (2, 2), (4, 4)],
                         ids=["1pe", "4pe", "16pe"])
def test_problem9_scaling(benchmark, grid, input_grid):
    compiled = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": N},
                           level="O4", outputs={"T"})
    u = input_grid(N)
    machine = Machine(grid=grid, keep_message_log=False)

    def run():
        return compiled.run(machine, inputs={"U": u})

    result = benchmark(run)
    npes = grid[0] * grid[1]
    benchmark.extra_info["npes"] = npes
    benchmark.extra_info["modelled_time_s"] = result.modelled_time
    benchmark.extra_info["messages"] = result.report.messages


def test_modelled_speedup_shape():
    times = {}
    compiled = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": N},
                           level="O4", outputs={"T"})
    for grid in [(1, 1), (2, 2), (4, 4)]:
        machine = Machine(grid=grid, keep_message_log=False)
        times[grid] = compiled.run(machine).modelled_time
    assert times[(1, 1)] > times[(2, 2)] > times[(4, 4)]
    # at N=256 the fixed message latency already costs some efficiency;
    # 4 PEs still must buy well over 2x
    assert times[(1, 1)] / times[(2, 2)] > 2.0
