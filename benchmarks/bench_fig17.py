"""Figure 17 benchmark: step-wise optimization of Problem 9.

Wall time measures real execution of the compiled plan on the simulated
4-PE machine (data movement + NumPy subgrid computation); the modelled
SP-2 time — the series Figure 17 plots — is attached as extra_info.
The paper's shape: every cumulative level is faster, O4 about 5x over
O0, and the xlhpf-like baseline an order of magnitude beyond that.
"""

import pytest

from repro import kernels
from repro.baselines.naive import compile_xlhpf_like
from repro.compiler import compile_hpf
from repro.machine import Machine

N = 256
GRID = (2, 2)

LEVELS = ["O0", "O1", "O2", "O3", "O4"]


def _compiled(level: str):
    return compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": N},
                       level=level, outputs={"T"})


@pytest.mark.parametrize("level", LEVELS)
def test_problem9_level(benchmark, level, input_grid):
    compiled = _compiled(level)
    u = input_grid(N)
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine, inputs={"U": u})

    result = benchmark(run)
    benchmark.extra_info["level"] = level
    benchmark.extra_info["modelled_time_s"] = result.modelled_time
    benchmark.extra_info["messages"] = result.report.messages
    benchmark.extra_info["copies"] = result.report.copies
    benchmark.extra_info["N"] = N


def test_problem9_xlhpf_like(benchmark, input_grid):
    compiled = compile_xlhpf_like(kernels.PURDUE_PROBLEM9,
                                  bindings={"N": N}, outputs={"T"})
    u = input_grid(N)
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine, inputs={"U": u})

    result = benchmark(run)
    benchmark.extra_info["level"] = "xlhpf-like"
    benchmark.extra_info["modelled_time_s"] = result.modelled_time
    benchmark.extra_info["N"] = N


def test_fig17_ladder_shape():
    """Regenerate the figure's series and assert the paper's shape."""
    times = {}
    for level in LEVELS:
        machine = Machine(grid=GRID, keep_message_log=False)
        times[level] = _compiled(level).run(machine).modelled_time
    ladder = [times[lv] for lv in LEVELS]
    assert ladder == sorted(ladder, reverse=True)
    assert 2.5 <= times["O0"] / times["O4"] <= 10  # paper: 5.19x
