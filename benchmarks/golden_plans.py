"""Golden plan documents: freeze every named kernel's compiled plan.

Each named kernel is compiled at O4 (N=8) and serialized with
:mod:`repro.plan.serialize`; the JSON documents live under
``benchmarks/goldens/`` next to a manifest recording the
``PLAN_SCHEMA_VERSION`` they were written at.

``--check`` (the CI mode) recompiles every kernel and fails if any
plan's JSON differs from its golden **while the schema version is
unchanged** — an unannounced change to codegen output or the
serialization format.  Bumping ``PLAN_SCHEMA_VERSION`` is the explicit
declare-your-intent step: the check then tells you to regenerate with
``--update`` instead of failing.

Usage::

    python benchmarks/golden_plans.py --check
    python benchmarks/golden_plans.py --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "goldens"
MANIFEST = GOLDEN_DIR / "MANIFEST.json"
LEVEL = "O4"
N = 8

#: Loop-carrying solver kernels additionally frozen with
#: ``plan_passes=True`` (as ``<name>+passes`` documents), pinning the
#: loop-aware optimizer's output — hoisted preheader exchanges and
#: ping-pong buffer swaps — alongside the plain plans.
LOOP_KERNELS = ("cg", "jacobi", "red_black")


def golden_path(kernel: str) -> Path:
    return GOLDEN_DIR / f"{kernel}.{LEVEL}.json"


def current_documents() -> dict[str, str]:
    from repro.kernels import KERNELS, compile_kernel
    from repro.plan import plan_to_json

    docs = {}
    for name in sorted(KERNELS):
        compiled = compile_kernel(name, bindings={"N": N}, level=LEVEL)
        docs[name] = plan_to_json(compiled.plan)
        if name in LOOP_KERNELS:
            compiled = compile_kernel(name, bindings={"N": N},
                                      level=LEVEL, plan_passes=True)
            docs[f"{name}+passes"] = plan_to_json(compiled.plan)
    return docs


def update() -> int:
    from repro.plan import PLAN_SCHEMA_VERSION

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    docs = current_documents()
    for name, doc in docs.items():
        golden_path(name).write_text(doc)
    MANIFEST.write_text(json.dumps(
        {"schema": PLAN_SCHEMA_VERSION, "level": LEVEL, "n": N,
         "kernels": sorted(docs)}, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(docs)} golden plans to {GOLDEN_DIR} "
          f"(schema v{PLAN_SCHEMA_VERSION})")
    return 0


def check() -> int:
    from repro.plan import PLAN_SCHEMA_VERSION

    if not MANIFEST.exists():
        print(f"no golden manifest at {MANIFEST}; run with --update",
              file=sys.stderr)
        return 1
    manifest = json.loads(MANIFEST.read_text())
    if manifest["schema"] != PLAN_SCHEMA_VERSION:
        print(f"PLAN_SCHEMA_VERSION bumped "
              f"({manifest['schema']} -> {PLAN_SCHEMA_VERSION}): "
              f"goldens are stale by declaration; regenerate with "
              f"--update", file=sys.stderr)
        return 1
    docs = current_documents()
    failed = []
    for name, doc in docs.items():
        path = golden_path(name)
        if not path.exists():
            failed.append(f"{name}: no golden at {path}")
            continue
        if path.read_text() != doc:
            failed.append(
                f"{name}: compiled plan differs from {path.name}")
    missing = set(manifest["kernels"]) - set(docs)
    for name in sorted(missing):
        failed.append(f"{name}: kernel vanished from the registry")
    if failed:
        for msg in failed:
            print(f"golden mismatch: {msg}", file=sys.stderr)
        print(
            f"\n{len(failed)} golden plan(s) changed without a "
            f"PLAN_SCHEMA_VERSION bump.  If the change is intentional, "
            f"bump PLAN_SCHEMA_VERSION in src/repro/plan/serialize.py "
            f"and regenerate with:\n"
            f"    python benchmarks/golden_plans.py --update",
            file=sys.stderr)
        return 1
    print(f"{len(docs)} golden plans match (schema "
          f"v{PLAN_SCHEMA_VERSION})")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="fail if any kernel's plan drifted from its "
                           "golden without a schema bump")
    mode.add_argument("--update", action="store_true",
                      help="regenerate every golden plan document")
    args = ap.parse_args(argv)
    return update() if args.update else check()


if __name__ == "__main__":
    sys.exit(main())
