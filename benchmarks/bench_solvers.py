"""Solver workload benchmarks: the applications the paper's intro
motivates (PDE solving), end to end on the simulated machine.

These measure whole compiled solvers — communication, fused stencil
sweeps, reductions — rather than isolated kernels, and record the
modelled per-iteration cost.
"""

import numpy as np
import pytest

from repro.compiler import compile_hpf
from repro.machine import Machine

N = 128
GRID = (2, 2)

JACOBI = """
      REAL, DIMENSION(N,N) :: U, UNEW, F
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ ALIGN UNEW WITH U
!HPF$ ALIGN F WITH U
      DO K = 1, NITER
        UNEW(2:N-1,2:N-1) = 0.25 * ( U(1:N-2,2:N-1) + U(3:N,2:N-1)
     &                             + U(2:N-1,1:N-2) + U(2:N-1,3:N) )
     &                    - 0.25 * H2 * F(2:N-1,2:N-1)
        U(2:N-1,2:N-1) = UNEW(2:N-1,2:N-1)
      ENDDO
"""

CG_STEP = """
      REAL, DIMENSION(N,N) :: X, R, P, Q, B
!HPF$ DISTRIBUTE X(BLOCK,BLOCK)
!HPF$ ALIGN R WITH X
!HPF$ ALIGN P WITH X
!HPF$ ALIGN Q WITH X
!HPF$ ALIGN B WITH X
      X = 0.0
      R = B
      P = R
      RZ = SUM(R * R)
      DO K = 1, NITER
        Q = 4.5 * P - CSHIFT(P,1,1) - CSHIFT(P,-1,1)
     &    - CSHIFT(P,1,2) - CSHIFT(P,-1,2)
        PAP = SUM(P * Q)
        ALPHA = RZ / PAP
        X = X + ALPHA * P
        R = R - ALPHA * Q
        RZNEW = SUM(R * R)
        BETA = RZNEW / RZ
        RZ = RZNEW
        P = R + BETA * P
      ENDDO
"""


@pytest.mark.parametrize("level", ["O0", "O4"])
def test_jacobi_sweep(benchmark, level, input_grid):
    niter = 5
    compiled = compile_hpf(JACOBI, bindings={"N": N, "NITER": niter},
                           level=level, outputs={"U"})
    f = input_grid(N)
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine, inputs={"F": f},
                            scalars={"H2": 1e-4})

    result = benchmark(run)
    benchmark.extra_info["level"] = level
    benchmark.extra_info["modelled_time_per_iter_s"] = \
        result.modelled_time / niter
    benchmark.extra_info["messages_per_iter"] = \
        result.report.messages / niter


def test_conjugate_gradient(benchmark, input_grid):
    niter = 5
    compiled = compile_hpf(CG_STEP, bindings={"N": N, "NITER": niter},
                           level="O4", outputs={"X"})
    b = input_grid(N)
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine, inputs={"B": b})

    result = benchmark(run)
    benchmark.extra_info["modelled_time_per_iter_s"] = \
        result.modelled_time / niter
    # initial SUM allreduce (2 rounds x 4 PEs) plus, per iteration,
    # 4 shifts x 4 PEs and two allreduces (PAP, RZNEW)
    assert result.report.messages == 8 + niter * (16 + 16)


def test_jacobi_optimization_payoff():
    """The paper's pipeline must pay off on the full solver too."""
    times = {}
    for level in ("O0", "O4"):
        compiled = compile_hpf(JACOBI, bindings={"N": 256, "NITER": 3},
                               level=level, outputs={"U"})
        machine = Machine(grid=GRID, keep_message_log=False)
        times[level] = compiled.run(
            machine, scalars={"H2": 1e-4}).modelled_time
    assert times["O0"] / times["O4"] > 2.0


def _per_iteration_traffic(name: str, trip_key: str,
                           plan_passes: bool) -> tuple[float, float]:
    """Steady-state (messages, bytes) per solver iteration, measured
    differentially (4-trip minus 2-trip, halved) so one-time preheader
    exchanges are charged to setup rather than to the loop body."""
    from repro.kernels import run_kernel

    totals = {}
    for trips in (2, 4):
        result = run_kernel(name, grid=GRID,
                            bindings={"N": N, trip_key: trips},
                            level="O4", plan_passes=plan_passes)
        totals[trips] = (result.report.messages,
                         result.report.message_bytes)
    return ((totals[4][0] - totals[2][0]) / 2,
            (totals[4][1] - totals[2][1]) / 2)


def test_loop_aware_passes_cut_jacobi_traffic():
    """The loop-aware plan passes (invariant-shift hoisting + ping-pong
    swap) must strictly cut the variable-coefficient Jacobi solver's
    per-iteration message count AND modelled bytes at O4."""
    plain = _per_iteration_traffic("jacobi", "NITER", False)
    aware = _per_iteration_traffic("jacobi", "NITER", True)
    assert aware[0] < plain[0], (plain, aware)
    assert aware[1] < plain[1], (plain, aware)


@pytest.mark.parametrize("name,trip_key", [("red_black", "NSWEEPS"),
                                           ("cg", "NITER")])
def test_loop_passes_leave_variant_solvers_alone(name, trip_key):
    """Solvers whose every shifted array is written per iteration have
    nothing to hoist or swap: per-iteration traffic must be unchanged."""
    plain = _per_iteration_traffic(name, trip_key, False)
    aware = _per_iteration_traffic(name, trip_key, True)
    assert aware == plain


def test_loop_passes_preserve_observables():
    """DESIGN invariant: the loop passes never change an observable
    array — the optimized Jacobi solver's U is bitwise-identical."""
    from repro.kernels import run_kernel

    results = {}
    for passes in (False, True):
        r = run_kernel("jacobi", grid=GRID,
                       bindings={"N": 64, "NITER": 7}, level="O4",
                       plan_passes=passes, seed=3)
        results[passes] = r.arrays["U"]
    np.testing.assert_array_equal(results[False], results[True])
