"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's evaluation exhibits:
pytest-benchmark measures real wall time of executing the compiled plan
on the simulated machine, and ``benchmark.extra_info`` carries the
modelled SP-2 time and the static counts (messages, temporaries) that
the paper's figures actually plot.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def input_grid():
    def make(n: int, seed: int = 7, ndim: int = 2):
        rng = np.random.default_rng(seed)
        return rng.standard_normal((n,) * ndim).astype(np.float32)
    return make
