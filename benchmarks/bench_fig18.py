"""Figure 18 benchmark: three 9-point specifications.

The paper's series: under xlhpf, the array-syntax stencil tracks the
fully optimized times (within ~10% at the largest size) while both
CSHIFT-based forms are an order of magnitude slower.
"""

import pytest

from repro import kernels
from repro.baselines.naive import compile_xlhpf_like
from repro.compiler import compile_hpf
from repro.machine import Machine

N = 256
GRID = (2, 2)
COEFFS = {f"C{i}": 1.0 for i in range(1, 10)}

CASES = [
    ("xlhpf_cshift_single", kernels.NINE_POINT_CSHIFT, "DST", "SRC"),
    ("xlhpf_problem9", kernels.PURDUE_PROBLEM9, "T", "U"),
    ("xlhpf_array_syntax", kernels.NINE_POINT_ARRAY_SYNTAX, "DST", "SRC"),
]


@pytest.mark.parametrize("name,source,out,inp", CASES,
                         ids=[c[0] for c in CASES])
def test_xlhpf_specification(benchmark, input_grid, name, source, out,
                             inp):
    compiled = compile_xlhpf_like(source, bindings={"N": N},
                                  outputs={out})
    u = input_grid(N)
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine, inputs={inp: u}, scalars=COEFFS)

    result = benchmark(run)
    benchmark.extra_info["modelled_time_s"] = result.modelled_time
    benchmark.extra_info["N"] = N


def test_our_strategy_reference(benchmark, input_grid):
    compiled = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": N},
                           level="O4", outputs={"T"})
    u = input_grid(N)
    machine = Machine(grid=GRID, keep_message_log=False)

    def run():
        return compiled.run(machine, inputs={"U": u})

    result = benchmark(run)
    benchmark.extra_info["modelled_time_s"] = result.modelled_time


def test_fig18_series_shape():
    times = {}
    for name, source, out, _ in CASES:
        compiled = compile_xlhpf_like(source, bindings={"N": N},
                                      outputs={out})
        times[name] = compiled.run(
            Machine(grid=GRID, keep_message_log=False)).modelled_time
    best = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": N},
                       level="O4", outputs={"T"}).run(
        Machine(grid=GRID, keep_message_log=False)).modelled_time
    assert best <= times["xlhpf_array_syntax"] <= 1.25 * best
    assert times["xlhpf_cshift_single"] > 5 * best
    assert times["xlhpf_problem9"] > 5 * best
