"""Conway's Game of Life on the distributed machine.

Shows how to embed a compiled stencil inside a larger application: the
expensive part of Life — the 8-neighbour count on a torus — is exactly
the 9-point CSHIFT stencil (centre weight 0), compiled once and applied
every generation; the nonlinear birth/survival rule runs on the gathered
grid between generations.  The torus wraparound comes for free from
CSHIFT's circular semantics.

Run with:  python examples/game_of_life.py
"""

import numpy as np

from repro import kernels
from repro.compiler import compile_hpf
from repro.machine import Machine

#: neighbour-count weights: all 1 except the centre term C5
WEIGHTS = {f"C{i}": (0.0 if i == 5 else 1.0) for i in range(1, 10)}


def glider(n: int) -> np.ndarray:
    world = np.zeros((n, n), dtype=np.float32)
    for (i, j) in [(1, 2), (2, 3), (3, 1), (3, 2), (3, 3)]:
        world[i, j] = 1.0
    return world


def life_rule(world: np.ndarray, neighbours: np.ndarray) -> np.ndarray:
    counts = np.rint(neighbours).astype(np.int64)
    alive = world > 0.5
    survive = alive & ((counts == 2) | (counts == 3))
    born = ~alive & (counts == 3)
    return (survive | born).astype(np.float32)


def numpy_neighbours(world: np.ndarray) -> np.ndarray:
    total = np.zeros_like(world)
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            if di or dj:
                total += np.roll(np.roll(world, di, axis=0), dj, axis=1)
    return total


def main() -> None:
    n, generations = 32, 16
    counter = compile_hpf(kernels.NINE_POINT_CSHIFT, bindings={"N": n},
                          level="O4", outputs={"DST"})
    print(f"neighbour-count stencil: {counter.report.overlap_shifts} "
          f"messages per PE per generation")

    machine = Machine(grid=(2, 2))
    world = glider(n)
    initial_population = int(world.sum())
    for gen in range(generations):
        result = counter.run(machine, inputs={"SRC": world},
                             scalars=WEIGHTS)
        neighbours = result.arrays["DST"]
        np.testing.assert_allclose(neighbours, numpy_neighbours(world),
                                   rtol=1e-5)
        world = life_rule(world, neighbours)

    # a glider translates one cell diagonally every 4 generations
    expected = glider(n)
    shift = generations // 4
    expected = np.roll(np.roll(expected, shift, axis=0), shift, axis=1)
    assert np.array_equal(world, expected), "glider did not glide!"
    print(f"glider translated by ({shift},{shift}) cells over "
          f"{generations} generations; population stayed "
          f"{initial_population}")
    print(f"per-generation modelled time: "
          f"{result.modelled_time * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
