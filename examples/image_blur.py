"""Image processing: separable-style 3x3 Gaussian blur and edge detect.

Image processing is the paper's second motivating domain.  A 3x3
Gaussian blur is exactly the 9-point stencil of Figure 2 with weighted
taps (1-2-1 / 16), and a Laplacian edge detector is the 5-point stencil
with centre weight -4.  Both compile to four messages per application —
corners ride along in the RSDs.

Run with:  python examples/image_blur.py
"""

import numpy as np

from repro import kernels
from repro.compiler import compile_hpf
from repro.machine import Machine

GAUSS = {
    "C1": 1 / 16, "C2": 2 / 16, "C3": 1 / 16,
    "C4": 2 / 16, "C5": 4 / 16, "C6": 2 / 16,
    "C7": 1 / 16, "C8": 2 / 16, "C9": 1 / 16,
}

LAPLACE_SOURCE = """
      REAL, DIMENSION(N,N) :: EDGE, IMG
!HPF$ DISTRIBUTE EDGE(BLOCK,BLOCK)
!HPF$ ALIGN IMG WITH EDGE
      EDGE(2:N-1,2:N-1) = IMG(1:N-2,2:N-1) + IMG(3:N,2:N-1)
     &                  + IMG(2:N-1,1:N-2) + IMG(2:N-1,3:N)
     &                  - 4.0 * IMG(2:N-1,2:N-1)
"""


def synthetic_image(n: int) -> np.ndarray:
    """A test card: gradient background with a bright square and noise."""
    yy, xx = np.mgrid[0:n, 0:n]
    img = (xx / n).astype(np.float32)
    img[n // 4: n // 2, n // 4: n // 2] += 1.0
    rng = np.random.default_rng(42)
    img += 0.05 * rng.standard_normal((n, n)).astype(np.float32)
    return img


def numpy_blur(img: np.ndarray) -> np.ndarray:
    """Reference 3x3 Gaussian with circular boundaries."""
    out = np.zeros_like(img)
    weights = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]],
                       dtype=np.float32) / 16
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            out += weights[di + 1, dj + 1] * np.roll(
                np.roll(img, -di, axis=0), -dj, axis=1)
    return out


def main() -> None:
    n = 128
    img = synthetic_image(n)
    machine = Machine(grid=(2, 2))

    # --- 3x3 Gaussian blur: the 9-point CSHIFT stencil of Figure 2 ---
    blur = compile_hpf(kernels.NINE_POINT_CSHIFT, bindings={"N": n},
                       level="O4", outputs={"DST"})
    # map the paper's term order (C1..C9) onto the Gaussian taps:
    # CSHIFT offsets in Figure 2 are (-1,-1),(-1,0),(-1,+1),(0,-1),
    # (0,0),(0,+1),(+1,-1),(+1,0),(+1,+1) for C1..C9, all weight-symmetric
    result = blur.run(machine, inputs={"SRC": img}, scalars=GAUSS)
    blurred = result.arrays["DST"]
    assert np.allclose(blurred, numpy_blur(img), rtol=1e-4, atol=1e-6)
    print(f"blur ok: {result.report.messages} messages, "
          f"noise std {img.std():.3f} -> {blurred.std():.3f}")

    # --- Laplacian edge detection: a weighted 5-point stencil ---
    edges = compile_hpf(LAPLACE_SOURCE, bindings={"N": n}, level="O4",
                        outputs={"EDGE"})
    result = edges.run(Machine(grid=(2, 2)), inputs={"IMG": blurred})
    e = result.arrays["EDGE"]
    ref = np.zeros_like(blurred)
    ref[1:-1, 1:-1] = (blurred[:-2, 1:-1] + blurred[2:, 1:-1]
                       + blurred[1:-1, :-2] + blurred[1:-1, 2:]
                       - 4 * blurred[1:-1, 1:-1])
    assert np.allclose(e, ref, rtol=1e-4, atol=1e-6)
    strongest = np.unravel_index(abs(e).argmax(), e.shape)
    print(f"edge detect ok: strongest response at {strongest} "
          f"(the bright square's corner)")
    print(f"pipeline total modelled time: "
          f"{result.modelled_time * 1e3:.3f} ms per frame")


if __name__ == "__main__":
    main()
