"""2-D wave equation with leapfrog time stepping.

Geometric modelling / seismic-style workload: the scalar wave equation
``u_tt = c^2 (u_xx + u_yy)`` advanced by the explicit leapfrog scheme

    UNEW = 2 U - UOLD + C2 * laplacian(U)

Three time levels rotate through arrays each step; only ``U``'s overlap
areas are refreshed per step (UOLD/UNEW never communicate) — the
compiler figures that out by itself from the offset-array analysis.

Run with:  python examples/wave_equation.py
"""

import numpy as np

from repro.compiler import compile_hpf
from repro.machine import Machine

SOURCE = """
      REAL, DIMENSION(N,N) :: U, UOLD, UNEW
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ ALIGN UOLD WITH U
!HPF$ ALIGN UNEW WITH U
      DO STEP = 1, NSTEPS
        UNEW = 2.0 * U - UOLD
     &       + C2 * ( CSHIFT(U,1,1) + CSHIFT(U,-1,1)
     &              + CSHIFT(U,1,2) + CSHIFT(U,-1,2) - 4.0 * U )
        UOLD = U
        U = UNEW
      ENDDO
"""


def reference(u0, uold0, c2, steps):
    u, uold = u0.astype(np.float64), uold0.astype(np.float64)
    for _ in range(steps):
        lap = (np.roll(u, -1, 0) + np.roll(u, 1, 0) + np.roll(u, -1, 1)
               + np.roll(u, 1, 1) - 4 * u)
        u, uold = 2 * u - uold + c2 * lap, u
    return u


def main() -> None:
    n, steps, c2 = 64, 50, 0.2

    # a Gaussian pulse, initially at rest (uold = u)
    yy, xx = np.mgrid[0:n, 0:n]
    r2 = (xx - n // 2) ** 2 + (yy - n // 2) ** 2
    u0 = np.exp(-r2 / 18.0).astype(np.float32)

    compiled = compile_hpf(SOURCE, bindings={"N": n, "NSTEPS": steps},
                           level="O4", outputs={"U"},
                           overlap_comm=True)
    print(f"compiled leapfrog: {compiled.report.overlap_shifts} overlap "
          f"shifts per step, {compiled.report.loop_nests} loop nests, "
          f"comm overlapped with interior computation")

    machine = Machine(grid=(2, 2))
    result = compiled.run(machine, inputs={"U": u0, "UOLD": u0},
                          scalars={"C2": c2})
    u = result.arrays["U"]
    ref = reference(u0, u0, c2, steps)
    assert np.allclose(u, ref, rtol=1e-3, atol=1e-4)
    print(f"matches the NumPy leapfrog after {steps} steps")

    # the ring should have expanded: energy moved away from the centre
    centre = abs(u[n // 2, n // 2])
    ring = abs(u[n // 2, n // 4])
    print(f"wavefront: centre amplitude {centre:.3f}, "
          f"quarter-domain amplitude {ring:.3f}")
    per_step = result.report.messages / steps
    print(f"messages per step: {per_step:.0f} "
          f"(only U communicates; UOLD/UNEW never do)")
    print(f"modelled SP-2 time: {result.modelled_time * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
