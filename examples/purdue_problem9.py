"""The paper's extended example: Problem 9 of the Purdue Set (section 4).

Walks the multi-statement 9-point stencil through every phase of the
compilation strategy, printing the IR after each pass — the exact
transcript of the paper's Figures 12-15 — and then measures the
step-wise improvement ladder of Figure 17.

Run with:  python examples/purdue_problem9.py
"""

import numpy as np

from repro import kernels
from repro.compiler import HpfCompiler, compile_hpf
from repro.compiler.options import CompilerOptions, OptLevel
from repro.machine import Machine

N = 256


def show_pipeline() -> None:
    options = CompilerOptions.make(OptLevel.O4, outputs={"T"},
                                   keep_trace=True)
    compiled = HpfCompiler(options).compile(kernels.PURDUE_PROBLEM9,
                                            bindings={"N": N})
    figures = {
        "input": "input (Figure 3)",
        "normalize": "after normalization (Figure 12)",
        "offset-arrays": "after offset arrays (Figure 13)",
        "context-partition": "after context partitioning (Figure 14)",
        "comm-union": "after communication unioning (Figure 15)",
    }
    for name, text in compiled.trace.snapshots:
        print(f"--- {figures[name]} ---")
        print(text)
        print()


def show_ladder() -> None:
    print("--- step-wise results (Figure 17) ---")
    u = np.random.default_rng(1).standard_normal((N, N)).astype(
        np.float32)
    labels = {
        "O0": "original (naive MPI)",
        "O1": "+ offset arrays",
        "O2": "+ context partitioning",
        "O3": "+ communication unioning",
        "O4": "+ memory optimizations",
    }
    prev = None
    base = None
    for level, label in labels.items():
        compiled = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": N},
                               level=level, outputs={"T"})
        result = compiled.run(Machine(grid=(2, 2)), inputs={"U": u})
        t = result.modelled_time
        base = base or t
        step = "" if prev is None else f"  (-{(1 - t / prev) * 100:4.1f}%)"
        print(f"{label:28s} {t * 1e3:8.3f} ms{step}   "
              f"messages={result.report.messages:3d} "
              f"copies={result.report.copies:3d}")
        prev = t
    print(f"total speedup: {base / prev:.2f}x "
          f"(paper measured 5.19x on the SP-2)")


def main() -> None:
    show_pipeline()
    show_ladder()


if __name__ == "__main__":
    main()
