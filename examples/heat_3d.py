"""3-D heat diffusion with a 7-point stencil.

Exercises the compiler's third dimension: the array is distributed
(BLOCK,BLOCK,*) — planes split across a 2x2 processor grid, the third
dimension collapsed on-processor.  Shifts along dimension 3 therefore
move no messages at all (their "interprocessor component" is empty),
and communication unioning leaves exactly four messages per step.

Run with:  python examples/heat_3d.py
"""

import numpy as np

from repro.compiler import compile_hpf
from repro.machine import Machine

SOURCE = """
      REAL, DIMENSION(N,N,N) :: U, T
!HPF$ DISTRIBUTE U(BLOCK,BLOCK,*)
!HPF$ ALIGN T WITH U
      DO K = 1, NSTEPS
        T = U + ALPHA * ( CSHIFT(U,+1,1) + CSHIFT(U,-1,1)
     &                  + CSHIFT(U,+1,2) + CSHIFT(U,-1,2)
     &                  + CSHIFT(U,+1,3) + CSHIFT(U,-1,3)
     &                  - 6.0 * U )
        U = T
      ENDDO
"""


def reference(u: np.ndarray, alpha: float, steps: int) -> np.ndarray:
    u = u.copy()
    for _ in range(steps):
        lap = -6.0 * u
        for axis in range(3):
            lap += np.roll(u, -1, axis=axis) + np.roll(u, 1, axis=axis)
        u = u + alpha * lap
    return u


def main() -> None:
    n, steps, alpha = 24, 10, 0.1

    compiled = compile_hpf(SOURCE, bindings={"N": n, "NSTEPS": steps},
                           level="O4", outputs={"U"})
    print(f"compiled: {compiled.report.overlap_shifts} overlap shifts "
          f"per step ({compiled.report.loop_nests} fused nests)")

    # hot sphere in the centre of a cold block
    u0 = np.zeros((n, n, n), dtype=np.float32)
    zz, yy, xx = np.mgrid[0:n, 0:n, 0:n]
    u0[(zz - n // 2) ** 2 + (yy - n // 2) ** 2
       + (xx - n // 2) ** 2 < (n // 6) ** 2] = 100.0

    machine = Machine(grid=(2, 2))
    result = compiled.run(machine, inputs={"U": u0},
                          scalars={"ALPHA": alpha})
    u = result.arrays["U"]
    ref = reference(u0, alpha, steps)
    assert np.allclose(u, ref, rtol=1e-4, atol=1e-3)

    print(f"heat diffused: peak {u0.max():.1f} -> {u.max():.2f}, "
          f"energy conserved to "
          f"{abs(u.sum() - u0.sum()) / u0.sum():.2e}")
    per_step = result.report.messages / steps
    print(f"messages per step: {per_step:.0f} "
          f"(dim-3 shifts are message-free on the collapsed dimension)")
    print(f"modelled SP-2 time: {result.modelled_time * 1e3:.1f} ms "
          f"for {steps} steps")


if __name__ == "__main__":
    main()
