"""Quickstart: compile and run a 5-point stencil.

Demonstrates the three-step public API:

1. write an HPF/Fortran90 stencil (array syntax or CSHIFT, your choice);
2. ``compile_hpf`` it at an optimization level;
3. run the compiled plan on a simulated distributed-memory machine.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.compiler import compile_hpf
from repro.machine import Machine

SOURCE = """
      REAL, DIMENSION(N,N) :: DST, SRC
!HPF$ DISTRIBUTE DST(BLOCK,BLOCK)
!HPF$ ALIGN SRC WITH DST
      DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1)
     &                 + C2 * SRC(2:N-1,1:N-2)
     &                 + C3 * SRC(2:N-1,2:N-1)
     &                 + C4 * SRC(3:N  ,2:N-1)
     &                 + C5 * SRC(2:N-1,3:N  )
"""


def main() -> None:
    n = 64

    # 1. compile at full optimization (the paper's complete strategy)
    compiled = compile_hpf(SOURCE, bindings={"N": n}, level="O4",
                           outputs={"DST"})
    print(f"compiled: {compiled.report.overlap_shifts} overlap shifts, "
          f"{compiled.report.loop_nests} fused loop nest(s), "
          f"{compiled.report.temporaries} temporaries")

    # 2. build a machine: 4 PEs in a 2x2 grid, like the paper's SP-2
    machine = Machine(grid=(2, 2))

    # 3. run with real inputs
    src = np.random.default_rng(0).standard_normal((n, n)).astype(
        np.float32)
    weights = {"C1": 0.25, "C2": 0.25, "C3": -1.0, "C4": 0.25, "C5": 0.25}
    result = compiled.run(machine, inputs={"SRC": src}, scalars=weights)

    dst = result.arrays["DST"]
    expected = np.zeros_like(src)
    expected[1:-1, 1:-1] = (0.25 * src[:-2, 1:-1] + 0.25 * src[1:-1, :-2]
                            - src[1:-1, 1:-1]
                            + 0.25 * src[2:, 1:-1] + 0.25 * src[1:-1, 2:])
    assert np.allclose(dst, expected, rtol=1e-5)
    print("result matches the NumPy reference")

    print(f"messages sent: {result.report.messages} "
          f"({result.report.message_bytes} bytes)")
    print(f"intraprocessor copies: {result.report.copies}")
    print(f"modelled SP-2 time: {result.modelled_time * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
