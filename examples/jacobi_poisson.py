"""Jacobi relaxation for the 2-D Poisson equation.

The PDE-solving workload the paper's introduction motivates: repeated
application of a 5-point stencil.  The whole time-stepped solver — the
DO loop included — is expressed in HPF and compiled once; the update
``U = 0.25 * (neighbors) - 0.25 * H2 * F`` runs as a single fused
subgrid nest with 4 messages per iteration after optimization.

Boundary conditions are handled with EOSHIFT-style zero boundaries via
interior-only array syntax.

Run with:  python examples/jacobi_poisson.py
"""

import numpy as np

from repro.compiler import compile_hpf
from repro.machine import Machine

SOURCE = """
      REAL, DIMENSION(N,N) :: U, UNEW, F
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ ALIGN UNEW WITH U
!HPF$ ALIGN F WITH U
      DO K = 1, NITER
        UNEW(2:N-1,2:N-1) = 0.25 * ( U(1:N-2,2:N-1) + U(3:N,2:N-1)
     &                             + U(2:N-1,1:N-2) + U(2:N-1,3:N) )
     &                    - 0.25 * H2 * F(2:N-1,2:N-1)
        U(2:N-1,2:N-1) = UNEW(2:N-1,2:N-1)
      ENDDO
"""


def main() -> None:
    n, niter = 64, 200
    h = 1.0 / (n - 1)

    # right-hand side: a point source in the middle of the domain
    f = np.zeros((n, n), dtype=np.float32)
    f[n // 2, n // 2] = -4.0 / (h * h)

    compiled = compile_hpf(SOURCE, bindings={"N": n, "NITER": niter},
                           level="O4", outputs={"U"})
    print(f"compiled solver: {compiled.report.overlap_shifts} shifts/iter, "
          f"{compiled.report.loop_nests} loop nest(s) in the loop body")

    machine = Machine(grid=(2, 2))
    result = compiled.run(machine, inputs={"F": f},
                          scalars={"H2": h * h})
    u = result.arrays["U"]

    # reference: the same Jacobi iteration in plain NumPy
    ref = np.zeros((n, n), dtype=np.float32)
    for _ in range(niter):
        new = ref.copy()
        new[1:-1, 1:-1] = 0.25 * (ref[:-2, 1:-1] + ref[2:, 1:-1]
                                  + ref[1:-1, :-2] + ref[1:-1, 2:]) \
            - 0.25 * h * h * f[1:-1, 1:-1]
        ref = new
    assert np.allclose(u, ref, rtol=1e-4, atol=1e-6)
    print(f"matches NumPy Jacobi after {niter} iterations "
          f"(max |u| = {abs(u).max():.4f})")

    residual = np.zeros_like(u)
    residual[1:-1, 1:-1] = (u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2]
                            + u[1:-1, 2:] - 4 * u[1:-1, 1:-1]) / (h * h) \
        - f[1:-1, 1:-1]
    print(f"residual inf-norm: {abs(residual).max():.3e}")
    print(f"messages total: {result.report.messages} "
          f"({result.report.messages / niter:.0f} per iteration)")
    print(f"modelled SP-2 time: {result.modelled_time * 1e3:.1f} ms "
          f"for {niter} iterations")


if __name__ == "__main__":
    main()
