"""Red-black Gauss-Seidel relaxation using WHERE masks.

Classic checkerboard smoothing: points are coloured like a chessboard
and each half-sweep updates one colour from the freshly updated other
colour — converging roughly twice as fast as Jacobi.  The colouring is
expressed with WHERE masks over a precomputed parity array, exercising
masked assignments, the mask-evaluate-once lowering, and mask/stencil
fusion in one realistic solver.

Run with:  python examples/red_black_gauss_seidel.py
"""

import numpy as np

from repro.compiler import compile_hpf
from repro.machine import Machine

SOURCE = """
      REAL, DIMENSION(N,N) :: U, F, RED
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ ALIGN F WITH U
!HPF$ ALIGN RED WITH U
      DO K = 1, NSWEEPS
        WHERE (RED > 0.5)
          U = 0.25 * ( CSHIFT(U,1,1) + CSHIFT(U,-1,1)
     &               + CSHIFT(U,1,2) + CSHIFT(U,-1,2) - H2 * F )
        END WHERE
        WHERE (RED < 0.5)
          U = 0.25 * ( CSHIFT(U,1,1) + CSHIFT(U,-1,1)
     &               + CSHIFT(U,1,2) + CSHIFT(U,-1,2) - H2 * F )
        END WHERE
      ENDDO
"""


def parity(n: int) -> np.ndarray:
    ii, jj = np.mgrid[0:n, 0:n]
    return ((ii + jj) % 2 == 0).astype(np.float32)


def numpy_red_black(u, f, h2, sweeps):
    u = u.copy()
    red = parity(u.shape[0]) > 0.5
    for _ in range(sweeps):
        for colour in (red, ~red):
            nb = 0.25 * (np.roll(u, -1, 0) + np.roll(u, 1, 0)
                         + np.roll(u, -1, 1) + np.roll(u, 1, 1)
                         - h2 * f)
            u = np.where(colour, nb, u).astype(np.float32)
    return u


def main() -> None:
    n, sweeps = 32, 30
    h2 = (1.0 / (n - 1)) ** 2
    rng = np.random.default_rng(3)
    f = rng.standard_normal((n, n)).astype(np.float32)
    u0 = np.zeros((n, n), dtype=np.float32)

    compiled = compile_hpf(SOURCE, bindings={"N": n, "NSWEEPS": sweeps},
                           level="O4", outputs={"U"})
    print(f"compiled red-black smoother: "
          f"{compiled.report.overlap_shifts} overlap shifts per "
          f"half-sweep pair")

    machine = Machine(grid=(2, 2))
    result = compiled.run(machine, inputs={"U": u0, "F": f,
                                           "RED": parity(n)},
                          scalars={"H2": h2})
    u = result.arrays["U"]
    expected = numpy_red_black(u0, f, h2, sweeps)
    assert np.allclose(u, expected, rtol=1e-4, atol=1e-6)
    print(f"matches the NumPy red-black smoother after {sweeps} sweeps")

    # Gauss-Seidel effect: the second half-sweep uses fresh values, so
    # the residual drops faster than an equal number of Jacobi sweeps
    def residual(v):
        lap = (np.roll(v, -1, 0) + np.roll(v, 1, 0) + np.roll(v, -1, 1)
               + np.roll(v, 1, 1) - 4 * v)
        return float(np.abs(lap - h2 * f).max())

    jac = u0.copy()
    for _ in range(sweeps):
        jac = (0.25 * (np.roll(jac, -1, 0) + np.roll(jac, 1, 0)
                       + np.roll(jac, -1, 1) + np.roll(jac, 1, 1)
                       - h2 * f)).astype(np.float32)
    print(f"residual after {sweeps} sweeps: red-black "
          f"{residual(u):.3e} vs Jacobi {residual(jac):.3e}")
    assert residual(u) < residual(jac)
    print(f"modelled SP-2 time: {result.modelled_time * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
