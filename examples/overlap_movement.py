"""Walkthrough of the paper's Figures 5-10: overlap data movement.

Compiles the 9-point stencil and renders, cell by cell, which of the
four unioned OVERLAP_SHIFTs fills each overlap cell on every PE — the
exact pictures the paper uses to explain why four messages suffice and
where the corner elements come from.

Run with:  python examples/overlap_movement.py
"""

from repro import kernels
from repro.analysis.movement import trace_movement
from repro.compiler import compile_hpf
from repro.machine import Machine


def show(title: str, source: str, out: str, level: str) -> None:
    print(f"=== {title} ===")
    compiled = compile_hpf(source, bindings={"N": 8}, level=level,
                           outputs={out})
    machine = Machine(grid=(2, 2))
    array = next(name for name, decl in compiled.plan.arrays.items()
                 if any(h != (0, 0) for h in decl.halo))
    trace = trace_movement(compiled.plan, machine, array=array)
    for i, label in enumerate(trace.op_labels, start=1):
        print(f"  op {i}: {label.split('(', 1)[0]} "
              f"{label.split('(', 1)[1].rstrip(')')}")
    print()
    print(f"fill map of {array} (., interior; 1-9, filling op; "
          f"blank, never filled):")
    print(trace.render_grid(array, (2, 2)))
    print()


def main() -> None:
    # Figure 10: 4 messages, corners carried by the dim-2 RSDs
    show("9-point stencil after communication unioning (Figure 10)",
         kernels.PURDUE_PROBLEM9, "T", "O3")
    # the un-unioned form: 8 separate fills, corners via chained
    # base-offset slabs (Figures 7-9's intermediate states)
    show("9-point stencil before unioning (Figures 7-9)",
         kernels.PURDUE_PROBLEM9, "T", "O2")
    # a 5-point star needs no corners at all
    show("5-point stencil: no corner traffic",
         kernels.FIVE_POINT_ARRAY_SYNTAX, "DST", "O3")


if __name__ == "__main__":
    main()
