"""Conjugate-gradient solver, entirely in compiled HPF.

The most demanding example: every part of a CG iteration — the 5-point
stencil matrix-vector product, the dot products, the scalar recurrences
and the vector updates — is expressed in the HPF source and compiled
once.  Dot products lower to distributed reductions (per-PE partial +
modelled allreduce); the matvec communicates through four overlap
shifts; everything else is fused subgrid computation.

The operator is a shifted torus Laplacian ``A = (4 + SIGMA) I - S``
(circular neighbour sum ``S``), symmetric positive definite for
``SIGMA > 0``, so CG converges without boundary handling.

Run with:  python examples/conjugate_gradient.py
"""

import numpy as np

from repro.compiler import compile_hpf
from repro.machine import Machine

SOURCE = """
      REAL, DIMENSION(N,N) :: X, R, P, Q, B
!HPF$ DISTRIBUTE X(BLOCK,BLOCK)
!HPF$ ALIGN R WITH X
!HPF$ ALIGN P WITH X
!HPF$ ALIGN Q WITH X
!HPF$ ALIGN B WITH X
      X = 0.0
      R = B
      P = R
      RZ = SUM(R * R)
      DO K = 1, NITER
        Q = (4.0 + SIGMA) * P - CSHIFT(P,1,1) - CSHIFT(P,-1,1)
     &    - CSHIFT(P,1,2) - CSHIFT(P,-1,2)
        PAP = SUM(P * Q)
        ALPHA = RZ / PAP
        X = X + ALPHA * P
        R = R - ALPHA * Q
        RZNEW = SUM(R * R)
        BETA = RZNEW / RZ
        RZ = RZNEW
        P = R + BETA * P
      ENDDO
"""


def apply_operator(v: np.ndarray, sigma: float) -> np.ndarray:
    s = sum(np.roll(v, sh, axis=ax) for ax in (0, 1) for sh in (-1, 1))
    return (4.0 + sigma) * v - s


def main() -> None:
    n, niter, sigma = 32, 40, 0.5
    rng = np.random.default_rng(11)
    b = rng.standard_normal((n, n)).astype(np.float32)

    compiled = compile_hpf(SOURCE, bindings={"N": n, "NITER": niter},
                           level="O4", outputs={"X", "R"})
    print(f"compiled CG: {compiled.report.overlap_shifts} overlap "
          f"shifts and 3 reductions per iteration, "
          f"{compiled.report.loop_nests} loop nests")

    machine = Machine(grid=(2, 2))
    result = compiled.run(machine, inputs={"B": b},
                          scalars={"SIGMA": sigma})
    x = result.arrays["X"].astype(np.float64)

    residual = b - apply_operator(x, sigma)
    rel = np.linalg.norm(residual) / np.linalg.norm(b)
    print(f"after {niter} iterations: relative residual {rel:.3e}")
    assert rel < 1e-4, "CG failed to converge"

    # cross-check against the same CG in NumPy
    xr = np.zeros_like(b, dtype=np.float64)
    r = b.astype(np.float64).copy()
    p = r.copy()
    rz = float((r * r).sum())
    for _ in range(niter):
        q = apply_operator(p, sigma)
        alpha = rz / float((p * q).sum())
        xr += alpha * p
        r -= alpha * q
        rz_new = float((r * r).sum())
        p = r + (rz_new / rz) * p
        rz = rz_new
    assert np.allclose(x, xr, rtol=1e-3, atol=1e-5)
    print("matches the NumPy CG trajectory")

    msgs = result.report.messages
    per_iter = (msgs - 0) / niter
    print(f"messages per iteration: {per_iter:.0f} "
          f"(4 shifts x 4 PEs + 3 allreduces x 2 rounds x 4 PEs)")
    print(f"modelled SP-2 time: {result.modelled_time * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
