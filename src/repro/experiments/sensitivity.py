"""Extension study: machine-balance sensitivity.

The calibration note in EXPERIMENTS.md raises an obvious question: how
much of the paper's conclusion depends on 1997 machine constants?  This
study recomputes the Figure 17 ladder under scaled cost models —
message latency from SP-2-class down to modern-interconnect-class, and
memory speed from 1997 DRAM up to modern cache hierarchies — and reports
each optimization's share of the total win.

The qualitative answer: offset arrays and fusion (the memory-traffic
optimizations) dominate on *every* balance; communication unioning's
share tracks the latency/compute ratio, which is exactly why modern
stencil compilers (Halide, Devito) still fuse aggressively while
treating message counts as a second-order concern on fat-node clusters —
and why unioning mattered so much on the SP-2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels
from repro.compiler import compile_hpf
from repro.experiments.harness import Table
from repro.machine import Machine
from repro.machine.cost_model import SP2_COST_MODEL
from repro.machine.presets import scaled

#: (label, network scale, memory scale) applied to the SP-2 model; the
#: named presets in :mod:`repro.machine.presets` cover the same space
BALANCES = [
    ("SP-2 class (paper)", 1.0, 1.0),
    ("slow network", 4.0, 1.0),
    ("fast network", 0.1, 1.0),
    ("modern node (fast memory)", 1.0, 0.2),
    ("modern cluster", 0.05, 0.1),
]

LEVELS = ["O0", "O1", "O2", "O3", "O4"]


@dataclass
class SensitivityRow:
    balance: str
    times: dict[str, float]
    step_shares: dict[str, float]  # each optimization's share of the win
    total_speedup: float


@dataclass
class SensitivityResult:
    n: int
    rows: list[SensitivityRow] = field(default_factory=list)


def scaled_model(alpha_scale: float, mem_scale: float):
    return scaled(SP2_COST_MODEL, network=alpha_scale, memory=mem_scale)


def run(n: int = 512, grid: tuple[int, ...] = (2, 2)) -> SensitivityResult:
    result = SensitivityResult(n=n)
    compiled = {level: compile_hpf(kernels.PURDUE_PROBLEM9,
                                   bindings={"N": n}, level=level,
                                   outputs={"T"})
                for level in LEVELS}
    for label, a_scale, m_scale in BALANCES:
        model = scaled_model(a_scale, m_scale)
        times = {}
        for level in LEVELS:
            machine = Machine(grid=grid, cost_model=model,
                              keep_message_log=False)
            times[level] = compiled[level].run(machine).modelled_time
        total_win = times["O0"] - times["O4"]
        shares = {}
        for prev, cur in zip(LEVELS, LEVELS[1:]):
            step = times[prev] - times[cur]
            shares[cur] = step / total_win if total_win > 0 else 0.0
        result.rows.append(SensitivityRow(
            label, times, shares, times["O0"] / times["O4"]))
    return result


def build_table(result: SensitivityResult) -> Table:
    t = Table(
        f"Machine-balance sensitivity — share of the total win per "
        f"optimization (Problem 9, N={result.n})",
        ["machine balance", "offset arrays %", "partitioning %",
         "comm unioning %", "memopt %", "total speedup"],
    )
    for r in result.rows:
        t.add(r.balance,
              100 * r.step_shares["O1"], 100 * r.step_shares["O2"],
              100 * r.step_shares["O3"], 100 * r.step_shares["O4"],
              r.total_speedup)
    t.note("memory-traffic optimizations dominate on every balance; "
           "unioning's share tracks the latency/compute ratio")
    return t


def main() -> None:
    print(build_table(run()).render())


if __name__ == "__main__":
    main()
