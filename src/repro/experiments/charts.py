"""ASCII line charts for the experiment figures.

The paper's evaluation exhibits are log-scale time-vs-problem-size
plots; :class:`AsciiChart` renders the same series in the terminal so
``python -m repro experiments fig17`` shows the figure, not just the
table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: plotting glyphs per series, in order
MARKERS = "ox+*#@%&"


@dataclass
class Series:
    label: str
    values: list[float]


@dataclass
class AsciiChart:
    """A log-y, categorical-x chart (x = problem sizes)."""

    title: str
    x_labels: list[str]
    series: list[Series] = field(default_factory=list)
    height: int = 16
    col_width: int = 8

    def add(self, label: str, values: list[float]) -> None:
        if len(values) != len(self.x_labels):
            raise ValueError(
                f"series {label}: {len(values)} values for "
                f"{len(self.x_labels)} x positions")
        if any(v <= 0 for v in values):
            raise ValueError("log-scale chart requires positive values")
        self.series.append(Series(label, list(values)))

    def render(self) -> str:
        if not self.series:
            return self.title + "\n(no data)"
        lo = min(min(s.values) for s in self.series)
        hi = max(max(s.values) for s in self.series)
        lg_lo, lg_hi = math.log10(lo), math.log10(hi)
        if lg_hi - lg_lo < 1e-9:
            lg_hi = lg_lo + 1.0

        def row_of(value: float) -> int:
            frac = (math.log10(value) - lg_lo) / (lg_hi - lg_lo)
            return round(frac * (self.height - 1))

        width = self.col_width * len(self.x_labels)
        grid = [[" "] * width for _ in range(self.height)]
        for si, s in enumerate(self.series):
            mark = MARKERS[si % len(MARKERS)]
            for xi, v in enumerate(s.values):
                r = self.height - 1 - row_of(v)
                c = xi * self.col_width + self.col_width // 2
                grid[r][c] = mark

        out = [self.title]
        for r in range(self.height):
            # y-axis label every few rows
            frac = (self.height - 1 - r) / (self.height - 1)
            val = 10 ** (lg_lo + frac * (lg_hi - lg_lo))
            label = f"{val:8.2e} |" if r % 4 == 0 else "         |"
            out.append(label + "".join(grid[r]))
        out.append("         +" + "-" * width)
        xl = "          "
        for lab in self.x_labels:
            xl += str(lab).ljust(self.col_width)
        out.append(xl)
        legend = "  ".join(f"{MARKERS[i % len(MARKERS)]}={s.label}"
                           for i, s in enumerate(self.series))
        out.append("          " + legend)
        return "\n".join(out)
