"""Temporary-array storage across specifications and levels (section 4).

The paper's storage claims:

* a naive compiler gives the single-statement 9-point CSHIFT stencil 12
  temporary arrays, but Problem 9 only 3 (live ranges of the last six
  CSHIFTs do not overlap) — "this reduces the temporary storage
  requirements by a factor of four!";
* after offset-array optimization no temporaries remain at all ("they
  need not be allocated"), so larger problems fit on a given machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels
from repro.baselines.naive import compile_xlhpf_like
from repro.compiler import compile_hpf
from repro.experiments.fig11 import count_temp_storage
from repro.experiments.harness import PAPER_GRID, Table, run_on_machine

SPECS = [
    ("9-pt CSHIFT single-stmt", kernels.NINE_POINT_CSHIFT, "DST"),
    ("Problem 9 multi-stmt", kernels.PURDUE_PROBLEM9, "T"),
    ("9-pt array syntax", kernels.NINE_POINT_ARRAY_SYNTAX, "DST"),
]


@dataclass
class StorageRow:
    spec: str
    level: str
    temp_storage: int
    peak_mb_per_pe: float


@dataclass
class StorageResult:
    n: int
    rows: list[StorageRow] = field(default_factory=list)


def run(n: int = 512,
        grid: tuple[int, ...] = PAPER_GRID) -> StorageResult:
    result = StorageResult(n=n)
    for spec, source, out in SPECS:
        naive = compile_xlhpf_like(source, bindings={"N": n},
                                   outputs={out})
        res = run_on_machine(naive, grid=grid)
        result.rows.append(StorageRow(
            spec, "naive", count_temp_storage(naive, out),
            res.peak_memory_per_pe / (1024 * 1024)))
        opt = compile_hpf(source, bindings={"N": n}, level="O4",
                          outputs={out})
        res = run_on_machine(opt, grid=grid)
        result.rows.append(StorageRow(
            spec, "O4", count_temp_storage(opt, out),
            res.peak_memory_per_pe / (1024 * 1024)))
    return result


def build_table(result: StorageResult) -> Table:
    t = Table(
        f"Temporary storage per specification (N={result.n})",
        ["specification", "compiler", "temp arrays", "peak MB/PE"],
    )
    for r in result.rows:
        t.add(r.spec, r.level, r.temp_storage, r.peak_mb_per_pe)
    t.note("paper: 12 vs 3 temporaries naive; zero after offset arrays")
    return t


def main() -> None:
    print(build_table(run()).render())


if __name__ == "__main__":
    main()
