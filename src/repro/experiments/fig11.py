"""Figure 11: single-statement vs. multi-statement stencil under xlhpf.

The paper compiled the single-statement 9-point CSHIFT stencil (Figure
2) and the multi-statement Problem 9 (Figure 3) with IBM's xlhpf on a
4-processor SP-2 (256 MB per node).  The single-statement version needs
12 shift temporaries and "exhausted the available memory for the larger
problem sizes"; Problem 9 needs only 3 temporaries (RIP, RIN, and one
shared TMP) and kept running — and ran faster (4.77 s at the largest
size that fit).

We reproduce both effects with the xlhpf-like baseline on the simulated
machine with a finite per-PE heap: temporary count, peak memory per PE,
modelled time, and the OOM crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels
from repro.baselines.naive import compile_xlhpf_like
from repro.errors import SimulatedOutOfMemoryError
from repro.experiments.harness import PAPER_GRID, Table, run_on_machine

#: per-PE heap.  The SP-2 nodes had 256 MB; we scale down so the sweep
#: stays laptop-sized while preserving the 12-vs-3 temporary crossover.
DEFAULT_MEMORY_PER_PE = 32 * 1024 * 1024

DEFAULT_SIZES = (256, 512, 1024, 2048)

SPECS = [
    ("9-pt single-statement CSHIFT", kernels.NINE_POINT_CSHIFT,
     "DST", "SRC"),
    ("Problem 9 multi-statement", kernels.PURDUE_PROBLEM9, "T", "U"),
]


@dataclass
class Fig11Row:
    spec: str
    n: int
    temporaries: int            # compiler-generated shift temporaries
    temp_storage_arrays: int    # paper's counting: temps + intermediates
    peak_bytes_per_pe: int | None
    modelled_time: float | None
    oom: bool


def count_temp_storage(compiled, output: str) -> int:
    """The paper's 12-vs-3 counting: compiler temporaries plus user
    intermediates (arrays written but neither live-out nor pure inputs,
    like Problem 9's RIP/RIN)."""
    decls = compiled.plan.arrays
    temps = sum(1 for d in decls.values() if d.is_temporary)
    written = set()
    from repro.plan import FullShiftOp, LoopNestOp
    for op in compiled.plan.walk_ops():
        if isinstance(op, LoopNestOp):
            written.update(s.lhs for s in op.statements)
        elif isinstance(op, FullShiftOp):
            written.add(op.dst)
    intermediates = sum(
        1 for name, d in decls.items()
        if not d.is_temporary and name != output.upper()
        and name in written)
    return temps + intermediates


@dataclass
class Fig11Result:
    rows: list[Fig11Row] = field(default_factory=list)

    def for_spec(self, spec_prefix: str) -> list[Fig11Row]:
        return [r for r in self.rows if r.spec.startswith(spec_prefix)]


def run(sizes: tuple[int, ...] = DEFAULT_SIZES,
        memory_per_pe: int = DEFAULT_MEMORY_PER_PE,
        grid: tuple[int, ...] = PAPER_GRID) -> Fig11Result:
    result = Fig11Result()
    for label, source, out, _inp in SPECS:
        for n in sizes:
            compiled = compile_xlhpf_like(source, bindings={"N": n},
                                          outputs={out})
            storage = count_temp_storage(compiled, out)
            try:
                res = run_on_machine(compiled, grid=grid,
                                     memory_per_pe=memory_per_pe)
                result.rows.append(Fig11Row(
                    label, n, compiled.report.temporaries, storage,
                    res.peak_memory_per_pe, res.modelled_time, False))
            except SimulatedOutOfMemoryError:
                result.rows.append(Fig11Row(
                    label, n, compiled.report.temporaries, storage,
                    None, None, True))
    return result


def build_table(result: Fig11Result,
                memory_per_pe: int = DEFAULT_MEMORY_PER_PE) -> Table:
    t = Table(
        "Figure 11 — xlhpf-like compilation of two 9-point "
        "specifications "
        f"({memory_per_pe // (1024 * 1024)} MB per PE)",
        ["specification", "N", "temp storage", "peak MB/PE",
         "modelled time (s)", "status"],
    )
    for r in result.rows:
        t.add(r.spec, r.n, r.temp_storage_arrays,
              "-" if r.peak_bytes_per_pe is None
              else r.peak_bytes_per_pe / (1024 * 1024),
              "-" if r.modelled_time is None else r.modelled_time,
              "OUT OF MEMORY" if r.oom else "ok")
    t.note("paper: 12 temporaries exhaust 256 MB SP-2 nodes at large N "
           "while the 3-temporary Problem 9 form keeps running")
    return t


def main() -> None:
    print(build_table(run()).render())


if __name__ == "__main__":
    main()
