"""Message minimisation across stencil shapes (paper section 3.3).

The unioning claim: after offset-array conversion, communication
unioning leaves exactly one OVERLAP_SHIFT per (array, dimension,
direction) actually required — the 9-point stencil's 12 CSHIFTs become
the 4 calls of Figure 6, with corner elements carried by RSDs instead of
extra messages.

This experiment compiles a family of stencils at O2 (before unioning)
and O3 (after) and reports shift-call and runtime-message counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels
from repro.compiler import compile_hpf
from repro.plan import OverlapShiftOp
from repro.experiments.harness import PAPER_GRID, Table, run_on_machine

CASES = [
    ("5-pt 2-D array syntax", kernels.FIVE_POINT_ARRAY_SYNTAX, "DST", 64),
    ("9-pt 2-D CSHIFT single-stmt", kernels.NINE_POINT_CSHIFT, "DST", 64),
    ("9-pt 2-D Problem 9 multi-stmt", kernels.PURDUE_PROBLEM9, "T", 64),
    ("9-pt 2-D array syntax", kernels.NINE_POINT_ARRAY_SYNTAX, "DST", 64),
    ("25-pt 2-D array syntax (r=2)", kernels.TWENTYFIVE_POINT_ARRAY_SYNTAX,
     "DST", 64),
    ("7-pt 3-D CSHIFT star", kernels.SEVEN_POINT_3D_CSHIFT, "DST", 16),
    ("27-pt 3-D CSHIFT box", kernels.TWENTYSEVEN_POINT_3D_CSHIFT,
     "DST", 16),
]


@dataclass
class MessageRow:
    case: str
    shifts_before: int      # OVERLAP_SHIFT calls at O2
    shifts_after: int       # OVERLAP_SHIFT calls at O3
    rsds: int               # calls carrying a non-trivial RSD
    messages_before: int    # runtime point-to-point messages at O2
    messages_after: int     # at O3


@dataclass
class MessagesResult:
    rows: list[MessageRow] = field(default_factory=list)

    def row(self, prefix: str) -> MessageRow:
        for r in self.rows:
            if r.case.startswith(prefix):
                return r
        raise KeyError(prefix)


def _count_shifts(compiled) -> tuple[int, int]:
    shifts = [op for op in compiled.plan.walk_ops()
              if isinstance(op, OverlapShiftOp)]
    rsds = sum(1 for op in shifts
               if op.rsd is not None and not op.rsd.is_trivial)
    return len(shifts), rsds


def run(grid: tuple[int, ...] = PAPER_GRID) -> MessagesResult:
    result = MessagesResult()
    for case, source, out, n in CASES:
        before = compile_hpf(source, bindings={"N": n}, level="O2",
                             outputs={out})
        after = compile_hpf(source, bindings={"N": n}, level="O3",
                            outputs={out})
        nb, _ = _count_shifts(before)
        na, rsds = _count_shifts(after)
        mb = run_on_machine(before, grid=grid).report.messages
        ma = run_on_machine(after, grid=grid).report.messages
        result.rows.append(MessageRow(case, nb, na, rsds, mb, ma))
    return result


def build_table(result: MessagesResult) -> Table:
    t = Table(
        "Communication unioning — shift calls and runtime messages "
        f"({'x'.join(map(str, PAPER_GRID))} PEs)",
        ["stencil", "shifts O2", "shifts O3", "RSDs",
         "msgs O2", "msgs O3"],
    )
    for r in result.rows:
        t.add(r.case, r.shifts_before, r.shifts_after, r.rsds,
              r.messages_before, r.messages_after)
    t.note("paper Figure 6: the 9-point stencil needs exactly 4 "
           "OVERLAP_SHIFTs, corners via [0:N+1,*] RSDs")
    t.note("3-D cases distribute (BLOCK,BLOCK,*): dim-3 shifts move no "
           "messages (collapsed dimension)")
    return t


def main() -> None:
    print(build_table(run()).render())


if __name__ == "__main__":
    main()
