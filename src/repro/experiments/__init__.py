"""Experiment harnesses regenerating the paper's evaluation exhibits.

Each module reproduces one figure/table and can be run as a script:

* ``python -m repro.experiments.fig11`` — Figure 11: xlhpf-like memory
  exhaustion of the single-statement 9-point stencil vs. Problem 9.
* ``python -m repro.experiments.fig17`` — Figure 17: step-wise results
  of the compilation strategy on Problem 9.
* ``python -m repro.experiments.fig18`` — Figure 18: three 9-point
  specifications under the naive compiler vs. the full strategy.
* ``python -m repro.experiments.messages`` — section 3.3: message
  minimisation across stencil shapes (12 -> 4 for the 9-point).
* ``python -m repro.experiments.storage`` — section 4: temporary-array
  storage (12 vs. 3 temporaries; none after offset arrays).
* ``python -m repro.experiments.ablations`` — design-choice ablations
  (fusion, unroll-and-jam factor, temporary pooling).

Extension studies beyond the paper's evaluation:

* ``python -m repro.experiments.scaling`` — strong scaling from 1 to 64
  PEs (the paper stopped at 4).
* ``python -m repro.experiments.sensitivity`` — how each optimization's
  share of the win shifts across machine balances (SP-2 to modern).

All results are deterministic (analytic cost model + seeded inputs).
"""
