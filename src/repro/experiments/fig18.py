"""Figure 18: three 9-point stencil specifications under xlhpf.

The paper compiled (a) the single-statement CSHIFT stencil, (b) the
multi-statement Problem 9, and (c) an interior-only array-syntax stencil
with IBM's xlhpf.  The array-syntax version "produced performance
numbers that tracked our best performance numbers for all problem sizes
except the largest, where we had a 10% advantage" — because early HPF
compilers scalarized pure array syntax directly (no shift temporaries,
overlap communication only), while both CSHIFT forms paid full shift
data movement.

We compile all three with the xlhpf-like baseline and add the paper's
strategy (O4) on Problem 9 as the "our best" reference line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels
from repro.baselines.naive import compile_xlhpf_like
from repro.compiler import compile_hpf
from repro.experiments.harness import (
    DEFAULT_SIZES, PAPER_GRID, Table, run_on_machine,
)

SPECS = [
    ("xlhpf: 9-pt CSHIFT single-stmt", kernels.NINE_POINT_CSHIFT, "DST"),
    ("xlhpf: Problem 9 multi-stmt", kernels.PURDUE_PROBLEM9, "T"),
    ("xlhpf: 9-pt array syntax", kernels.NINE_POINT_ARRAY_SYNTAX, "DST"),
]


@dataclass
class Fig18Result:
    sizes: tuple[int, ...]
    times: dict[str, list[float]] = field(default_factory=dict)
    best_times: list[float] = field(default_factory=list)  # our O4

    def array_syntax_gap(self, size_index: int = -1) -> float:
        """array-syntax-under-xlhpf time over our best time (paper: ~1.1
        at the largest size, ~1.0 before)."""
        return (self.times["xlhpf: 9-pt array syntax"][size_index]
                / self.best_times[size_index])


def run(sizes: tuple[int, ...] = DEFAULT_SIZES,
        grid: tuple[int, ...] = PAPER_GRID) -> Fig18Result:
    result = Fig18Result(sizes=tuple(sizes))
    for label, _, _ in SPECS:
        result.times[label] = []
    for n in sizes:
        for label, source, out in SPECS:
            compiled = compile_xlhpf_like(source, bindings={"N": n},
                                          outputs={out})
            res = run_on_machine(compiled, grid=grid)
            result.times[label].append(res.modelled_time)
        best = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": n},
                           level="O4", outputs={"T"})
        res = run_on_machine(best, grid=grid)
        result.best_times.append(res.modelled_time)
    return result


def build_table(result: Fig18Result) -> Table:
    t = Table(
        "Figure 18 — three 9-point specifications, modelled time (s)",
        ["N"] + [label for label, _, _ in SPECS]
        + ["our strategy (O4)", "array-syntax / best"],
    )
    for i, n in enumerate(result.sizes):
        t.add(n, *[result.times[label][i] for label, _, _ in SPECS],
              result.best_times[i], result.array_syntax_gap(i))
    t.note("paper: the array-syntax stencil under xlhpf tracks the best "
           "times (within ~10% at the largest size); both CSHIFT forms "
           "are an order of magnitude slower")
    return t


def build_chart(result: Fig18Result):
    from repro.experiments.charts import AsciiChart
    chart = AsciiChart(
        "Figure 18 — three 9-point specifications (log scale)",
        [str(n) for n in result.sizes])
    for label, _, _ in SPECS:
        chart.add(label.removeprefix("xlhpf: "), result.times[label])
    chart.add("our strategy", result.best_times)
    return chart


def main() -> None:
    result = run()
    print(build_table(result).render())
    print()
    print(build_chart(result).render())


if __name__ == "__main__":
    main()
