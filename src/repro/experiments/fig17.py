"""Figure 17: step-wise results of the stencil compilation strategy.

The paper starts from a naive Fortran77+MPI translation of Problem 9
("original") and applies the optimizations cumulatively on a 4-processor
SP-2, reporting per-step improvements of 45%, 31%, 41%, and 14% (overall
speedup 5.19x) and a 52x gap to IBM's xlhpf.

We compile Problem 9 at levels O0..O4, execute on the simulated 2x2
machine, and report modelled execution time per level plus the xlhpf-like
baseline.  Shapes to check: every step improves; offset arrays are the
largest single win at large sizes; unioning's share grows as the problem
shrinks (communication-bound regime); the naive-HPF gap is an order of
magnitude beyond the whole ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels
from repro.baselines.naive import compile_xlhpf_like
from repro.compiler import compile_hpf
from repro.experiments.harness import (
    DEFAULT_SIZES, PAPER_GRID, Table, run_on_machine,
)

LEVELS = [
    ("O0", "original (naive MPI)"),
    ("O1", "+ offset arrays"),
    ("O2", "+ context partitioning"),
    ("O3", "+ communication unioning"),
    ("O4", "+ memory optimizations"),
]

#: the paper's measured per-step improvements on the SP-2
PAPER_STEP_IMPROVEMENTS = {"O1": 0.45, "O2": 0.31, "O3": 0.41, "O4": 0.14}
PAPER_TOTAL_SPEEDUP = 5.19
PAPER_XLHPF_SPEEDUP = 52.0


@dataclass
class Fig17Result:
    sizes: tuple[int, ...]
    times: dict[str, list[float]] = field(default_factory=dict)
    xlhpf_times: list[float] = field(default_factory=list)

    def step_improvement(self, level: str, size_index: int = -1) -> float:
        """Fractional improvement of ``level`` over the previous level."""
        order = [lv for lv, _ in LEVELS]
        i = order.index(level)
        prev = self.times[order[i - 1]][size_index]
        cur = self.times[level][size_index]
        return 1.0 - cur / prev

    def total_speedup(self, size_index: int = -1) -> float:
        return (self.times["O0"][size_index]
                / self.times["O4"][size_index])

    def xlhpf_speedup(self, size_index: int = -1) -> float:
        return (self.xlhpf_times[size_index]
                / self.times["O4"][size_index])


def run(sizes: tuple[int, ...] = DEFAULT_SIZES,
        grid: tuple[int, ...] = PAPER_GRID,
        iterations: int = 1) -> Fig17Result:
    result = Fig17Result(sizes=tuple(sizes))
    for level, _ in LEVELS:
        result.times[level] = []
    for n in sizes:
        for level, _ in LEVELS:
            cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": n},
                             level=level, outputs={"T"})
            res = run_on_machine(cp, grid=grid, iterations=iterations)
            result.times[level].append(res.modelled_time)
        base = compile_xlhpf_like(kernels.PURDUE_PROBLEM9,
                                  bindings={"N": n}, outputs={"T"})
        res = run_on_machine(base, grid=grid, iterations=iterations)
        result.xlhpf_times.append(res.modelled_time)
    return result


def build_tables(result: Fig17Result) -> list[Table]:
    t1 = Table(
        "Figure 17 — step-wise modelled execution time on Problem 9 "
        f"({'x'.join(map(str, PAPER_GRID))} PEs, seconds)",
        ["N"] + [label for _, label in LEVELS] + ["xlhpf-like"],
    )
    for i, n in enumerate(result.sizes):
        t1.add(n, *[result.times[lv][i] for lv, _ in LEVELS],
               result.xlhpf_times[i])

    t2 = Table(
        "Figure 17 — per-step improvement and cumulative speedup",
        ["N"] + [f"{lv} step %" for lv, _ in LEVELS[1:]]
        + ["total speedup", "vs xlhpf"],
    )
    for i, n in enumerate(result.sizes):
        steps = [100 * result.step_improvement(lv, i)
                 for lv, _ in LEVELS[1:]]
        t2.add(n, *steps, result.total_speedup(i),
               result.xlhpf_speedup(i))
    t2.note("paper (one size, SP-2): steps 45/31/41/14 %, total 5.19x, "
            "52x vs xlhpf")
    t2.note("communication unioning's share grows at small N "
            "(communication-bound regime)")
    return [t1, t2]


def build_chart(result: Fig17Result):
    from repro.experiments.charts import AsciiChart
    chart = AsciiChart(
        "Figure 17 — modelled time vs problem size (log scale)",
        [str(n) for n in result.sizes])
    for level, label in LEVELS:
        chart.add(label, result.times[level])
    chart.add("xlhpf-like", result.xlhpf_times)
    return chart


def main() -> None:
    result = run()
    for table in build_tables(result):
        print(table.render())
        print()
    print(build_chart(result).render())


if __name__ == "__main__":
    main()
