"""Shared experiment infrastructure: sweeps, tables, seeded inputs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.plan import CompiledProgram
from repro.machine import Machine

#: the paper's machine: a 4-processor IBM SP-2 as a 2x2 grid
PAPER_GRID: tuple[int, ...] = (2, 2)

#: default problem-size sweep (the paper sweeps to ~1000 on 4 PEs)
DEFAULT_SIZES: tuple[int, ...] = (128, 256, 512, 1024)


def seeded_grid(n: int, seed: int = 7, ndim: int = 2,
                dtype=np.float32) -> np.ndarray:
    """Deterministic input field for experiments."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n,) * ndim).astype(dtype)


def run_on_machine(compiled: CompiledProgram,
                   grid: tuple[int, ...] = PAPER_GRID,
                   inputs: dict[str, np.ndarray] | None = None,
                   scalars: dict[str, float] | None = None,
                   iterations: int = 1,
                   memory_per_pe: int | None = None,
                   profile: bool = False):
    """Execute a compiled program on a fresh machine; returns the
    :class:`~repro.runtime.executor.ExecutionResult`.

    ``profile=True`` attaches a communication profile
    (:class:`repro.obs.profile.CommProfile` on ``result.profile``);
    this keeps the per-message log, so leave it off for sweeps with
    millions of messages.
    """
    machine = Machine(grid=grid, memory_per_pe=memory_per_pe,
                      keep_message_log=profile)
    return compiled.run(machine, inputs=inputs, scalars=scalars,
                        iterations=iterations, profile=profile)


@dataclass
class Table:
    """A printable result table (the rows the paper's figures plot)."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [max([len(h)] + [len(r[i]) for r in cells])
                  for i, h in enumerate(self.headers)]
        sep = "-+-".join("-" * w for w in widths)
        out = [self.title, "=" * len(self.title)]
        out.append(" | ".join(h.ljust(w)
                              for h, w in zip(self.headers, widths)))
        out.append(sep)
        for row in cells:
            out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def column(self, header: str) -> list[Any]:
        i = list(self.headers).index(header)
        return [row[i] for row in self.rows]


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def sweep(sizes: Iterable[int],
          fn: Callable[[int], Sequence[Any]]) -> list[Sequence[Any]]:
    return [fn(n) for n in sizes]
