"""Robustness comparison (paper section 6).

The paper's central qualitative claim: earlier stencil compilers
"avoid the general problem by restricting the domain of applicability" —
the CM-2 convolution compiler accepts only single-statement
sum-of-products CSHIFT stencils, and naive HPF backends handle whatever
they accept badly.  This experiment quantifies the comparison: every
specification in our kernel suite against three backends (this
reproduction at O4, the xlhpf-like naive backend, the CM-2-style
pattern matcher), reporting acceptance, message count, temporaries, and
modelled time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels
from repro.baselines.naive import compile_xlhpf_like
from repro.baselines.pattern import PatternStencilCompiler
from repro.compiler import compile_hpf
from repro.errors import PatternMatchError
from repro.experiments.fig11 import count_temp_storage
from repro.experiments.harness import PAPER_GRID, Table, run_on_machine

SPECS = [
    ("5-pt array syntax", kernels.FIVE_POINT_ARRAY_SYNTAX, "DST", 64),
    ("9-pt CSHIFT single-stmt", kernels.NINE_POINT_CSHIFT, "DST", 64),
    ("9-pt array syntax", kernels.NINE_POINT_ARRAY_SYNTAX, "DST", 64),
    ("Problem 9 multi-stmt", kernels.PURDUE_PROBLEM9, "T", 64),
    ("25-pt radius-2", kernels.TWENTYFIVE_POINT_ARRAY_SYNTAX, "DST", 64),
    ("27-pt 3-D box", kernels.TWENTYSEVEN_POINT_3D_CSHIFT, "DST", 16),
]


@dataclass
class BackendOutcome:
    accepted: bool
    messages: int = 0
    temp_storage: int = 0
    modelled_time: float = 0.0
    reason: str = ""


@dataclass
class RobustnessResult:
    rows: list[tuple[str, dict[str, BackendOutcome]]] = field(
        default_factory=list)

    def outcome(self, spec_prefix: str, backend: str) -> BackendOutcome:
        for name, outcomes in self.rows:
            if name.startswith(spec_prefix):
                return outcomes[backend]
        raise KeyError(spec_prefix)


def _run(compiled, out, grid) -> BackendOutcome:
    res = run_on_machine(compiled, grid=grid)
    return BackendOutcome(True, res.report.messages,
                          count_temp_storage(compiled, out),
                          res.modelled_time)


def run(grid: tuple[int, ...] = PAPER_GRID) -> RobustnessResult:
    result = RobustnessResult()
    for name, source, out, n in SPECS:
        outcomes: dict[str, BackendOutcome] = {}
        outcomes["ours (O4)"] = _run(
            compile_hpf(source, bindings={"N": n}, level="O4",
                        outputs={out}), out, grid)
        outcomes["xlhpf-like"] = _run(
            compile_xlhpf_like(source, bindings={"N": n},
                               outputs={out}), out, grid)
        try:
            compiled = PatternStencilCompiler().compile(
                source, bindings={"N": n})
            outcomes["CM-2 pattern"] = _run(compiled, out, grid)
        except PatternMatchError as exc:
            outcomes["CM-2 pattern"] = BackendOutcome(
                False, reason=str(exc).split(";")[0][:48])
        result.rows.append((name, outcomes))
    return result


def build_table(result: RobustnessResult) -> Table:
    t = Table(
        "Robustness (section 6) — who compiles what, and how well",
        ["specification", "backend", "status", "msgs", "temps",
         "modelled time (s)"],
    )
    for name, outcomes in result.rows:
        for backend, o in outcomes.items():
            if o.accepted:
                t.add(name, backend, "ok", o.messages, o.temp_storage,
                      o.modelled_time)
            else:
                t.add(name, backend, "REJECTED", "-", "-", "-")
    t.note("the pattern matcher accepts only the exact single-statement "
           "sum-of-products CSHIFT shape; our strategy accepts all and "
           "compiles all to minimal communication")
    return t


def main() -> None:
    print(build_table(run()).render())


if __name__ == "__main__":
    main()
