"""Ablations of the design choices DESIGN.md calls out.

* loop fusion on/off at full optimization (``fusion_limit=1`` forces one
  statement per nest) — quantifies the over-fusion guard's baseline;
* unroll-and-jam factor sweep — the memory optimizer's one tuning knob
  (the CM-2 compiler's "multi-stencil swath" depth);
* pooled vs. fresh normalization temporaries — the Figure 11/12 storage
  policy;
* RSD corner pickup vs. naive per-corner communication — what
  communication unioning's RSD mechanism saves (two extra messages per
  corner pair would otherwise be required; we compare O3 against O2's
  per-requirement shifts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels
from repro.compiler import compile_hpf
from repro.experiments.fig11 import count_temp_storage
from repro.experiments.harness import PAPER_GRID, Table, run_on_machine


@dataclass
class AblationResult:
    n: int
    fusion: list[tuple[str, float]] = field(default_factory=list)
    unroll: list[tuple[int, float]] = field(default_factory=list)
    pooling: list[tuple[str, int]] = field(default_factory=list)
    corner: list[tuple[str, int, float]] = field(default_factory=list)
    extensions: list[tuple[str, float]] = field(default_factory=list)


def run(n: int = 512,
        grid: tuple[int, ...] = PAPER_GRID) -> AblationResult:
    result = AblationResult(n=n)

    # fusion on/off at O4
    for label, limit in [("fused (unlimited)", 0), ("unfused (limit 1)", 1)]:
        cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": n},
                         level="O4", outputs={"T"}, fusion_limit=limit)
        res = run_on_machine(cp, grid=grid)
        result.fusion.append((label, res.modelled_time))

    # unroll-and-jam factor sweep
    for u in (1, 2, 4, 8):
        cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": n},
                         level="O4", outputs={"T"}, unroll_jam=u)
        res = run_on_machine(cp, grid=grid)
        result.unroll.append((u, res.modelled_time))

    # temporary pooling policy (normalization) on the single-statement
    # form, compiled naively so temporaries survive
    for label, pooled in [("pooled", True), ("fresh per shift", False)]:
        cp = compile_hpf(kernels.NINE_POINT_CSHIFT, bindings={"N": n},
                         level="O0", outputs={"DST"}, pooled_temps=pooled)
        result.pooling.append((label, count_temp_storage(cp, "DST")))
    for label, pooled in [("pooled", True), ("fresh per shift", False)]:
        cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": n},
                         level="O0", outputs={"T"}, pooled_temps=pooled)
        result.pooling.append((f"Problem 9, {label}",
                               count_temp_storage(cp, "T")))

    # corner handling: O2 (per-requirement shifts, corners via chained
    # base-offset slabs) vs O3 (unioned with RSDs)
    for level in ("O2", "O3"):
        cp = compile_hpf(kernels.NINE_POINT_CSHIFT, bindings={"N": n},
                         level=level, outputs={"DST"})
        res = run_on_machine(cp, grid=grid)
        result.corner.append((level, res.report.messages,
                              res.modelled_time))

    # the extension optimizations on top of O4
    for label, opts in [("O4 baseline", {}),
                        ("+ comm/comp overlap", {"overlap_comm": True})]:
        cp = compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": n},
                         level="O4", outputs={"T"}, **opts)
        res = run_on_machine(cp, grid=grid)
        result.extensions.append((label, res.modelled_time))
    return result


def build_tables(result: AblationResult) -> list[Table]:
    t1 = Table(f"Ablation: loop fusion at O4 (Problem 9, N={result.n})",
               ["configuration", "modelled time (s)"])
    for label, time in result.fusion:
        t1.add(label, time)

    t2 = Table(f"Ablation: unroll-and-jam factor (Problem 9, N={result.n})",
               ["unroll factor", "modelled time (s)"])
    for u, time in result.unroll:
        t2.add(u, time)
    t2.note("diminishing returns beyond u=2-4: row loads amortise as "
            "(span+u-1)/u")

    t3 = Table("Ablation: normalization temporary policy (naive backend)",
               ["configuration", "temp arrays"])
    for label, temps in result.pooling:
        t3.add(label, temps)

    t4 = Table(f"Ablation: corner communication (9-pt CSHIFT, N={result.n})",
               ["level", "messages", "modelled time (s)"])
    for level, msgs, time in result.corner:
        t4.add(level, msgs, time)
    t4.note("O3's RSDs carry corners inside the 4 face messages")

    t5 = Table(f"Extension: communication/computation overlap "
               f"(Problem 9, N={result.n})",
               ["configuration", "modelled time (s)"])
    for label, time in result.extensions:
        t5.add(label, time)
    t5.note("interior points compute while halo messages are in flight")
    return [t1, t2, t3, t4, t5]


def main() -> None:
    for table in build_tables(run()):
        print(table.render())
        print()


if __name__ == "__main__":
    main()
