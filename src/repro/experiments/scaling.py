"""Extension study: scaling with processor count.

The paper's SP-2 had 4 processors; the simulator lets us ask how the
compiled code scales.  Fixed problem size (strong scaling), grids from
1x1 to 8x8: compute shrinks with P while the per-PE message count stays
constant (4 messages per stencil application regardless of P — the point
of communication unioning), so the communication fraction grows and the
speedup curve rolls off exactly where the model predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels
from repro.compiler import compile_hpf
from repro.experiments.harness import Table, run_on_machine

DEFAULT_GRIDS = ((1, 1), (2, 1), (2, 2), (4, 2), (4, 4), (8, 4), (8, 8))


@dataclass
class ScalingRow:
    grid: tuple[int, int]
    npes: int
    modelled_time: float
    speedup: float
    efficiency: float
    comm_fraction: float
    messages: int


@dataclass
class ScalingResult:
    n: int
    level: str
    rows: list[ScalingRow] = field(default_factory=list)


def run(n: int = 1024, level: str = "O4",
        grids: tuple[tuple[int, int], ...] = DEFAULT_GRIDS) -> ScalingResult:
    result = ScalingResult(n=n, level=level)
    base: float | None = None
    for grid in grids:
        compiled = compile_hpf(kernels.PURDUE_PROBLEM9,
                               bindings={"N": n}, level=level,
                               outputs={"T"})
        res = run_on_machine(compiled, grid=grid)
        t = res.modelled_time
        base = base if base is not None else t
        npes = grid[0] * grid[1]
        result.rows.append(ScalingRow(
            grid, npes, t, base / t, base / t / npes,
            res.report.comm_time_fraction, res.report.messages))
    return result


def build_table(result: ScalingResult) -> Table:
    t = Table(
        f"Strong scaling — Problem 9 at {result.level}, N={result.n}",
        ["grid", "PEs", "modelled time (s)", "speedup", "efficiency",
         "comm %", "messages"],
    )
    for r in result.rows:
        t.add("x".join(map(str, r.grid)), r.npes, r.modelled_time,
              r.speedup, r.efficiency, 100 * r.comm_fraction, r.messages)
    t.note("per-PE message count is constant (4 per application): "
           "unioning already minimised it, so scaling rolls off only "
           "through the fixed per-message latency")
    return t


def main() -> None:
    print(build_table(run()).render())


if __name__ == "__main__":
    main()
