"""Frontend: lexer and parser for the Fortran 90 / HPF subset.

The subset covers everything the paper's kernels use: type declarations,
``PARAMETER`` constants, HPF ``DISTRIBUTE``/``ALIGN`` directives,
``ALLOCATE``/``DEALLOCATE``, array assignment with section triplets,
``CSHIFT``/``EOSHIFT`` intrinsics, ``DO`` loops and ``IF`` blocks, and
``&`` continuation lines.  The parser builds :mod:`repro.ir` programs
directly.
"""

from repro.frontend.parser import parse_program  # noqa: F401
from repro.frontend.lexer import tokenize  # noqa: F401
