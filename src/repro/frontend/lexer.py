"""Tokenizer for the Fortran 90 / HPF subset.

Fortran specifics handled here so the parser can stay simple:

* free-form ``&`` continuations (trailing ``&`` joins the next line;
  a leading ``&`` on the continuation line is consumed too);
* ``!`` comments, except ``!HPF$`` directive lines which are lexed as
  ordinary statements prefixed with the :data:`HPFDIR` token;
* case-insensitive keywords and identifiers (identifiers are upcased);
* ``::``, ``=``, relational operators, and numeric literals (including
  ``1.0E-3`` forms).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import LexError

KEYWORDS = {
    "REAL", "DOUBLE", "PRECISION", "INTEGER", "LOGICAL", "DIMENSION",
    "PARAMETER", "ALLOCATABLE", "ALLOCATE", "DEALLOCATE", "CALL",
    "DO", "WHILE", "ENDDO", "END", "IF", "THEN", "ELSE", "ENDIF", "WHERE",
    "ELSEWHERE", "ENDWHERE",
    "PROGRAM", "SUBROUTINE", "IMPLICIT", "NONE",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: str          # NAME, KEYWORD, INT, FLOAT, op strings, HPFDIR, NEWLINE, EOF
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}:{self.text!r}@{self.line}:{self.column}"


_TOKEN_RE = re.compile(
    r"""
      (?P<FLOAT>\d+\.\d*(?:[EeDd][+-]?\d+)?|\.\d+(?:[EeDd][+-]?\d+)?
               |\d+[EeDd][+-]?\d+)
    | (?P<INT>\d+)
    | (?P<NAME>[A-Za-z][A-Za-z0-9_]*)
    | (?P<DCOLON>::)
    | (?P<POW>\*\*)
    | (?P<LE><=)|(?P<GE>>=)|(?P<EQEQ>==)|(?P<NE>/=)
    | (?P<OP>[-+*/(),:=<>\[\]])
    | (?P<WS>[ \t]+)
    """,
    re.VERBOSE,
)

_HPF_PREFIX = re.compile(r"^\s*!HPF\$", re.IGNORECASE)
_CHPF_PREFIX = re.compile(r"^\s*CHPF\$", re.IGNORECASE)


def _logical_lines(source: str) -> Iterator[tuple[int, str, bool]]:
    """Yield (first_line_number, joined_text, is_directive) logical lines.

    Handles both continuation styles the paper's figures use: free-form
    (previous line ends with ``&``) and fixed-form (continuation line
    begins with ``&``, traditionally in column 6).  Comments are stripped;
    ``!HPF$``/``CHPF$`` lines are flagged as directives.
    """
    pending: str | None = None
    pending_line = 0
    pending_dir = False
    trailing_amp = False

    def flush() -> Iterator[tuple[int, str, bool]]:
        nonlocal pending
        if pending is not None:
            yield pending_line, pending, pending_dir
            pending = None

    for lineno, raw in enumerate(source.splitlines(), start=1):
        is_dir = bool(_HPF_PREFIX.match(raw) or _CHPF_PREFIX.match(raw))
        if is_dir:
            text = re.sub(r"^\s*(!HPF\$|CHPF\$)", "", raw,
                          flags=re.IGNORECASE)
        else:
            # strip comment (no string literals in the subset)
            bang = raw.find("!")
            text = raw[:bang] if bang >= 0 else raw
        text = text.rstrip()
        if not text.strip():
            continue
        leading_amp = text.lstrip().startswith("&")
        continues_prev = trailing_amp or leading_amp
        if leading_amp:
            # drop through the '&' but keep the text afterwards
            text = text.lstrip()[1:]
        trailing_amp = text.rstrip().endswith("&")
        if trailing_amp:
            text = text.rstrip()[:-1]
        if continues_prev and pending is not None:
            pending += " " + text.strip()
            continue
        yield from flush()
        # keep leading whitespace on fresh lines so columns are accurate
        pending = text
        pending_line = lineno
        pending_dir = is_dir
    yield from flush()


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` into a flat list ending with an EOF token.

    Logical lines are separated by NEWLINE tokens; HPF directive lines are
    introduced by an HPFDIR token.
    """
    tokens: list[Token] = []
    last_line = 0
    for lineno, text, is_dir in _logical_lines(source):
        last_line = lineno
        if is_dir:
            tokens.append(Token("HPFDIR", "!HPF$", lineno, 1))
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if not m:
                raise LexError(f"unexpected character {text[pos]!r}",
                               lineno, pos + 1)
            kind = m.lastgroup or ""
            value = m.group()
            pos = m.end()
            if kind == "WS":
                continue
            col = m.start() + 1
            if kind == "NAME":
                upper = value.upper()
                if upper in KEYWORDS:
                    tokens.append(Token("KEYWORD", upper, lineno, col))
                else:
                    tokens.append(Token("NAME", upper, lineno, col))
            elif kind == "OP":
                tokens.append(Token(value, value, lineno, col))
            elif kind == "DCOLON":
                tokens.append(Token("::", "::", lineno, col))
            elif kind == "POW":
                tokens.append(Token("**", "**", lineno, col))
            elif kind in ("LE", "GE", "EQEQ", "NE"):
                tokens.append(Token(value, value, lineno, col))
            elif kind == "FLOAT":
                tokens.append(Token("FLOAT", value, lineno, col))
            elif kind == "INT":
                tokens.append(Token("INT", value, lineno, col))
            else:  # pragma: no cover - regex is exhaustive
                raise LexError(f"unhandled token kind {kind}", lineno, col)
        tokens.append(Token("NEWLINE", "\n", lineno, len(text) + 1))
    tokens.append(Token("EOF", "", last_line + 1, 1))
    return tokens
