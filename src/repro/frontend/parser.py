"""Recursive-descent parser building IR programs from HPF source.

Entry point: :func:`parse_program`.

The parser resolves declarations eagerly: ``PARAMETER`` constants (or the
``bindings`` argument) give every array a concrete shape at parse time, as
the experiments compile one program per problem size.  Section bounds stay
symbolic (:class:`~repro.ir.linexpr.LinExpr`) so the IR prints the way the
paper writes it (``DST(2:N-1,2:N-1)``).
"""

from __future__ import annotations

from repro.errors import (
    ParseError, SemanticError, UnsupportedDistributionError,
    UnsupportedFeatureError,
)
from repro.frontend.lexer import Token, tokenize
from repro.ir.linexpr import LinExpr
from repro.ir.nodes import (
    ELEMENTWISE_INTRINSICS, REDUCTION_INTRINSICS, Allocate, ArrayAssign,
    ArrayRef, BinOp, Compare, Const, CShift, Deallocate, DoLoop, DoWhile,
    EOShift, Expr, If, Intrinsic, Reduction, ScalarAssign, ScalarRef,
    Stmt, Triplet, UnaryOp,
)
from repro.ir.program import Program
from repro.ir.symbols import SymbolTable
from repro.ir.types import ArrayType, DistKind, Distribution, ScalarKind

_INTRINSICS = {"CSHIFT", "EOSHIFT"}


class _Parser:
    def __init__(self, tokens: list[Token], symbols: SymbolTable) -> None:
        self.tokens = tokens
        self.pos = 0
        self.symbols = symbols
        # deferred-shape (ALLOCATABLE) declarations awaiting ALLOCATE
        self.deferred: dict[str, tuple[ScalarKind, int]] = {}
        self._deferred_dists: dict[str, Distribution] = {}
        self.align_requests: list[tuple[str, str]] = []
        # statements a construct lowers to *before* the one it returns
        # (WHERE mask materialisation)
        self._pending_stmts: list[Stmt] = []
        self.processors: tuple[int, ...] | None = None

    # -- token plumbing ----------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            got = self.peek()
            want = text or kind
            raise ParseError(f"expected {want!r}, found {got.text!r}",
                             got.line, got.column)
        return tok

    def end_statement(self) -> None:
        if not (self.accept("NEWLINE") or self.peek().kind == "EOF"):
            got = self.peek()
            raise ParseError(f"unexpected {got.text!r} at end of statement",
                             got.line, got.column)

    def skip_newlines(self) -> None:
        while self.accept("NEWLINE"):
            pass

    # -- program -----------------------------------------------------------
    def parse(self) -> list[Stmt]:
        self.skip_newlines()
        # optional PROGRAM header / IMPLICIT NONE
        if self.accept("KEYWORD", "PROGRAM"):
            self.expect("NAME")
            self.end_statement()
        self.skip_newlines()
        if self.accept("KEYWORD", "IMPLICIT"):
            self.expect("KEYWORD", "NONE")
            self.end_statement()
        body = self.parse_block(until=("EOF",))
        self._apply_alignments()
        return body

    def parse_block(self, until: tuple[str, ...]) -> list[Stmt]:
        body: list[Stmt] = []
        while True:
            self.skip_newlines()
            tok = self.peek()
            if tok.kind == "EOF":
                if "EOF" not in until:
                    raise ParseError("unexpected end of input",
                                     tok.line, tok.column)
                return body
            if tok.kind == "KEYWORD" and tok.text in until:
                return body
            if tok.kind == "KEYWORD" and tok.text == "END" and \
                    self.peek(1).kind == "KEYWORD" and \
                    self.peek(1).text in {u.removeprefix("END")
                                          for u in until if u != "EOF"}:
                # "END DO" / "END IF" split keywords
                return body
            stmt = self.parse_statement()
            if self._pending_stmts:
                body.extend(self._pending_stmts)
                self._pending_stmts.clear()
            if stmt is not None:
                body.append(stmt)

    # -- statements ----------------------------------------------------------
    def parse_statement(self) -> Stmt | None:
        tok = self.peek()
        if tok.kind == "HPFDIR":
            self.parse_directive()
            return None
        if tok.kind == "KEYWORD":
            if tok.text in ("REAL", "DOUBLE", "INTEGER", "LOGICAL"):
                self.parse_declaration()
                return None
            if tok.text == "PARAMETER":
                self.parse_parameter()
                return None
            if tok.text == "ALLOCATE":
                return self.parse_allocate()
            if tok.text == "DEALLOCATE":
                return self.parse_deallocate()
            if tok.text == "CALL":
                raise UnsupportedFeatureError(
                    "CALL statements are not part of the input subset "
                    "(OVERLAP_SHIFT is generated by the compiler, not "
                    "written by the user)", tok.line)
            if tok.text == "DO":
                return self.parse_do()
            if tok.text == "IF":
                return self.parse_if()
            if tok.text == "WHERE":
                return self.parse_where()
            if tok.text == "END":
                self.advance()
                # bare END (program end)
                while self.peek().kind in ("KEYWORD", "NAME"):
                    self.advance()
                self.end_statement()
                return None
        if tok.kind == "NAME":
            return self.parse_assignment()
        raise ParseError(f"cannot parse statement starting with {tok.text!r}",
                         tok.line, tok.column)

    # -- declarations --------------------------------------------------------
    def _scalar_kind(self) -> ScalarKind:
        tok = self.advance()
        if tok.text == "REAL":
            return ScalarKind.REAL
        if tok.text == "DOUBLE":
            self.expect("KEYWORD", "PRECISION")
            return ScalarKind.DOUBLE
        if tok.text == "INTEGER":
            return ScalarKind.INTEGER
        if tok.text == "LOGICAL":
            return ScalarKind.LOGICAL
        raise ParseError(f"unknown type {tok.text!r}", tok.line, tok.column)

    def parse_declaration(self) -> None:
        kind = self._scalar_kind()
        dims: tuple[int, ...] | None = None
        deferred_rank: int | None = None
        is_param = False
        while self.accept(","):
            attr = self.expect("KEYWORD")
            if attr.text == "DIMENSION":
                dims, deferred_rank = self.parse_dim_spec()
            elif attr.text == "ALLOCATABLE":
                pass  # deferred shape implied by (:,:) spec
            elif attr.text == "PARAMETER":
                is_param = True
            else:
                raise UnsupportedFeatureError(
                    f"declaration attribute {attr.text} not supported",
                    attr.line)
        self.accept("::")
        while True:
            name = self.expect("NAME").text
            entity_dims, entity_deferred = dims, deferred_rank
            if self.peek().kind == "(":
                entity_dims, entity_deferred = self.parse_dim_spec()
            if is_param:
                self.expect("=")
                value = self.parse_int_expr().evaluate(self.symbols.params)
                self.symbols.bind_param(name, value)
            elif entity_deferred is not None:
                self.deferred[name] = (kind, entity_deferred)
            elif entity_dims is not None:
                self.symbols.declare_array(
                    name, ArrayType(kind, entity_dims))
            else:
                self.symbols.declare_scalar(name, kind)
            if not self.accept(","):
                break
        self.end_statement()

    def parse_dim_spec(self) -> tuple[tuple[int, ...] | None, int | None]:
        """Parse ``(N,N)`` (concrete) or ``(:,:)`` (deferred) specs."""
        self.expect("(")
        if self.peek().kind == ":":
            rank = 0
            while True:
                self.expect(":")
                rank += 1
                if not self.accept(","):
                    break
            self.expect(")")
            return None, rank
        extents: list[int] = []
        while True:
            extents.append(
                self.parse_int_expr().evaluate(self.symbols.params))
            if not self.accept(","):
                break
        self.expect(")")
        return tuple(extents), None

    def parse_parameter(self) -> None:
        self.expect("KEYWORD", "PARAMETER")
        self.expect("(")
        while True:
            name = self.expect("NAME").text
            self.expect("=")
            value = self.parse_int_expr().evaluate(self.symbols.params)
            self.symbols.bind_param(name, value)
            if not self.accept(","):
                break
        self.expect(")")
        self.end_statement()

    # -- HPF directives --------------------------------------------------------
    def parse_directive(self) -> None:
        self.expect("HPFDIR")
        word = self.expect("NAME").text
        if word == "DISTRIBUTE":
            self.parse_distribute()
        elif word == "ALIGN":
            self.parse_align()
        elif word == "PROCESSORS":
            self.parse_processors()
        elif word == "TEMPLATE":
            # templates only matter through ALIGN, which we resolve
            # directly; consume and ignore
            while self.peek().kind not in ("NEWLINE", "EOF"):
                self.advance()
            self.end_statement()
            return
        else:
            raise UnsupportedFeatureError(
                f"HPF directive {word} not supported", self.peek().line)

    def parse_processors(self) -> None:
        """``!HPF$ PROCESSORS P(2,2)`` — the abstract processor grid.

        Recorded on the program; the executor checks the machine's grid
        against it (the HPF mapping assumed the declared arrangement).
        """
        self.expect("NAME")  # the arrangement's name
        dims: list[int] = []
        if self.accept("("):
            while True:
                dims.append(
                    self.parse_int_expr().evaluate(self.symbols.params))
                if not self.accept(","):
                    break
            self.expect(")")
        self.end_statement()
        self.processors = tuple(dims) if dims else (1,)

    def parse_distribute(self) -> None:
        name = self.expect("NAME").text
        self.expect("(")
        kinds: list[DistKind] = []
        while True:
            tok = self.advance()
            if tok.kind == "NAME" and tok.text == "BLOCK":
                kinds.append(DistKind.BLOCK)
            elif tok.kind == "*":
                kinds.append(DistKind.COLLAPSED)
            elif tok.kind == "NAME" and tok.text == "CYCLIC":
                raise UnsupportedDistributionError(
                    "CYCLIC distributions are outside the paper's scope "
                    "(section 2.1 assumes BLOCK)", tok.line)
            else:
                raise ParseError(f"bad distribution format {tok.text!r}",
                                 tok.line, tok.column)
            if not self.accept(","):
                break
        self.expect(")")
        self.end_statement()
        dist = Distribution(tuple(kinds))
        if self.symbols.is_array(name):
            sym = self.symbols.array(name)
            if len(dist.dims) != sym.type.rank:
                raise SemanticError(
                    f"DISTRIBUTE rank mismatch for {name}")
            sym.distribution = dist
        elif name in self.deferred:
            # applied when the array is ALLOCATEd
            self._deferred_dists[name] = dist
        else:
            raise SemanticError(f"DISTRIBUTE of undeclared array {name}")

    def parse_align(self) -> None:
        target = self.expect("NAME").text
        with_kw = self.expect("NAME")
        if with_kw.text != "WITH":
            raise ParseError("expected WITH in ALIGN directive",
                             with_kw.line, with_kw.column)
        source = self.expect("NAME").text
        self.end_statement()
        self.align_requests.append((target, source))

    def _apply_alignments(self) -> None:
        for target, source in self.align_requests:
            if not (self.symbols.is_array(target)
                    and self.symbols.is_array(source)):
                raise SemanticError(
                    f"ALIGN {target} WITH {source}: both must be arrays")
            self.symbols.array(target).distribution = \
                self.symbols.array(source).distribution

    # -- allocate / deallocate ---------------------------------------------------
    def parse_allocate(self) -> Allocate:
        self.expect("KEYWORD", "ALLOCATE")
        self.expect("(")
        names: list[str] = []
        while True:
            name = self.expect("NAME").text
            if self.peek().kind == "(":
                dims, deferred = self.parse_dim_spec()
                if deferred is not None:
                    raise ParseError("ALLOCATE requires concrete extents",
                                     self.peek().line)
                if name in self.deferred:
                    kind, rank = self.deferred.pop(name)
                    if len(dims) != rank:  # type: ignore[arg-type]
                        raise SemanticError(
                            f"ALLOCATE rank mismatch for {name}")
                    dist = self._deferred_dists.pop(name, None)
                    self.symbols.declare_array(
                        name, ArrayType(kind, dims), dist,  # type: ignore[arg-type]
                        is_temporary=True)
                elif not self.symbols.is_array(name):
                    raise SemanticError(
                        f"ALLOCATE of undeclared array {name}")
            elif not self.symbols.is_array(name):
                raise SemanticError(f"ALLOCATE of undeclared array {name}")
            names.append(name)
            if not self.accept(","):
                break
        self.expect(")")
        self.end_statement()
        return Allocate(names)

    def parse_deallocate(self) -> Deallocate:
        self.expect("KEYWORD", "DEALLOCATE")
        self.expect("(")
        names: list[str] = []
        while True:
            names.append(self.expect("NAME").text)
            if not self.accept(","):
                break
        self.expect(")")
        self.end_statement()
        return Deallocate(names)

    # -- control flow ------------------------------------------------------------
    def parse_do(self) -> "DoLoop | DoWhile":
        self.expect("KEYWORD", "DO")
        if self.peek().kind == "KEYWORD" and self.peek().text == "WHILE":
            return self.parse_do_while()
        var = self.expect("NAME").text
        if not self.symbols.is_scalar(var):
            self.symbols.declare_scalar(var, ScalarKind.INTEGER)
        self.expect("=")
        lo = self.parse_int_expr()
        self.expect(",")
        hi = self.parse_int_expr()
        self.end_statement()
        body = self.parse_block(until=("ENDDO",))
        if not self.accept("KEYWORD", "ENDDO"):
            self.expect("KEYWORD", "END")
            self.expect("KEYWORD", "DO")
        self.end_statement()
        return DoLoop(var, lo, hi, body)

    def parse_do_while(self) -> DoWhile:
        self.expect("KEYWORD", "WHILE")
        self.expect("(")
        cond = self.parse_condition()
        self.expect(")")
        for node in cond.walk():
            if isinstance(node, (CShift, EOShift)):
                raise UnsupportedFeatureError(
                    "shift intrinsics inside a DO WHILE condition are "
                    "not supported; compute them in the loop body")
        self.end_statement()
        body = self.parse_block(until=("ENDDO",))
        if not self.accept("KEYWORD", "ENDDO"):
            self.expect("KEYWORD", "END")
            self.expect("KEYWORD", "DO")
        self.end_statement()
        return DoWhile(cond, body)

    def parse_if(self) -> If:
        self.expect("KEYWORD", "IF")
        self.expect("(")
        cond = self.parse_condition()
        self.expect(")")
        self.expect("KEYWORD", "THEN")
        self.end_statement()
        then_body = self.parse_block(until=("ELSE", "ENDIF"))
        else_body: list[Stmt] = []
        if self.accept("KEYWORD", "ELSE"):
            self.end_statement()
            else_body = self.parse_block(until=("ENDIF",))
        if not self.accept("KEYWORD", "ENDIF"):
            self.expect("KEYWORD", "END")
            self.expect("KEYWORD", "IF")
        self.end_statement()
        return If(cond, then_body, else_body)

    # -- WHERE constructs -------------------------------------------------------
    def parse_where(self) -> Stmt:
        """WHERE masked assignment.

        The mask expression is materialised into a LOGICAL temporary up
        front (Fortran evaluates the mask once per construct), then every
        body statement carries an aligned reference of that temporary:

            WHERE (U > 0)          MASK1 = U > 0
              A = ...       ==>    WHERE(MASK1) A = ...
            ELSEWHERE              WHERE(MASK1 == 0) A = ...
              A = ...
            END WHERE

        Returns a single statement for one-line WHERE, or a synthetic
        grouping of the lowered statements (flattened into the enclosing
        block by the caller via ``_pending_stmts``).
        """
        if getattr(self, "_in_where", False):
            tok = self.peek()
            raise UnsupportedFeatureError(
                "nested WHERE constructs are not supported", tok.line)
        self.expect("KEYWORD", "WHERE")
        self.expect("(")
        mask_expr = self.parse_condition()
        self.expect(")")
        mask_ref, mask_stmt = self._materialize_mask(mask_expr)
        else_mask = Compare("==", mask_ref, Const(0.0))

        if self.peek().kind != "NEWLINE":
            # single-statement form: WHERE (mask) A = expr
            stmt = self.parse_assignment()
            if not isinstance(stmt, ArrayAssign):
                raise SemanticError(
                    "WHERE governs array assignments only")
            self._check_mask_conformance(mask_ref, stmt)
            stmt.mask = mask_ref
            self._pending_stmts.append(mask_stmt)
            return stmt
        self.end_statement()
        self._in_where = True
        try:
            body = self.parse_block(until=("ELSEWHERE", "ENDWHERE"))
            else_body: list[Stmt] = []
            if self.accept("KEYWORD", "ELSEWHERE"):
                self.end_statement()
                else_body = self.parse_block(until=("ENDWHERE",))
        finally:
            self._in_where = False
        if not self.accept("KEYWORD", "ENDWHERE"):
            self.expect("KEYWORD", "END")
            self.expect("KEYWORD", "WHERE")
        self.end_statement()
        lowered: list[Stmt] = [mask_stmt]
        for stmt, mask in [(s, mask_ref) for s in body] + \
                          [(s, else_mask) for s in else_body]:
            if not isinstance(stmt, ArrayAssign) or stmt.mask is not None:
                raise SemanticError(
                    "WHERE bodies may contain only unmasked array "
                    "assignments")
            self._check_mask_conformance(mask_ref, stmt)
            stmt.mask = mask
            lowered.append(stmt)
        self._pending_stmts.extend(lowered[:-1])
        return lowered[-1]

    def _materialize_mask(self, mask_expr: Expr) -> tuple[ArrayRef,
                                                          ArrayAssign]:
        from repro.ir.nodes import array_names
        names = sorted(array_names(mask_expr))
        if not names:
            raise SemanticError(
                "WHERE mask must be an array expression (use IF for "
                "scalar conditions)")
        like = self.symbols.array(names[0])
        section = None
        for node in mask_expr.walk():
            if isinstance(node, ArrayRef) and node.section is not None:
                section = node.section
                break
        mask_sym = self.symbols.new_temp(
            like, prefix="MASK",
            type_=ArrayType(ScalarKind.LOGICAL, like.type.shape))
        mask_ref = ArrayRef(mask_sym.name, section)
        return mask_ref, ArrayAssign(ArrayRef(mask_sym.name, section),
                                     mask_expr)

    def _check_mask_conformance(self, mask_ref: ArrayRef,
                                stmt: ArrayAssign) -> None:
        """Mask and assignment pair elements positionally; we require
        identical sections (or both whole) so alignment is trivial."""
        msec = tuple(map(str, mask_ref.section)) \
            if mask_ref.section else None
        ssec = tuple(map(str, stmt.lhs.section)) \
            if stmt.lhs.section else None
        mask_shape = self.symbols.array(mask_ref.name).type.shape
        lhs_shape = self.symbols.array(stmt.lhs.name).type.shape
        if msec != ssec or (msec is None and mask_shape != lhs_shape):
            raise UnsupportedFeatureError(
                f"WHERE mask section {msec} must match the assignment "
                f"section {ssec} (general mask realignment is outside "
                f"the stencil subset)")

    def parse_condition(self) -> Expr:
        left = self.parse_expr()
        tok = self.peek()
        if tok.kind in ("<", ">", "<=", ">=", "==", "/="):
            self.advance()
            right = self.parse_expr()
            return Compare(tok.kind, left, right)
        return left

    # -- assignment ----------------------------------------------------------
    def parse_assignment(self) -> Stmt:
        name = self.expect("NAME").text
        if self.symbols.is_array(name) or name in self.deferred:
            if name in self.deferred:
                raise SemanticError(
                    f"array {name} used before ALLOCATE")
            section = None
            if self.peek().kind == "(":
                section = self.parse_section(name)
            self.expect("=")
            rhs = self.parse_expr()
            self.end_statement()
            return ArrayAssign(ArrayRef(name, section), rhs)
        # scalar assignment (auto-declares, Fortran implicit style)
        if not self.symbols.is_scalar(name):
            if name in self.symbols.params:
                raise SemanticError(f"cannot assign to PARAMETER {name}")
            self.symbols.declare_scalar(name)
        self.expect("=")
        rhs = self.parse_expr()
        self.end_statement()
        self._check_scalar_rhs(name, rhs)
        return ScalarAssign(name, rhs)

    def _check_scalar_rhs(self, name: str, rhs: Expr) -> None:
        """Array references are only scalar-valued inside reductions."""
        if isinstance(rhs, Reduction):
            return
        if isinstance(rhs, ArrayRef):
            raise SemanticError(
                f"scalar {name} assigned an array-valued expression "
                f"(references {rhs.name}); wrap it in SUM/MAXVAL/MINVAL "
                f"or declare {name} as an array")
        for child in rhs.children():
            self._check_scalar_rhs(name, child)

    def parse_section(self, array_name: str) -> tuple[Triplet, ...]:
        sym = self.symbols.array(array_name)
        self.expect("(")
        triplets: list[Triplet] = []
        dim = 0
        while True:
            if dim >= sym.type.rank:
                raise SemanticError(
                    f"too many subscripts for {array_name}")
            extent = sym.type.shape[dim]
            if self.peek().kind == ":":
                lo: LinExpr = LinExpr(1)
            else:
                lo = self.parse_int_expr()
            if self.accept(":"):
                if self.peek().kind in (",", ")"):
                    hi: LinExpr = LinExpr(extent)
                else:
                    hi = self.parse_int_expr()
                triplets.append(Triplet(lo, hi))
            else:
                triplets.append(Triplet(lo, lo))  # single index
            dim += 1
            if not self.accept(","):
                break
        self.expect(")")
        if dim != sym.type.rank:
            raise SemanticError(
                f"rank mismatch subscripting {array_name}: got {dim}, "
                f"need {sym.type.rank}")
        return tuple(triplets)

    # -- expressions ---------------------------------------------------------
    def parse_expr(self) -> Expr:
        expr = self.parse_term()
        while True:
            tok = self.peek()
            if tok.kind in ("+", "-"):
                self.advance()
                expr = BinOp(tok.kind, expr, self.parse_term())
            else:
                return expr

    def parse_term(self) -> Expr:
        expr = self.parse_factor()
        while True:
            tok = self.peek()
            if tok.kind in ("*", "/"):
                self.advance()
                expr = BinOp(tok.kind, expr, self.parse_factor())
            else:
                return expr

    def parse_factor(self) -> Expr:
        tok = self.peek()
        if tok.kind == "-":
            self.advance()
            return UnaryOp("-", self.parse_factor())
        if tok.kind == "+":
            self.advance()
            return self.parse_factor()
        return self.parse_power()

    def parse_power(self) -> Expr:
        base = self.parse_primary()
        if self.accept("**"):
            # Fortran exponentiation is right associative
            return BinOp("**", base, self.parse_factor())
        return base

    def parse_primary(self) -> Expr:
        tok = self.advance()
        if tok.kind == "INT":
            return Const(float(int(tok.text)))
        if tok.kind == "FLOAT":
            return Const(float(tok.text.replace("D", "E").replace("d", "e")))
        if tok.kind == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok.kind == "NAME":
            name = tok.text
            if name in _INTRINSICS:
                return self.parse_intrinsic(name)
            if name in ELEMENTWISE_INTRINSICS and self.peek().kind == "(":
                return self.parse_elementwise(name)
            if name in REDUCTION_INTRINSICS and self.peek().kind == "(":
                self.expect("(")
                arg = self.parse_expr()
                self.expect(")")
                return Reduction(name, arg)
            if self.symbols.is_array(name):
                section = None
                if self.peek().kind == "(":
                    section = self.parse_section(name)
                return ArrayRef(name, section)
            if name in self.deferred:
                raise SemanticError(
                    f"array {name} used before ALLOCATE", tok.line)
            if name in self.symbols.params:
                # keep size parameters symbolic; the executor resolves them
                return ScalarRef(name)
            if not self.symbols.is_scalar(name):
                self.symbols.declare_scalar(name)
            return ScalarRef(name)
        raise ParseError(f"unexpected token {tok.text!r} in expression",
                         tok.line, tok.column)

    def parse_elementwise(self, name: str) -> Expr:
        self.expect("(")
        args = [self.parse_expr()]
        while self.accept(","):
            args.append(self.parse_expr())
        self.expect(")")
        return Intrinsic(name, tuple(args))

    def parse_intrinsic(self, name: str) -> Expr:
        self.expect("(")
        where = self.peek()
        array = self.parse_expr()
        from repro.ir.nodes import array_names
        if not array_names(array):
            raise SemanticError(
                f"{name} shifts arrays, but its argument references "
                f"none (is an array undeclared?)", where.line,
                where.column)
        kwargs: dict[str, float] = {}
        order = ["SHIFT", "DIM"] if name == "CSHIFT" else \
                ["SHIFT", "BOUNDARY", "DIM"]
        positional = 0
        while self.accept(","):
            tok = self.peek()
            if tok.kind == "NAME" and tok.text in ("SHIFT", "DIM",
                                                   "BOUNDARY") \
                    and self.peek(1).kind == "=":
                key = self.advance().text
                self.expect("=")
                kwargs[key] = self._const_arg()
            else:
                if positional >= len(order):
                    raise ParseError(f"too many arguments to {name}",
                                     tok.line, tok.column)
                kwargs[order[positional]] = self._const_arg()
                positional += 1
        self.expect(")")
        if "SHIFT" not in kwargs:
            raise SemanticError(f"{name} requires a SHIFT argument")
        shift = int(kwargs["SHIFT"])
        dim = int(kwargs.get("DIM", 1))
        if name == "CSHIFT":
            return CShift(array, shift, dim)
        return EOShift(array, shift, dim, kwargs.get("BOUNDARY", 0.0))

    def _const_arg(self) -> float:
        """An intrinsic argument: must fold to a constant at parse time.

        The offset-array criteria (paper 3.1) require small constant
        shifts; non-constant shifts are rejected up front.
        """
        expr = self.parse_expr()
        value = _fold_const(expr, self.symbols.params)
        if value is None:
            raise UnsupportedFeatureError(
                "CSHIFT/EOSHIFT arguments must be compile-time constants "
                "(the paper's offset-array criteria require small constant "
                "shifts)", self.peek().line)
        return value

    def parse_int_expr(self) -> LinExpr:
        """Parse an affine integer expression (section bounds, extents)."""
        expr = self.parse_expr()
        lin = _to_linexpr(expr, self.symbols.params)
        if lin is None:
            tok = self.peek()
            raise ParseError("expected an affine integer expression",
                             tok.line, tok.column)
        return lin


def _fold_const(expr: Expr, params: dict[str, int]) -> float | None:
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, ScalarRef) and expr.name in params:
        return float(params[expr.name])
    if isinstance(expr, UnaryOp):
        v = _fold_const(expr.operand, params)
        return None if v is None else -v
    if isinstance(expr, BinOp):
        lv = _fold_const(expr.left, params)
        rv = _fold_const(expr.right, params)
        if lv is None or rv is None:
            return None
        if expr.op == "+":
            return lv + rv
        if expr.op == "-":
            return lv - rv
        if expr.op == "*":
            return lv * rv
        if expr.op == "/":
            return lv / rv
    return None


def _to_linexpr(expr: Expr, params: dict[str, int]) -> LinExpr | None:
    """Convert a parsed expression into a LinExpr over param symbols."""
    if isinstance(expr, Const):
        if expr.value != int(expr.value):
            return None
        return LinExpr(int(expr.value))
    if isinstance(expr, ScalarRef):
        # keep params symbolic so sections print as in the paper
        if expr.name in params:
            return LinExpr.of(expr.name)
        return LinExpr.of(expr.name)
    if isinstance(expr, UnaryOp):
        inner = _to_linexpr(expr.operand, params)
        return None if inner is None else -inner
    if isinstance(expr, BinOp):
        left = _to_linexpr(expr.left, params)
        right = _to_linexpr(expr.right, params)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left.is_constant:
                return right * left.const
            if right.is_constant:
                return left * right.const
            return None
    return None


def parse_program(source: str, bindings: dict[str, int] | None = None,
                  name: str = "MAIN") -> Program:
    """Parse HPF ``source`` into an IR :class:`~repro.ir.program.Program`.

    Parameters
    ----------
    source:
        Fortran 90 / HPF text (the subset described in
        :mod:`repro.frontend`).
    bindings:
        Values for size parameters used in declarations but not bound by a
        ``PARAMETER`` statement, e.g. ``{"N": 512}``.
    name:
        Program name used in reports.
    """
    symbols = SymbolTable()
    for key, value in (bindings or {}).items():
        symbols.bind_param(key, int(value))
    parser = _Parser(tokenize(source), symbols)
    body = parser.parse()
    program = Program(symbols, body, name=name,
                      processors=parser.processors)
    program.validate()
    return program
