"""Fortran-flavoured pretty printer for IR programs.

The printer's output is the format used throughout the paper's figures
(``CALL OVERLAP_SHIFT(U,SHIFT=+1,DIM=1)``, ``T = T + U<+1,-1>``), which
lets the golden tests in ``tests/passes/test_paper_example.py`` compare a
pass pipeline's trace against the paper's Figures 12–15 directly.
"""

from __future__ import annotations

from repro.ir.nodes import (
    Allocate, ArrayAssign, Deallocate, DoLoop, DoWhile, If, OverlapShift,
    ScalarAssign, Stmt,
)
from repro.ir.program import Program


def format_stmt(stmt: Stmt, indent: int = 0) -> list[str]:
    pad = "  " * indent
    if isinstance(stmt, If):
        lines = [f"{pad}IF ({stmt.cond}) THEN"]
        for s in stmt.then_body:
            lines += format_stmt(s, indent + 1)
        if stmt.else_body:
            lines.append(f"{pad}ELSE")
            for s in stmt.else_body:
                lines += format_stmt(s, indent + 1)
        lines.append(f"{pad}ENDIF")
        return lines
    if isinstance(stmt, DoLoop):
        lines = [f"{pad}DO {stmt.var} = {stmt.lo}, {stmt.hi}"]
        for s in stmt.body:
            lines += format_stmt(s, indent + 1)
        lines.append(f"{pad}ENDDO")
        return lines
    if isinstance(stmt, DoWhile):
        lines = [f"{pad}DO WHILE ({stmt.cond})"]
        for s in stmt.body:
            lines += format_stmt(s, indent + 1)
        lines.append(f"{pad}ENDDO")
        return lines
    if isinstance(stmt, (ArrayAssign, ScalarAssign, Allocate, Deallocate,
                         OverlapShift)):
        return [f"{pad}{stmt}"]
    return [f"{pad}{stmt}"]


def format_program(program: Program, declarations: bool = False) -> str:
    """Render a program; with ``declarations`` include the symbol table."""
    lines: list[str] = []
    if declarations:
        for sym in program.symbols.arrays.values():
            lines.append(f"! {sym}")
        for name, value in program.symbols.params.items():
            lines.append(f"! PARAMETER {name} = {value}")
    for stmt in program.body:
        lines += format_stmt(stmt)
    return "\n".join(lines)
