"""Regular section descriptors (RSDs).

Communication unioning (paper section 3.3) attaches an RSD as the optional
fourth argument of ``OVERLAP_SHIFT``.  The RSD widens the transferred slab
in the *non*-shifted dimensions so that a later shift also carries overlap
cells filled by earlier (lower-dimension) shifts — this is how "corner"
elements of a stencil are communicated with no extra messages.

In the paper's notation the 9-point stencil's second-dimension shifts carry
``[0:N+1,*]``: the slab spans local rows ``0 .. N+1`` (one overlap row on
each side of the ``1..N`` subgrid) while ``*`` marks the shifted dimension.
We store, per non-shifted dimension, how many overlap cells beyond each
subgrid edge are included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class RSDim:
    """Extension of the transfer slab in one non-shifted dimension.

    ``lo``/``hi`` count overlap cells included below/above the local
    subgrid extent.  ``RSDim(0, 0)`` is the plain subgrid extent.
    """

    lo: int = 0
    hi: int = 0

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < 0:
            raise ValueError("RSD extensions must be non-negative")

    def union(self, other: "RSDim") -> "RSDim":
        return RSDim(max(self.lo, other.lo), max(self.hi, other.hi))

    def contains(self, other: "RSDim") -> bool:
        return self.lo >= other.lo and self.hi >= other.hi

    def widen(self, offset: int) -> "RSDim":
        """Add an offset annotation (paper 3.3, step 2): a negative shift
        annotation widens the lower bound, a positive one the upper."""
        if offset < 0:
            return RSDim(max(self.lo, -offset), self.hi)
        if offset > 0:
            return RSDim(self.lo, max(self.hi, offset))
        return self


@dataclass(frozen=True)
class RSD:
    """A per-dimension section descriptor for an ``OVERLAP_SHIFT``.

    ``dims[k]`` is an :class:`RSDim` for non-shifted dimensions and
    ``None`` (printed ``*``) for the shifted dimension itself.
    """

    dims: tuple[RSDim | None, ...]

    @staticmethod
    def trivial(rank: int, shift_dim: int) -> "RSD":
        """The RSD carrying exactly the subgrid slab (no overlap cells).

        ``shift_dim`` is 0-based.
        """
        return RSD(tuple(None if k == shift_dim else RSDim()
                         for k in range(rank)))

    @staticmethod
    def from_offsets(offsets: Sequence[int], shift_dim: int) -> "RSD":
        """Build the RSD needed so a shift along ``shift_dim`` also carries
        the overlap cells referenced by the per-dimension ``offsets`` of a
        multi-offset array (0-based ``shift_dim``)."""
        dims: list[RSDim | None] = []
        for k, off in enumerate(offsets):
            if k == shift_dim:
                dims.append(None)
            else:
                dims.append(RSDim().widen(off))
        return RSD(tuple(dims))

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def shift_dim(self) -> int:
        for k, d in enumerate(self.dims):
            if d is None:
                return k
        raise ValueError("RSD has no shifted dimension")

    @property
    def is_trivial(self) -> bool:
        return all(d is None or (d.lo == 0 and d.hi == 0)
                   for d in self.dims)

    def union(self, other: "RSD") -> "RSD":
        """Pointwise union; larger RSDs subsume smaller ones (paper 3.3)."""
        self._check_compatible(other)
        dims = tuple(None if a is None else a.union(b)  # type: ignore[union-attr]
                     for a, b in zip(self.dims, other.dims))
        return RSD(dims)

    def contains(self, other: "RSD") -> bool:
        self._check_compatible(other)
        return all(a is None or a.contains(b)  # type: ignore[arg-type]
                   for a, b in zip(self.dims, other.dims))

    def _check_compatible(self, other: "RSD") -> None:
        if self.rank != other.rank or self.shift_dim != other.shift_dim:
            raise ValueError(
                f"incompatible RSDs: {self} vs {other}")

    def format(self, extents: Iterable[object] | None = None) -> str:
        """Fortran-style rendering, e.g. ``[0:N+1,*]``.

        ``extents`` optionally supplies per-dimension extent expressions
        (symbol names or ints) for pretty bounds; defaults to ``n<k>``.
        """
        exts = list(extents) if extents is not None else [
            f"n{k + 1}" for k in range(self.rank)]
        parts = []
        for k, d in enumerate(self.dims):
            if d is None:
                parts.append("*")
            elif d.lo == 0 and d.hi == 0:
                parts.append(f"1:{exts[k]}")
            else:
                lo = str(1 - d.lo)
                hi = f"{exts[k]}+{d.hi}" if d.hi else str(exts[k])
                parts.append(f"{lo}:{hi}")
        return "[" + ",".join(parts) + "]"

    def __str__(self) -> str:
        return self.format()
