"""Symbol tables: array declarations, scalars, and size parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.ir.types import ArrayType, Distribution, ScalarKind


@dataclass
class ArraySymbol:
    """A declared array: its type, HPF distribution, and provenance."""

    name: str
    type: ArrayType
    distribution: Distribution
    is_temporary: bool = False  # compiler-generated (normalization temps)

    def __str__(self) -> str:
        tag = " [tmp]" if self.is_temporary else ""
        return f"{self.name}: {self.type} dist{self.distribution}{tag}"


@dataclass
class ScalarSymbol:
    """A replicated scalar variable."""

    name: str
    kind: ScalarKind = ScalarKind.DOUBLE


@dataclass
class SymbolTable:
    """All names visible to a program.

    ``params`` holds compile-time size parameters (the ``N`` of the paper's
    kernels) bound to concrete integers when the source is parsed.
    """

    arrays: dict[str, ArraySymbol] = field(default_factory=dict)
    scalars: dict[str, ScalarSymbol] = field(default_factory=dict)
    params: dict[str, int] = field(default_factory=dict)
    _temp_counter: int = 0

    # -- declaration -------------------------------------------------------
    def declare_array(self, name: str, type_: ArrayType,
                      distribution: Distribution | None = None,
                      is_temporary: bool = False) -> ArraySymbol:
        key = name.upper()
        if key in self.arrays or key in self.scalars or key in self.params:
            raise SemanticError(f"duplicate declaration of {name}")
        if distribution is None:
            distribution = Distribution.block(type_.rank)
        if len(distribution.dims) != type_.rank:
            raise SemanticError(
                f"distribution rank {len(distribution.dims)} does not match "
                f"array rank {type_.rank} for {name}")
        sym = ArraySymbol(key, type_, distribution, is_temporary)
        self.arrays[key] = sym
        return sym

    def declare_scalar(self, name: str,
                       kind: ScalarKind = ScalarKind.DOUBLE) -> ScalarSymbol:
        key = name.upper()
        if key in self.arrays or key in self.params:
            raise SemanticError(f"duplicate declaration of {name}")
        sym = ScalarSymbol(key, kind)
        self.scalars[key] = sym
        return sym

    def bind_param(self, name: str, value: int) -> None:
        key = name.upper()
        if key in self.arrays or key in self.scalars:
            raise SemanticError(f"{name} already declared as a variable")
        self.params[key] = value

    # -- lookup --------------------------------------------------------------
    def array(self, name: str) -> ArraySymbol:
        try:
            return self.arrays[name.upper()]
        except KeyError:
            raise SemanticError(f"undeclared array {name}") from None

    def is_array(self, name: str) -> bool:
        return name.upper() in self.arrays

    def is_scalar(self, name: str) -> bool:
        return name.upper() in self.scalars

    # -- temporaries ---------------------------------------------------------
    def new_temp(self, like: ArraySymbol, prefix: str = "TMP",
                 type_: ArrayType | None = None) -> ArraySymbol:
        """Declare a fresh compiler temporary with the same type (unless
        overridden) and distribution as ``like`` (used by normalization,
        paper fig. 4, and by WHERE mask materialisation)."""
        self._temp_counter += 1
        name = f"{prefix}{self._temp_counter}"
        while name in self.arrays:
            self._temp_counter += 1
            name = f"{prefix}{self._temp_counter}"
        return self.declare_array(name, type_ or like.type,
                                  like.distribution, is_temporary=True)

    def drop_array(self, name: str) -> None:
        """Remove an array that no longer appears in the program (dead
        temporaries after offset-array optimization, paper 4.2)."""
        self.arrays.pop(name.upper(), None)
