"""Expression and statement nodes of the stencil IR.

The IR is deliberately close to the paper's presentation:

* Before normalization, shifts appear as :class:`CShift`/:class:`EOShift`
  expressions (possibly nested) and array-syntax stencils as
  :class:`ArrayRef` with section triplets.
* Normalization (paper 2.1) leaves every shift as a *singleton* whole-array
  assignment ``TMP = CSHIFT(SRC, s, d)``.
* The offset-array pass (paper 3.1) turns those into
  :class:`OverlapShift` call statements plus :class:`OffsetRef`
  references — the paper's ``U<+1,0>`` notation.

Dimensions follow Fortran: ``dim`` arguments are 1-based, and section
subscripts are 1-based inclusive ranges.  Offset vectors in
:class:`OffsetRef` are 0-based tuples, one entry per array dimension.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import SemanticError
from repro.ir.linexpr import LinExpr
from repro.ir.rsd import RSD

# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Triplet:
    """A Fortran section triplet ``lo:hi:step`` (1-based, inclusive)."""

    lo: LinExpr
    hi: LinExpr
    step: int = 1

    def __post_init__(self) -> None:
        if self.step != 1:
            raise SemanticError("only unit-stride sections are supported")

    def shifted(self, delta: int) -> "Triplet":
        return Triplet(self.lo + delta, self.hi + delta, self.step)

    def __str__(self) -> str:
        return f"{self.lo}:{self.hi}"


Section = tuple[Triplet, ...]


def section_offsets(ref: Section, base: Section) -> tuple[int, ...] | None:
    """Constant per-dimension offset of ``ref`` relative to ``base``.

    Returns ``None`` unless every dimension of ``ref`` is ``base`` shifted
    by a constant (the stencil case: ``SRC(1:N-2, 2:N-1)`` is offset
    ``(-1, 0)`` from ``DST(2:N-1, 2:N-1)``).
    """
    if len(ref) != len(base):
        return None
    offsets = []
    for r, b in zip(ref, base):
        dlo = r.lo - b.lo
        dhi = r.hi - b.hi
        if not (dlo.is_constant and dhi.is_constant):
            return None
        if dlo.const != dhi.const:
            return None
        offsets.append(dlo.const)
    return tuple(offsets)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of IR expressions.  Immutable and hashable."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for c in self.children():
            yield from c.walk()


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: float

    def __str__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True)
class ScalarRef(Expr):
    """Reference to a replicated scalar variable (C1, ALPHA, ...)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef(Expr):
    """Reference to an array, whole (``section is None``) or sectioned."""

    name: str
    section: Section | None = None

    def __str__(self) -> str:
        if self.section is None:
            return self.name
        return f"{self.name}({','.join(map(str, self.section))})"


@dataclass(frozen=True)
class OffsetRef(Expr):
    """The paper's annotated offset reference ``U<+1,-1>``.

    Reads ``U`` displaced by ``offsets`` relative to the iteration point;
    displaced accesses fall into the overlap area filled by
    :class:`OverlapShift`.  ``boundary`` selects the fill semantics of
    out-of-range global accesses: ``None`` wraps circularly (CSHIFT
    lineage), a float reads that end-off boundary value (EOSHIFT
    lineage, the paper's stated generalization).
    """

    name: str
    offsets: tuple[int, ...]
    boundary: float | None = None

    @property
    def circular(self) -> bool:
        return self.boundary is None

    def __str__(self) -> str:
        inner = ",".join(f"{o:+d}" if o else "0" for o in self.offsets)
        if self.boundary is None:
            return f"{self.name}<{inner}>"
        return f"{self.name}<{inner};EOS={self.boundary:g}>"


@dataclass(frozen=True)
class CShift(Expr):
    """``CSHIFT(array, SHIFT=shift, DIM=dim)`` — circular shift.

    ``result(i) = array(i + shift)`` along 1-based ``dim``, wrapping.
    """

    array: Expr
    shift: int
    dim: int

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise SemanticError("CSHIFT DIM is 1-based and must be >= 1")

    def children(self) -> tuple[Expr, ...]:
        return (self.array,)

    def __str__(self) -> str:
        return f"CSHIFT({self.array},SHIFT={self.shift:+d},DIM={self.dim})"


@dataclass(frozen=True)
class EOShift(Expr):
    """``EOSHIFT``: end-off shift filling with a boundary value."""

    array: Expr
    shift: int
    dim: int
    boundary: float = 0.0

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise SemanticError("EOSHIFT DIM is 1-based and must be >= 1")

    def children(self) -> tuple[Expr, ...]:
        return (self.array,)

    def __str__(self) -> str:
        return (f"EOSHIFT({self.array},SHIFT={self.shift:+d},"
                f"DIM={self.dim},BOUNDARY={self.boundary:g})")


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic; ``op`` is one of ``+ - * / **``."""

    op: str
    left: Expr
    right: Expr

    _PREC = {"+": 1, "-": 1, "*": 2, "/": 2, "**": 3}

    def __post_init__(self) -> None:
        if self.op not in self._PREC:
            raise SemanticError(f"unsupported operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        def wrap(child: Expr, right_side: bool) -> str:
            if isinstance(child, BinOp):
                cp, mp = self._PREC[child.op], self._PREC[self.op]
                if cp < mp or (cp == mp and right_side
                               and self.op in ("-", "/")):
                    return f"({child})"
            return str(child)

        return f"{wrap(self.left, False)} {self.op} {wrap(self.right, True)}"


#: elementwise intrinsic functions supported in computation statements
ELEMENTWISE_INTRINSICS = frozenset({
    "ABS", "SQRT", "EXP", "LOG", "MIN", "MAX",
})

#: reduction intrinsics: array expression in, replicated scalar out
REDUCTION_INTRINSICS = frozenset({"SUM", "MAXVAL", "MINVAL"})


@dataclass(frozen=True)
class Reduction(Expr):
    """A full-array reduction, e.g. ``SUM(R*R)`` or ``MAXVAL(ABS(U))``.

    Scalar-valued; the operand is an elementwise array expression.  On
    the distributed machine each PE reduces its subgrid and the partial
    results combine with a logarithmic exchange (the cost model charges
    an allreduce), after which the scalar is replicated — the usual HPF
    lowering of reduction intrinsics.
    """

    op: str
    arg: Expr

    def __post_init__(self) -> None:
        if self.op not in REDUCTION_INTRINSICS:
            raise SemanticError(f"unknown reduction {self.op}")

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def __str__(self) -> str:
        return f"{self.op}({self.arg})"


@dataclass(frozen=True)
class Intrinsic(Expr):
    """An elementwise intrinsic call, e.g. ``SQRT(ABS(U))``.

    These keep statements inside the aligned computation class —
    stencil-like codes often mix them in (``ABS`` in residual norms,
    ``MIN``/``MAX`` in limiters) and the paper's optimizations apply
    unchanged since no data movement is involved.
    """

    name: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.name not in ELEMENTWISE_INTRINSICS:
            raise SemanticError(f"unknown intrinsic {self.name}")
        need_two = self.name in ("MIN", "MAX")
        if need_two and len(self.args) < 2:
            raise SemanticError(f"{self.name} needs at least 2 arguments")
        if not need_two and len(self.args) != 1:
            raise SemanticError(f"{self.name} takes exactly 1 argument")

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({','.join(map(str, self.args))})"


@dataclass(frozen=True)
class Compare(Expr):
    """Scalar comparison used in ``IF`` conditions."""

    op: str  # one of < > <= >= == /=
    left: Expr
    right: Expr

    _OPS = frozenset({"<", ">", "<=", ">=", "==", "/="})

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise SemanticError(f"unsupported comparison {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary minus."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op != "-":
            raise SemanticError(f"unsupported unary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"-({self.operand})"


def array_names(expr: Expr) -> set[str]:
    """All array names referenced anywhere inside ``expr``."""
    names: set[str] = set()
    for node in expr.walk():
        if isinstance(node, (ArrayRef, OffsetRef)):
            names.add(node.name)
    return names


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

_stmt_counter = itertools.count(1)


class Stmt:
    """Base class of IR statements.  Each instance has a unique ``sid``."""

    def __init__(self) -> None:
        self.sid: int = next(_stmt_counter)

    def substatements(self) -> Sequence["Stmt"]:
        return ()

    def walk(self) -> Iterator["Stmt"]:
        yield self
        for s in self.substatements():
            yield from s.walk()


class ArrayAssign(Stmt):
    """``lhs = rhs`` where ``lhs`` is a whole array or a section.

    ``mask`` makes the assignment elementwise-conditional (a WHERE body
    statement): only points where the mask is true are stored.  The
    frontend materialises each WHERE construct's mask expression into a
    LOGICAL temporary first, preserving Fortran's evaluate-once
    semantics, so masks here are ordinary aligned references.
    """

    def __init__(self, lhs: ArrayRef, rhs: Expr,
                 mask: Expr | None = None) -> None:
        super().__init__()
        self.lhs = lhs
        self.rhs = rhs
        self.mask = mask

    def __str__(self) -> str:
        if self.mask is not None:
            return f"WHERE ({self.mask}) {self.lhs} = {self.rhs}"
        return f"{self.lhs} = {self.rhs}"


class ScalarAssign(Stmt):
    """``name = rhs`` for a replicated scalar."""

    def __init__(self, name: str, rhs: Expr) -> None:
        super().__init__()
        self.name = name
        self.rhs = rhs

    def __str__(self) -> str:
        return f"{self.name} = {self.rhs}"


class Allocate(Stmt):
    """``ALLOCATE(names...)`` of already-declared deferred arrays."""

    def __init__(self, names: Sequence[str]) -> None:
        super().__init__()
        self.names = tuple(names)

    def __str__(self) -> str:
        return f"ALLOCATE {', '.join(self.names)}"


class Deallocate(Stmt):
    """``DEALLOCATE(names...)``."""

    def __init__(self, names: Sequence[str]) -> None:
        super().__init__()
        self.names = tuple(names)

    def __str__(self) -> str:
        return f"DEALLOCATE {', '.join(self.names)}"


class OverlapShift(Stmt):
    """``CALL OVERLAP_SHIFT(array<base_offsets>, shift, dim [, rsd])``.

    Moves only the interprocessor component of a shift into the overlap
    area of ``array`` (paper 3.1).  ``base_offsets`` is non-trivial when the
    source is itself an offset (multi-offset) array, as in
    ``OVERLAP_CSHIFT(U<+1,0>, SHIFT=-1, DIM=2)``.  ``dim`` is 1-based.
    ``boundary`` selects end-off (EOSHIFT) fill semantics: overlap cells
    beyond the global edge take the boundary value instead of wrapping.
    """

    def __init__(self, array: str, shift: int, dim: int,
                 rsd: RSD | None = None,
                 base_offsets: tuple[int, ...] | None = None,
                 boundary: float | None = None) -> None:
        super().__init__()
        if shift == 0:
            raise SemanticError("OVERLAP_SHIFT with zero shift is useless")
        self.array = array
        self.shift = shift
        self.dim = dim
        self.rsd = rsd
        self.base_offsets = base_offsets
        self.boundary = boundary

    def __str__(self) -> str:
        src = self.array
        if self.base_offsets and any(self.base_offsets):
            inner = ",".join(f"{o:+d}" if o else "0"
                             for o in self.base_offsets)
            src = f"{src}<{inner}>"
        extra = f",{self.rsd}" if self.rsd is not None and not self.rsd.is_trivial else ""
        if self.boundary is not None:
            extra += f",BOUNDARY={self.boundary:g}"
        return (f"CALL OVERLAP_SHIFT({src},SHIFT={self.shift:+d},"
                f"DIM={self.dim}{extra})")


class If(Stmt):
    """Structured two-way branch on a scalar condition expression."""

    def __init__(self, cond: Expr, then_body: list[Stmt],
                 else_body: list[Stmt] | None = None) -> None:
        super().__init__()
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body or []

    def substatements(self) -> Sequence[Stmt]:
        return tuple(self.then_body) + tuple(self.else_body)

    def __str__(self) -> str:
        return f"IF ({self.cond}) THEN ... {'ELSE ...' if self.else_body else ''}ENDIF"


class DoLoop(Stmt):
    """A serial host ``DO`` loop (time stepping); body is block-structured."""

    def __init__(self, var: str, lo: LinExpr, hi: LinExpr,
                 body: list[Stmt]) -> None:
        super().__init__()
        self.var = var
        self.lo = lo
        self.hi = hi
        self.body = body

    def substatements(self) -> Sequence[Stmt]:
        return tuple(self.body)

    def __str__(self) -> str:
        return f"DO {self.var} = {self.lo}, {self.hi} ... ENDDO"


class DoWhile(Stmt):
    """``DO WHILE (cond)`` — a convergence loop.

    The condition is a replicated scalar expression (typically comparing
    a reduction against a tolerance); shifts are not allowed inside it.
    """

    def __init__(self, cond: Expr, body: list[Stmt]) -> None:
        super().__init__()
        self.cond = cond
        self.body = body

    def substatements(self) -> Sequence[Stmt]:
        return tuple(self.body)

    def __str__(self) -> str:
        return f"DO WHILE ({self.cond}) ... ENDDO"
