"""Intermediate representation for the HPF stencil compiler.

The IR models whole programs as structured statement lists over typed,
BLOCK-distributed arrays.  Submodules:

``types``
    Scalar/array types and HPF distribution specifications.
``linexpr``
    Linear integer expressions over named symbols (section bounds).
``rsd``
    Regular section descriptors used by communication unioning.
``nodes``
    Expression and statement node classes.
``symbols``
    Symbol tables.
``program``
    The :class:`~repro.ir.program.Program` container and CFG utilities.
``printer``
    A Fortran-flavoured pretty printer used for golden tests and debugging.
``dependence``
    Statement-level data dependence graph construction.  (The offset
    pass uses a structured-IR dataflow — intersection at joins,
    conservative back edges — rather than explicit SSA; it provides the
    same reached-uses information the paper's SSA formulation needs.)
"""

from repro.ir.types import (  # noqa: F401
    ScalarKind, ArrayType, DistKind, Distribution, dtype_of,
)
from repro.ir.linexpr import LinExpr  # noqa: F401
from repro.ir.rsd import RSD, RSDim  # noqa: F401
