"""Types and HPF data distributions.

The paper assumes all arrays are distributed BLOCK-wise (section 2.1:
"all arrays are distributed in a BLOCK fashion").  We model BLOCK and
``*`` (on-processor / collapsed) per dimension, plus fully replicated
scalars.  CYCLIC is recognised by the frontend but rejected with
:class:`~repro.errors.UnsupportedDistributionError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import SemanticError


class ScalarKind(enum.Enum):
    """Fortran scalar type kinds supported by the compiler."""

    REAL = "REAL"
    DOUBLE = "DOUBLE PRECISION"
    INTEGER = "INTEGER"
    LOGICAL = "LOGICAL"

    @property
    def sizeof(self) -> int:
        """Size in bytes of one element (REAL*4, DOUBLE*8, ...)."""
        return _SIZEOF[self]


_SIZEOF = {
    ScalarKind.REAL: 4,
    ScalarKind.DOUBLE: 8,
    ScalarKind.INTEGER: 4,
    ScalarKind.LOGICAL: 4,
}

_DTYPE = {
    ScalarKind.REAL: np.float32,
    ScalarKind.DOUBLE: np.float64,
    ScalarKind.INTEGER: np.int32,
    ScalarKind.LOGICAL: np.bool_,
}


def dtype_of(kind: ScalarKind) -> np.dtype:
    """NumPy dtype corresponding to a Fortran scalar kind."""
    return np.dtype(_DTYPE[kind])


class DistKind(enum.Enum):
    """Per-dimension distribution kind of an HPF ``DISTRIBUTE`` directive."""

    BLOCK = "BLOCK"
    COLLAPSED = "*"  # the whole extent lives on each owning processor row


@dataclass(frozen=True)
class Distribution:
    """Distribution of an array over the processor grid.

    ``dims[k]`` gives the distribution of array dimension ``k`` (0-based).
    A fully replicated object (scalars, coefficients) is represented by
    ``Distribution(())`` — the :attr:`replicated` singleton.
    """

    dims: tuple[DistKind, ...]

    REPLICATED: "Distribution" = None  # type: ignore[assignment]

    @property
    def is_replicated(self) -> bool:
        return not self.dims

    @property
    def distributed_dims(self) -> tuple[int, ...]:
        """Indices of dimensions actually split across processors."""
        return tuple(i for i, d in enumerate(self.dims)
                     if d is DistKind.BLOCK)

    def __str__(self) -> str:
        if self.is_replicated:
            return "(replicated)"
        return "(" + ",".join(d.value for d in self.dims) + ")"

    @staticmethod
    def block(rank: int) -> "Distribution":
        """The default (BLOCK,...,BLOCK) distribution of the paper."""
        return Distribution(tuple(DistKind.BLOCK for _ in range(rank)))


Distribution.REPLICATED = Distribution(())


@dataclass(frozen=True)
class ArrayType:
    """Static type of an array variable: element kind and extents.

    Extents are resolved to concrete integers when the program is bound
    to a problem size (see :meth:`repro.frontend.parser.parse_program`),
    matching how the experiments instantiate one compile per size.
    """

    element: ScalarKind
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(n <= 0 for n in self.shape):
            raise SemanticError(
                f"array extents must be positive, got {self.shape}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for e in self.shape:
            n *= e
        return n

    @property
    def nbytes(self) -> int:
        return self.size * self.element.sizeof

    @property
    def dtype(self) -> np.dtype:
        return dtype_of(self.element)

    def __str__(self) -> str:
        dims = ",".join(str(n) for n in self.shape)
        return f"{self.element.value}({dims})"
