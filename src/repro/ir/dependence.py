"""Statement-level data dependence graph construction.

Context partitioning (paper section 3.2) runs the Kennedy-McKinley typed
fusion algorithm over the data dependence graph of a basic block.  Within
a block only loop-independent dependences exist, so the graph is a DAG
whose edges point from earlier to later statements.

Resources
---------
Array state is modelled at the granularity the overlap machinery needs:

* ``A``            — the interior values of array A;
* ``A.halo[d,+/-]`` — the overlap area of A on one side of dimension d.

An ``OVERLAP_SHIFT(A, s, d)`` *reads* the interior (and, for multi-offset
sources or RSDs, lower-dimension halos) and *writes* one halo region.  An
offset reference ``A<+1,-1>`` reads the interior plus the halo regions
its nonzero components displace into.  A definition of ``A`` writes the
interior and invalidates (writes) every halo region, which forces
re-communication after destructive updates.

Edges record whether they are *fusion preventing*: a dependence between
two computation statements at a nonzero offset cannot be honoured inside
a single fused loop nest, so typed fusion must keep the statements in
different groups (the paper's guard against illegal/over fusion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PipelineError
from repro.ir.nodes import (
    Allocate, ArrayAssign, ArrayRef, Deallocate, Expr, OffsetRef,
    OverlapShift, ScalarAssign, ScalarRef, Stmt, section_offsets,
)
from repro.ir.program import Program


class DepKind(enum.Enum):
    TRUE = "true"
    ANTI = "anti"
    OUTPUT = "output"


@dataclass(frozen=True)
class DepEdge:
    """A dependence from statement index ``src`` to ``dst`` (src < dst)."""

    src: int
    dst: int
    kind: DepKind
    resource: str
    fusion_preventing: bool = False

    def __str__(self) -> str:
        bad = " [bad]" if self.fusion_preventing else ""
        return f"s{self.src} -{self.kind.value}-> s{self.dst} ({self.resource}){bad}"


def _halo_resource(name: str, dim0: int, sign: int) -> str:
    return f"{name}.halo[{dim0},{'+' if sign > 0 else '-'}]"


@dataclass
class _Access:
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    # per-resource read/write offsets for fusion legality; None = unknown
    read_offsets: dict[str, set[tuple[int, ...]]] = field(
        default_factory=dict)


def _expr_reads(expr: Expr, acc: _Access,
                lhs_section, program: Program) -> None:
    for node in expr.walk():
        if isinstance(node, ScalarRef):
            acc.reads.add(f"${node.name}")
        elif isinstance(node, ArrayRef):
            acc.reads.add(node.name)
            offs: tuple[int, ...] | None
            if node.section is None or lhs_section is None:
                offs = tuple(0 for _ in range(
                    program.symbols.array(node.name).type.rank))
            else:
                offs = section_offsets(node.section, lhs_section)
            if offs is not None:
                acc.read_offsets.setdefault(node.name, set()).add(offs)
        elif isinstance(node, OffsetRef):
            acc.reads.add(node.name)
            acc.read_offsets.setdefault(node.name, set()).add(node.offsets)
            for d, o in enumerate(node.offsets):
                if o:
                    acc.reads.add(_halo_resource(node.name, d,
                                                 1 if o > 0 else -1))


def _stmt_access(stmt: Stmt, program: Program) -> _Access:
    acc = _Access()
    if isinstance(stmt, ArrayAssign):
        name = stmt.lhs.name
        acc.writes.add(name)
        rank = program.symbols.array(name).type.rank
        for d in range(rank):
            acc.writes.add(_halo_resource(name, d, +1))
            acc.writes.add(_halo_resource(name, d, -1))
        _expr_reads(stmt.rhs, acc, stmt.lhs.section, program)
        if stmt.mask is not None:
            _expr_reads(stmt.mask, acc, stmt.lhs.section, program)
            # a masked store preserves unselected elements: it also
            # *reads* its own target
            acc.reads.add(name)
            acc.read_offsets.setdefault(name, set()).add(
                tuple(0 for _ in range(rank)))
    elif isinstance(stmt, ScalarAssign):
        acc.writes.add(f"${stmt.name}")
        _expr_reads(stmt.rhs, acc, None, program)
    elif isinstance(stmt, OverlapShift):
        acc.reads.add(stmt.array)
        sign = 1 if stmt.shift > 0 else -1
        acc.writes.add(_halo_resource(stmt.array, stmt.dim - 1, sign))
        if stmt.base_offsets:
            for d, o in enumerate(stmt.base_offsets):
                if o:
                    acc.reads.add(_halo_resource(stmt.array, d,
                                                 1 if o > 0 else -1))
        if stmt.rsd is not None:
            for d, rd in enumerate(stmt.rsd.dims):
                if rd is None:
                    continue
                if rd.lo:
                    acc.reads.add(_halo_resource(stmt.array, d, -1))
                if rd.hi:
                    acc.reads.add(_halo_resource(stmt.array, d, +1))
    elif isinstance(stmt, (Allocate, Deallocate)):
        for name in stmt.names:
            acc.writes.add(name)
    else:
        raise PipelineError(
            f"dependence analysis over compound statement s{stmt.sid}")
    return acc


def _is_fusion_preventing(src: Stmt, dst: Stmt, kind: DepKind,
                          resource: str, src_acc: _Access,
                          dst_acc: _Access) -> bool:
    """A compute-compute dependence at a nonzero offset prevents fusion."""
    if not (isinstance(src, ArrayAssign) and isinstance(dst, ArrayAssign)):
        return False
    if resource.startswith("$") or ".halo[" in resource:
        return False
    if kind is DepKind.TRUE:
        offsets = dst_acc.read_offsets.get(resource)
    elif kind is DepKind.ANTI:
        offsets = src_acc.read_offsets.get(resource)
    else:
        return False  # output deps on the same aligned LHS fuse fine
    if offsets is None:
        return True  # unknown relationship: be conservative
    return any(any(o != 0 for o in offs) for offs in offsets)


def build_ddg(statements: list[Stmt],
              program: Program) -> list[DepEdge]:
    """All pairwise dependences among a basic block's statements."""
    accesses = [_stmt_access(s, program) for s in statements]
    edges: list[DepEdge] = []
    for j in range(len(statements)):
        for i in range(j):
            a, b = accesses[i], accesses[j]
            si, sj = statements[i], statements[j]
            for res in a.writes & b.reads:
                edges.append(DepEdge(
                    i, j, DepKind.TRUE, res,
                    _is_fusion_preventing(si, sj, DepKind.TRUE, res, a, b)))
            for res in a.reads & b.writes:
                if _idempotent_halo_write(res, sj):
                    # an OVERLAP_SHIFT rewrites the overlap area as a pure
                    # function of the (unchanged) base array, so a read of
                    # that area before it is not a real anti dependence —
                    # the paper's DDG has no such edges (section 4.3)
                    continue
                edges.append(DepEdge(
                    i, j, DepKind.ANTI, res,
                    _is_fusion_preventing(si, sj, DepKind.ANTI, res, a, b)))
            for res in a.writes & b.writes:
                if _idempotent_halo_write(res, si) and \
                        _idempotent_halo_write(res, sj) and \
                        si.boundary == sj.boundary:  # type: ignore[union-attr]
                    continue  # two pure re-fills of the same overlap area
                edges.append(DepEdge(i, j, DepKind.OUTPUT, res))
    return edges


def _idempotent_halo_write(resource: str, stmt: Stmt) -> bool:
    """True when ``stmt`` writes the halo resource as an OVERLAP_SHIFT —
    i.e. recomputes it from the base array's current interior values.
    Two such writes of the same region commute only when they also share
    the fill kind (both circular or same EOSHIFT boundary); the
    offset-array pass's fill discipline guarantees same-region shifts
    share one kind, and the caller double-checks the boundary."""
    return ".halo[" in resource and isinstance(stmt, OverlapShift)


def predecessors(edges: list[DepEdge], n: int) -> list[list[DepEdge]]:
    """Per-statement incoming edges, index-aligned with the block."""
    preds: list[list[DepEdge]] = [[] for _ in range(n)]
    for e in edges:
        preds[e.dst].append(e)
    return preds
