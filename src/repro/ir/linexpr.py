"""Linear integer expressions over named symbols.

Section bounds in the HPF subset are affine in the program's size
parameters (``2:N-1`` etc.).  :class:`LinExpr` represents
``c0 + sum(c_i * sym_i)`` exactly, supports arithmetic, comparison under a
binding, and printing in Fortran style.  Keeping bounds symbolic lets the
pretty printer reproduce the paper's figures verbatim while the backend
evaluates them numerically for a bound problem size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import SemanticError


@dataclass(frozen=True)
class LinExpr:
    """An affine integer expression ``const + Σ coeffs[name] * name``."""

    const: int = 0
    coeffs: tuple[tuple[str, int], ...] = field(default=())

    # -- construction -----------------------------------------------------
    @staticmethod
    def of(value: "int | str | LinExpr") -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, int):
            return LinExpr(value)
        if isinstance(value, str):
            return LinExpr(0, ((value, 1),))
        raise TypeError(f"cannot build LinExpr from {value!r}")

    @staticmethod
    def _normal(const: int, coeffs: dict[str, int]) -> "LinExpr":
        items = tuple(sorted((k, v) for k, v in coeffs.items() if v != 0))
        return LinExpr(const, items)

    def _as_dict(self) -> dict[str, int]:
        return dict(self.coeffs)

    # -- algebra ----------------------------------------------------------
    def __add__(self, other: "int | str | LinExpr") -> "LinExpr":
        other = LinExpr.of(other)
        coeffs = self._as_dict()
        for name, c in other.coeffs:
            coeffs[name] = coeffs.get(name, 0) + c
        return LinExpr._normal(self.const + other.const, coeffs)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr(-self.const, tuple((n, -c) for n, c in self.coeffs))

    def __sub__(self, other: "int | str | LinExpr") -> "LinExpr":
        return self + (-LinExpr.of(other))

    def __rsub__(self, other: "int | str | LinExpr") -> "LinExpr":
        return LinExpr.of(other) + (-self)

    def __mul__(self, k: int) -> "LinExpr":
        if not isinstance(k, int):
            raise TypeError("LinExpr multiplication requires an int")
        return LinExpr._normal(self.const * k,
                               {n: c * k for n, c in self.coeffs})

    __rmul__ = __mul__

    # -- queries ----------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def constant_value(self) -> int:
        if not self.is_constant:
            raise SemanticError(f"expression {self} is not a constant")
        return self.const

    def evaluate(self, binding: Mapping[str, int]) -> int:
        """Evaluate under a symbol binding; unknown symbols raise."""
        total = self.const
        for name, c in self.coeffs:
            if name not in binding:
                raise SemanticError(
                    f"unbound size parameter {name!r} in {self}")
            total += c * binding[name]
        return total

    def symbols(self) -> frozenset[str]:
        return frozenset(n for n, _ in self.coeffs)

    # -- printing ---------------------------------------------------------
    def __str__(self) -> str:
        parts: list[str] = []
        for name, c in self.coeffs:
            if c == 1:
                term = name
            elif c == -1:
                term = f"-{name}"
            else:
                term = f"{c}*{name}"
            if parts and not term.startswith("-"):
                parts.append("+" + term)
            else:
                parts.append(term)
        if self.const or not parts:
            if parts and self.const > 0:
                parts.append(f"+{self.const}")
            else:
                parts.append(str(self.const))
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LinExpr({self})"
