"""The :class:`Program` container plus validation and CFG flattening.

A program is a structured statement list over a symbol table.  Analyses
that want a flat view (SSA, dependence) work on the control-flow graph
produced by :func:`build_cfg`; straight-line kernels — the common stencil
case — flatten to a single basic block, which is exactly the situation the
paper's context-partitioning phase requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PipelineError, SemanticError
from repro.ir.nodes import (
    Allocate, ArrayAssign, ArrayRef, Deallocate, DoLoop, DoWhile, Expr,
    If, OffsetRef, OverlapShift, ScalarAssign, Stmt, array_names,
)
from repro.ir.symbols import SymbolTable


@dataclass
class Program:
    """An HPF kernel: symbols plus a structured statement list."""

    symbols: SymbolTable
    body: list[Stmt] = field(default_factory=list)
    name: str = "MAIN"
    #: abstract processor arrangement from !HPF$ PROCESSORS, if declared
    processors: tuple[int, ...] | None = None

    def leaf_statements(self) -> list[Stmt]:
        """All non-compound statements, in textual order."""
        out: list[Stmt] = []
        for stmt in self.body:
            for s in stmt.walk():
                if not isinstance(s, (If, DoLoop, DoWhile)):
                    out.append(s)
        return out

    def validate(self) -> None:
        """Check internal consistency; raises :class:`PipelineError`.

        Run between passes to catch IR corruption early (every pass in
        :mod:`repro.passes.pass_manager` validates its output).
        """
        for stmt in self.leaf_statements():
            self._validate_stmt(stmt)

    def _validate_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, ArrayAssign):
            sym = self.symbols.array(stmt.lhs.name)
            if stmt.lhs.section is not None and \
                    len(stmt.lhs.section) != sym.type.rank:
                raise PipelineError(
                    f"s{stmt.sid}: section rank mismatch on {stmt.lhs.name}")
            self._validate_expr(stmt.rhs, stmt)
            if stmt.mask is not None:
                self._validate_expr(stmt.mask, stmt)
        elif isinstance(stmt, OverlapShift):
            sym = self.symbols.array(stmt.array)
            if not (1 <= stmt.dim <= sym.type.rank):
                raise PipelineError(
                    f"s{stmt.sid}: OVERLAP_SHIFT dim {stmt.dim} out of range "
                    f"for {stmt.array} (rank {sym.type.rank})")
            if stmt.base_offsets is not None and \
                    len(stmt.base_offsets) != sym.type.rank:
                raise PipelineError(
                    f"s{stmt.sid}: base_offsets rank mismatch on {stmt.array}")
            if stmt.rsd is not None and stmt.rsd.rank != sym.type.rank:
                raise PipelineError(
                    f"s{stmt.sid}: RSD rank mismatch on {stmt.array}")
        elif isinstance(stmt, (Allocate, Deallocate)):
            for name in stmt.names:
                self.symbols.array(name)
        elif isinstance(stmt, ScalarAssign):
            self._validate_expr(stmt.rhs, stmt)

    def _validate_expr(self, expr: Expr, stmt: Stmt) -> None:
        for node in expr.walk():
            if isinstance(node, ArrayRef):
                sym = self.symbols.array(node.name)
                if node.section is not None and \
                        len(node.section) != sym.type.rank:
                    raise PipelineError(
                        f"s{stmt.sid}: section rank mismatch on {node.name}")
            elif isinstance(node, OffsetRef):
                sym = self.symbols.array(node.name)
                if len(node.offsets) != sym.type.rank:
                    raise PipelineError(
                        f"s{stmt.sid}: offset rank mismatch on {node.name}")

    # -- convenience -------------------------------------------------------
    def referenced_arrays(self) -> set[str]:
        names: set[str] = set()
        for stmt in self.leaf_statements():
            if isinstance(stmt, ArrayAssign):
                names.add(stmt.lhs.name)
                names |= array_names(stmt.rhs)
                if stmt.mask is not None:
                    names |= array_names(stmt.mask)
            elif isinstance(stmt, OverlapShift):
                names.add(stmt.array)
            elif isinstance(stmt, ScalarAssign):
                names |= array_names(stmt.rhs)
        return names

    def prune_dead_arrays(self) -> list[str]:
        """Drop temporaries never referenced by any remaining statement and
        the ALLOCATE/DEALLOCATE statements that managed them.

        Returns the removed names (paper 4.2: the TMP/RIP/RIN arrays "need
        not be allocated" once offset arrays remove their uses).
        """
        live = self.referenced_arrays()
        dead = [name for name, sym in list(self.symbols.arrays.items())
                if sym.is_temporary and name not in live]
        for name in dead:
            self.symbols.drop_array(name)
        if dead:
            self._prune_alloc_stmts(self.body, set(dead))
        return dead

    def _prune_alloc_stmts(self, body: list[Stmt], dead: set[str]) -> None:
        kept: list[Stmt] = []
        for stmt in body:
            if isinstance(stmt, (Allocate, Deallocate)):
                names = tuple(n for n in stmt.names if n not in dead)
                if not names:
                    continue
                stmt.names = names
            elif isinstance(stmt, If):
                self._prune_alloc_stmts(stmt.then_body, dead)
                self._prune_alloc_stmts(stmt.else_body, dead)
            elif isinstance(stmt, (DoLoop, DoWhile)):
                self._prune_alloc_stmts(stmt.body, dead)
            kept.append(stmt)
        body[:] = kept


# ---------------------------------------------------------------------------
# Control-flow graph
# ---------------------------------------------------------------------------


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of leaf statements."""

    index: int
    statements: list[Stmt] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def __str__(self) -> str:
        return f"B{self.index}({len(self.statements)} stmts)"


@dataclass
class CFG:
    """Control-flow graph with dedicated entry/exit blocks."""

    blocks: list[BasicBlock]
    entry: int = 0
    exit: int = 1

    def block(self, i: int) -> BasicBlock:
        return self.blocks[i]


class _CFGBuilder:
    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = [BasicBlock(0), BasicBlock(1)]
        self.current = 0

    def new_block(self) -> int:
        b = BasicBlock(len(self.blocks))
        self.blocks.append(b)
        return b.index

    def link(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].successors:
            self.blocks[src].successors.append(dst)
            self.blocks[dst].predecessors.append(src)

    def emit(self, stmt: Stmt) -> None:
        self.blocks[self.current].statements.append(stmt)

    def build(self, body: list[Stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, If):
                self._build_if(stmt)
            elif isinstance(stmt, (DoLoop, DoWhile)):
                self._build_loop(stmt)
            else:
                self.emit(stmt)

    def _build_if(self, stmt: If) -> None:
        head = self.current
        then_b = self.new_block()
        join = self.new_block()
        self.link(head, then_b)
        self.current = then_b
        self.build(stmt.then_body)
        self.link(self.current, join)
        if stmt.else_body:
            else_b = self.new_block()
            self.link(head, else_b)
            self.current = else_b
            self.build(stmt.else_body)
            self.link(self.current, join)
        else:
            self.link(head, join)
        self.current = join

    def _build_loop(self, stmt: "DoLoop | DoWhile") -> None:
        head = self.new_block()
        body_b = self.new_block()
        after = self.new_block()
        self.link(self.current, head)
        self.link(head, body_b)
        self.link(head, after)
        self.current = body_b
        self.build(stmt.body)
        self.link(self.current, head)
        self.current = after


def build_cfg(program: Program) -> CFG:
    """Flatten the structured body into a CFG.

    Straight-line programs produce ``entry -> B2 -> exit`` with all
    statements in B2.
    """
    builder = _CFGBuilder()
    first = builder.new_block()
    builder.link(0, first)
    builder.current = first
    builder.build(program.body)
    builder.link(builder.current, 1)
    return CFG(builder.blocks)


def single_block(program: Program) -> list[Stmt] | None:
    """Return the statement list if the program is straight-line, else None.

    Context partitioning (paper 3.2) applies "to a set of statements within
    a basic block"; callers use this to find that block.
    """
    if any(isinstance(s, (If, DoLoop, DoWhile)) for s in program.body):
        return None
    return list(program.body)
