"""Differential-testing utilities: random stencil programs.

The strongest evidence that the optimization pipeline is
semantics-preserving is *differential execution*: generate a random
program from the supported HPF subset, run it through every optimization
level on several machine shapes, and demand bit-level agreement with the
serial NumPy reference.  This module provides the generator and checker
used by ``tests/test_differential.py``; they are public so downstream
changes can fuzz themselves.

The generator is deliberately adversarial within the subset: it mixes
CSHIFT chains, EOSHIFT (single fill value, keeping programs inside the
fill discipline where conversion succeeds — conflicting programs are
still *correct*, just less optimized), WHERE masks, reductions feeding
later scalars, elementwise intrinsics, accumulation chains creating
dependences, and optional DO-loop wrapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.driver import compile_hpf
from repro.frontend.parser import parse_program
from repro.machine.machine import Machine
from repro.runtime.reference import evaluate


@dataclass
class GeneratorConfig:
    """Knobs of the random program generator."""

    n: int = 12                   # array extent per dimension
    ndim: int = 2
    n_arrays: int = 3
    n_statements: int = 6
    max_offset: int = 2
    allow_eoshift: bool = True
    allow_where: bool = True
    allow_reductions: bool = True
    allow_intrinsics: bool = True
    allow_do_loop: bool = True
    eoshift_boundary: float = 0.5


@dataclass
class GeneratedProgram:
    """Source text plus the metadata needed to run it."""

    source: str
    arrays: list[str]
    scalars: dict[str, float] = field(default_factory=dict)
    bindings: dict[str, int] = field(default_factory=dict)


def _shifted_ref(rng: np.random.Generator, array: str,
                 cfg: GeneratorConfig, eoshift: bool) -> str:
    expr = array
    for d in range(1, cfg.ndim + 1):
        if rng.random() < 0.6:
            s = int(rng.integers(1, cfg.max_offset + 1)) * \
                (1 if rng.random() < 0.5 else -1)
            if eoshift:
                expr = (f"EOSHIFT({expr},SHIFT={s},"
                        f"BOUNDARY={cfg.eoshift_boundary},DIM={d})")
            else:
                expr = f"CSHIFT({expr},SHIFT={s},DIM={d})"
    return expr


def _term(rng: np.random.Generator, arrays: list[str],
          cfg: GeneratorConfig, eoshift: bool) -> str:
    src = str(rng.choice(arrays))
    ref = _shifted_ref(rng, src, cfg, eoshift)
    coeff = round(float(rng.uniform(0.1, 2.0)), 3)
    term = f"{coeff} * {ref}"
    if cfg.allow_intrinsics and rng.random() < 0.2:
        fn = rng.choice(["ABS", "SQRT"])
        inner = f"ABS({ref})" if fn == "SQRT" else ref
        term = f"{coeff} * {fn}({inner})"
    return term


def random_program(seed: int,
                   cfg: GeneratorConfig | None = None) -> GeneratedProgram:
    """Generate a random program from the supported subset."""
    cfg = cfg or GeneratorConfig()
    rng = np.random.default_rng(seed)
    arrays = [f"A{i}" for i in range(cfg.n_arrays)]
    dims = ",".join("N" for _ in range(cfg.ndim))
    # distribute the first two dimensions over the (2-D) processor grid;
    # higher dimensions stay on-processor
    dist = ",".join("BLOCK" if d < 2 else "*" for d in range(cfg.ndim))
    lines = [f"      REAL, DIMENSION({dims}) :: {', '.join(arrays)}",
             f"!HPF$ DISTRIBUTE {arrays[0]}({dist})"]
    for other in arrays[1:]:
        lines.append(f"!HPF$ ALIGN {other} WITH {arrays[0]}")

    # EOSHIFT programs stick to one fill value so most shifts convert
    use_eoshift = cfg.allow_eoshift and rng.random() < 0.3
    body: list[str] = []
    n_scalars = 0
    for _ in range(cfg.n_statements):
        kind = rng.random()
        dst = str(rng.choice(arrays))
        if cfg.allow_reductions and kind < 0.15:
            n_scalars += 1
            src = str(rng.choice(arrays))
            op = str(rng.choice(["SUM", "MAXVAL", "MINVAL"]))
            body.append(f"S{n_scalars} = {op}({src} * 0.125)")
            body.append(f"{dst} = {dst} + S{n_scalars} * 0.01")
        elif cfg.allow_where and kind < 0.3:
            mask_src = str(rng.choice(arrays))
            term = _term(rng, arrays, cfg, use_eoshift)
            body.append(f"WHERE ({mask_src} > 0.0) {dst} = {term}")
        else:
            nterms = int(rng.integers(1, 4))
            terms = [_term(rng, arrays, cfg, use_eoshift)
                     for _ in range(nterms)]
            acc = f"{dst} + " if rng.random() < 0.5 else ""
            body.append(f"{dst} = {acc}" + " + ".join(terms))
    if cfg.allow_do_loop and rng.random() < 0.3 and len(body) >= 2:
        split = len(body) // 2
        wrapped = ["DO KK = 1, 2"] + \
                  ["  " + s for s in body[:split]] + ["ENDDO"]
        body = wrapped + body[split:]
    lines += ["      " + s for s in body]
    return GeneratedProgram(source="\n".join(lines) + "\n",
                            arrays=arrays,
                            bindings={"N": cfg.n})


def random_inputs(seed: int, program: GeneratedProgram,
                  cfg: GeneratorConfig | None = None) -> dict[str, np.ndarray]:
    cfg = cfg or GeneratorConfig()
    rng = np.random.default_rng(seed + 10_000)
    shape = (cfg.n,) * cfg.ndim
    return {name: rng.uniform(0.1, 1.0, shape).astype(np.float64)
            for name in program.arrays}


def differential_check(program: GeneratedProgram,
                       inputs: dict[str, np.ndarray],
                       levels: tuple[str, ...] = ("O0", "O1", "O2", "O3",
                                                  "O4"),
                       grids: tuple[tuple[int, ...], ...] = ((2, 2),),
                       rtol: float = 1e-6) -> None:
    """Run the program at every level/grid; raise on any divergence
    from the serial reference."""
    parsed = parse_program(program.source, bindings=program.bindings)
    ref = evaluate(parsed, inputs=inputs, scalars=program.scalars)
    for level in levels:
        compiled = compile_hpf(program.source, bindings=program.bindings,
                               level=level, outputs=set(program.arrays))
        for grid in grids:
            machine = Machine(grid=grid, keep_message_log=False)
            result = compiled.run(machine, inputs=inputs,
                                  scalars=program.scalars)
            for name in program.arrays:
                np.testing.assert_allclose(
                    result.arrays[name], ref[name], rtol=rtol,
                    atol=1e-12,
                    err_msg=(f"level {level}, grid {grid}, array {name}\n"
                             f"program:\n{program.source}"))


def plan_roundtrip_check(compiled, inputs: dict[str, np.ndarray],
                         scalars: dict[str, float] | None = None,
                         grids: tuple[tuple[int, ...], ...] = ((2, 2),),
                         backends: tuple[str, ...] = ("perpe",
                                                      "vectorized"),
                         iterations: int = 1) -> None:
    """Serialize a compiled program to JSON, revive it, and demand the
    round trip is lossless.

    Three levels of fidelity are checked: (1) the revived program
    re-serializes to the byte-identical JSON document (the document is a
    fixed point); (2) on every grid and backend, the revived plan
    executes to bitwise-identical arrays and scalars; (3) cost
    accounting (message/byte/copy counts, per-PE times) agrees exactly —
    a persistent-cache hit must be observationally indistinguishable
    from a recompile.
    """
    from repro.plan import program_from_json, program_to_json

    doc = program_to_json(compiled)
    revived = program_from_json(doc)
    assert program_to_json(revived) == doc, (
        "plan JSON is not a serialization fixed point")
    for grid in grids:
        for backend in backends:
            results = {}
            for tag, prog in (("original", compiled),
                              ("revived", revived)):
                machine = Machine(grid=grid, keep_message_log=True)
                results[tag] = prog.run(
                    machine, inputs=inputs, scalars=scalars,
                    iterations=iterations, backend=backend)
            a, b = results["original"], results["revived"]
            ctx = f"grid {grid}, backend {backend}"
            for name in a.arrays:
                np.testing.assert_array_equal(
                    a.arrays[name], b.arrays[name],
                    err_msg=f"array {name} diverged after round trip, "
                            f"{ctx}")
            assert a.scalars == b.scalars, ctx
            assert a.report.summary() == b.report.summary(), (
                f"cost accounting diverged after round trip: {ctx}\n"
                f"original: {a.report.summary()}\n"
                f"revived:  {b.report.summary()}")
            assert a.report.pe_times == b.report.pe_times, ctx


#: Backends every equivalence sweep covers, with the extra run kwargs
#: each needs (the parallel backend runs 2 worker processes so the
#: round-robin PE ownership split, the collective channel, and the
#: barrier schedule are actually exercised; the compiled backend runs
#: its generated kernels — see :func:`preferred_test_jit`).
EQUIVALENCE_BACKENDS: tuple[tuple[str, dict], ...] = (
    ("perpe", {}),
    ("vectorized", {}),
    ("parallel", {"workers": 2}),
    ("compiled", {}),
)


def preferred_test_jit() -> str:
    """The jit mode equivalence sweeps run the compiled backend under.

    ``numba`` when it is importable (the production path), otherwise
    ``python`` — which still executes the *generated* fused/tiled loop
    nests, just un-jitted, so codegen correctness is exercised even in
    environments without numba instead of silently degrading to the
    vectorized slabs that ``jit="auto"`` would pick.
    """
    from repro.codegen import numba_available
    return "numba" if numba_available() else "python"


def _backend_run_context(backend: str):
    """Context under which an equivalence sweep runs ``backend``."""
    from contextlib import nullcontext
    if backend != "compiled":
        return nullcontext()
    from repro.codegen import codegen_options
    return codegen_options(jit=preferred_test_jit())


def equivalence_backends(
        workers: tuple[int | None, ...] = (2,),
) -> tuple[tuple[str, dict], ...]:
    """The standard backend sweep with extra parallel worker counts.

    ``workers`` entries become additional ``parallel`` runs: ``1``
    exercises the degenerate one-worker schedule (all PEs owned by
    worker 0), ``3`` puts uneven PE counts on workers of a 2x2 grid,
    ``None`` lets the backend pick ``min(cpu_count, npes)``.  Used by
    the differential fuzzer to sweep ownership splits without repeating
    the serial backends.
    """
    sweep: list[tuple[str, dict]] = [("perpe", {}), ("vectorized", {})]
    for w in workers:
        sweep.append(("parallel", {"workers": w}))
    sweep.append(("compiled", {}))
    return tuple(sweep)


def backend_equivalence_check(program: GeneratedProgram,
                              inputs: dict[str, np.ndarray],
                              levels: tuple[str, ...] = ("O0", "O2", "O4"),
                              grids: tuple[tuple[int, ...], ...] = ((2, 2),),
                              iterations: int = 1,
                              backends: tuple[tuple[str, dict], ...] =
                              EQUIVALENCE_BACKENDS,
                              compile_options: dict | None = None) -> None:
    """Run under every execution backend at every level/grid; demand
    bitwise-identical arrays and scalars AND identical cost accounting
    (message/byte/copy counts, per-PE times, peak memory) AND an
    identical tagged message log / communication profile.

    This is the backend contract: ``vectorized``, ``parallel``, and
    ``compiled`` are execution strategies, not semantics or cost
    changes, so nothing observable may differ from the per-PE
    executor — down to the
    ``(src, dst, nbytes, tag)`` tuple of every logged message, which is
    what makes the communication profiler backend-agnostic.  The
    ``perpe`` baseline is always compared first.

    Each backend run also executes under a fresh live
    :class:`~repro.obs.metrics.MetricsRegistry`, and the
    backend-invariant metric series (``invariant=True``: modelled
    seconds, event counts, peak memory — everything not derived from a
    wall clock or a backend-specific mechanism) must be *bitwise*
    identical across backends; wall-clock and backend-local series are
    excluded by construction via the invariant tag.

    ``compile_options`` forwards extra keyword options (e.g.
    ``plan_passes=True``) to every ``compile_hpf`` call; an ``outputs``
    key overrides the default (every program array observable) so loop
    passes that require a dead scratch array can fire.
    """
    from repro.obs import metrics as _metrics
    opts = dict(compile_options or {})
    outs = opts.pop("outputs", set(program.arrays))
    for level in levels:
        compiled = compile_hpf(program.source, bindings=program.bindings,
                               level=level, outputs=outs, **opts)
        for grid in grids:
            results = {}
            logs = {}
            inv_snaps = {}
            for backend, extra in backends:
                machine = Machine(grid=grid, keep_message_log=True)
                registry = _metrics.MetricsRegistry()
                with _backend_run_context(backend), \
                        _metrics.use_registry(registry):
                    results[backend] = compiled.run(
                        machine, inputs=inputs, scalars=program.scalars,
                        iterations=iterations, backend=backend,
                        profile=True, **extra)
                logs[backend] = [(m.src, m.dst, m.nbytes, m.tag)
                                 for m in machine.network.log]
                inv_snaps[backend] = registry.invariant_snapshot()
            base = backends[0][0]
            a = results[base]
            for backend, _ in backends[1:]:
                b = results[backend]
                ctx = (f"level {level}, grid {grid}, "
                       f"{base} vs {backend}\n"
                       f"program:\n{program.source}")
                for name in a.arrays:
                    np.testing.assert_array_equal(
                        a.arrays[name], b.arrays[name],
                        err_msg=f"array {name}, {ctx}")
                assert a.scalars == b.scalars, ctx
                assert a.report.summary() == b.report.summary(), (
                    f"cost accounting diverged: {ctx}\n"
                    f"{base}: {a.report.summary()}\n"
                    f"{backend}: {b.report.summary()}")
                assert a.report.pe_times == b.report.pe_times, ctx
                assert a.report.pe_comm_times == \
                    b.report.pe_comm_times, ctx
                assert a.report.pe_copy_times == \
                    b.report.pe_copy_times, ctx
                assert a.peak_memory_per_pe == b.peak_memory_per_pe, ctx
                assert logs[base] == logs[backend], (
                    f"message log diverged: {ctx}")
                assert a.profile is not None and b.profile is not None
                assert a.profile.matrix == b.profile.matrix, (
                    f"communication matrices diverged: {ctx}")
                assert a.profile.totals["messages_by_class"] == \
                    b.profile.totals["messages_by_class"], ctx
                assert inv_snaps[base] == inv_snaps[backend], (
                    f"backend-invariant metric series diverged: {ctx}\n"
                    f"{base}: {inv_snaps[base]}\n"
                    f"{backend}: {inv_snaps[backend]}")
