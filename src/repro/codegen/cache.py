"""Kernel caches: compiled artifacts keyed by plan + machine + factors.

The key is ``sha256(plan serialization, Machine.fingerprint(),
tile/unroll factors, codegen version)`` — everything that can change the
generated source or the data layout it indexes.  Two layers:

* an in-process LRU of materialized :class:`~repro.codegen.jit.
  KernelModule` objects (keyed additionally by jit mode, since the same
  source materializes differently under numba vs python), so repeated
  runs of one plan skip both lowering and JIT compilation;
* an optional on-disk *source* cache (one ``<key>.py`` per module,
  atomic tempfile + ``os.replace`` writes like the
  :class:`~repro.compiler.cache.PersistentPlanCache` it lives next to),
  so lowering survives the interpreter.  Sources are mode-independent;
  a disk hit still JITs in-process.

Both layers share the :class:`~repro.obs.metrics.CacheStats`
counters (the unified snapshot schema every cache in the system
exposes), publishing hit/miss/eviction events to the metrics registry
when one is installed.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from repro.codegen.jit import KernelModule
from repro.codegen.lower import CODEGEN_VERSION
from repro.obs.metrics import CacheStats

#: in-process cap: modules are small (a few functions), but numba
#: dispatchers hold compiled machine code worth bounding
_MAX_MODULES = 64

_LOCK = threading.Lock()
_MODULES: "OrderedDict[tuple[str, str], KernelModule]" = OrderedDict()

#: process-wide counters of the in-process kernel-module cache
MEMORY_STATS = CacheStats(label="kernel-memory")


def kernel_key(plan, machine, options) -> str:
    """Content hash identifying one plan's generated kernels."""
    from repro.plan import plan_to_json
    h = hashlib.sha256()
    for part in (plan_to_json(plan), "\x00", machine.fingerprint(),
                 "\x00", options.factor_fingerprint(), "\x00",
                 f"codegen-v{CODEGEN_VERSION}"):
        h.update(part.encode())
    return h.hexdigest()


def get_module(key: str, mode: str) -> KernelModule | None:
    with _LOCK:
        module = _MODULES.get((key, mode))
        if module is None:
            MEMORY_STATS.record("miss")
            return None
        _MODULES.move_to_end((key, mode))
        MEMORY_STATS.record("hit")
        return module


def put_module(key: str, mode: str, module: KernelModule) -> None:
    with _LOCK:
        _MODULES[(key, mode)] = module
        _MODULES.move_to_end((key, mode))
        while len(_MODULES) > _MAX_MODULES:
            _MODULES.popitem(last=False)
            MEMORY_STATS.record("eviction")


def clear_modules() -> int:
    """Drop every in-process module (tests); returns the count."""
    with _LOCK:
        n = len(_MODULES)
        _MODULES.clear()
        MEMORY_STATS.record("invalidation", n)
        return n


class KernelDiskCache:
    """On-disk generated-source store, one ``<key>.py`` per module."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats(label="kernel-disk")

    def _file(self, key: str) -> Path:
        return self.path / f"{key}.py"

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("*.py"))

    def get_source(self, key: str) -> str | None:
        try:
            text = self._file(key).read_text()
        except OSError:
            self.stats.record("miss")
            return None
        self.stats.record("hit")
        return text

    def put_source(self, key: str, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(text)
            os.replace(tmp, self._file(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
