"""Materialize generated kernel source into callable functions.

Three execution flavors of the same generated module text:

* ``numba`` — each nest function is wrapped in ``numba.njit`` with
  ``fastmath=False`` (fastmath would license reassociation and FMA
  contraction, breaking the bitwise-identity contract).  Compilation is
  lazy per call signature; the in-process kernel cache keeps the
  dispatcher warm.
* ``python`` — the generated source runs as plain Python.  Slow, but it
  executes the *identical* statements Numba would compile, so the
  equivalence suite can exercise real codegen in environments without
  Numba (this is the test-suite default there).

Numba availability is probed lazily and cached; tests monkeypatch
:func:`numba_available` through this module, so callers must invoke it
as ``jit.numba_available()``, never ``from ... import``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codegen.lower import LoweredNest, manifest_nests

_NUMBA_OK: bool | None = None


def numba_available() -> bool:
    """Whether ``import numba`` succeeds (probed once per process)."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401
            _NUMBA_OK = True
        except ImportError:
            _NUMBA_OK = False
    return _NUMBA_OK


@dataclass(frozen=True)
class KernelEntry:
    """One nest's callable (or its fallback record) plus call metadata."""

    nest: LoweredNest
    fn: object | None  # None => slab fallback for this nest

    @property
    def arrays(self) -> tuple[str, ...]:
        return self.nest.arrays

    @property
    def scalars(self) -> tuple[str, ...]:
        return self.nest.scalars


@dataclass(frozen=True)
class KernelModule:
    """All kernels of one plan, materialized under one jit mode."""

    entries: tuple[KernelEntry, ...]
    source: str
    jit: str  # "numba" | "python"


def materialize(source: str, mode: str) -> KernelModule:
    """Exec one generated module and wrap its nest functions.

    ``mode`` is ``"numba"`` or ``"python"``; the caller resolves
    ``"auto"``/``"off"`` before getting here.

    When a live metrics registry is installed, records the
    materialization wall time (``repro_jit_materialize_seconds``, by
    mode) and the per-nest native-vs-fallback counts
    (``repro_codegen_nests_total``, fallbacks labeled by reason).
    """
    from time import perf_counter

    from repro.obs import metrics as _metrics

    registry = _metrics.get_registry()
    t0 = perf_counter() if registry.enabled else 0.0
    namespace: dict = {"np": np}
    exec(compile(source, "<repro-codegen>", "exec"), namespace)
    nests = manifest_nests(namespace["MANIFEST"])
    decorate = None
    if mode == "numba":
        import numba
        decorate = numba.njit(cache=False, fastmath=False)
    entries = []
    for nest in nests:
        fn = None
        if nest.fn_name is not None:
            fn = namespace[nest.fn_name]
            if decorate is not None:
                fn = decorate(fn)
        entries.append(KernelEntry(nest=nest, fn=fn))
    if registry.enabled:
        registry.histogram(
            "repro_jit_materialize_seconds",
            help="Wall-clock seconds materializing one generated "
                 "kernel module (exec + decoration; numba compiles "
                 "lazily per call signature).",
            deterministic=False,
        ).observe(perf_counter() - t0, mode=mode)
        counts = registry.counter(
            "repro_codegen_nests_total",
            help="Lowered loop nests by status: native kernel vs "
                 "per-nest slab fallback (labeled by reason).")
        for nest in nests:
            if nest.fn_name is not None:
                counts.inc(status="native")
            else:
                counts.inc(status="fallback",
                           reason=nest.fallback_reason or "unknown")
    return KernelModule(entries=tuple(entries), source=source, jit=mode)
