"""Codegen configuration: tile/unroll factors and the JIT mode.

The compiled backend is configured out-of-band rather than through the
``execute`` signature: the factors select *how* a plan's loop nests are
lowered, not *what* they compute, and every backend shares one
``execute``/``CompiledProgram.run`` contract.  Callers set a scoped
override with :func:`codegen_options` (a context manager), the CLI maps
``--tile``/``--unroll``/``--jit`` onto the same mechanism, and the
environment variables ``REPRO_COMPILED_TILE`` / ``REPRO_COMPILED_UNROLL``
/ ``REPRO_COMPILED_JIT`` / ``REPRO_KERNEL_CACHE`` supply process-wide
defaults (handy for CI sweeps without threading flags everywhere).

JIT modes
---------
``auto``    use Numba's ``njit`` when importable; otherwise warn once and
            fall back to the vectorized slab path (the graceful-degrade
            contract: results and cost reports are identical either way).
``numba``   require Numba; raise :class:`~repro.errors.UsageError` if it
            is not importable.
``python``  execute the *generated* loop-nest source un-jitted.  Orders
            of magnitude slower than slabs, but it drives the exact code
            Numba would compile, so equivalence tests exercise real
            codegen even where Numba is not installed.
``off``     never generate kernels; pure vectorized slab execution.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace

from repro.errors import UsageError

JIT_MODES = ("auto", "numba", "python", "off")


@dataclass(frozen=True)
class CodegenOptions:
    """Lowering factors plus the JIT mode for one compiled-backend run."""

    #: blocking factor for the non-innermost loops; 0 disables tiling
    tile: int = 0
    #: unroll-and-jam factor for the second-innermost loop; 0 means
    #: "use each nest's modelled ``unroll_jam`` factor from the plan"
    unroll: int = 0
    jit: str = "auto"
    #: directory for the on-disk kernel-source cache; None disables it
    cache_dir: str | None = None

    def validated(self) -> "CodegenOptions":
        if self.tile < 0:
            raise UsageError(
                f"codegen tile factor must be >= 0, got {self.tile}")
        if self.unroll < 0:
            raise UsageError(
                f"codegen unroll factor must be >= 0, got {self.unroll}")
        if self.jit not in JIT_MODES:
            raise UsageError(
                f"codegen jit mode must be one of {'/'.join(JIT_MODES)}, "
                f"got {self.jit!r}")
        return self

    def factor_fingerprint(self) -> str:
        """The part of the options that changes generated source."""
        return f"tile={self.tile};unroll={self.unroll}"


_LOCAL = threading.local()


def _stack() -> list[CodegenOptions]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return fallback
    try:
        return int(raw)
    except ValueError:
        raise UsageError(
            f"{name} must be an integer, got {raw!r}") from None


def _env_defaults() -> CodegenOptions:
    return CodegenOptions(
        tile=_env_int("REPRO_COMPILED_TILE", 0),
        unroll=_env_int("REPRO_COMPILED_UNROLL", 0),
        jit=os.environ.get("REPRO_COMPILED_JIT", "auto"),
        cache_dir=os.environ.get("REPRO_KERNEL_CACHE") or None,
    )


def current_options() -> CodegenOptions:
    """The options in effect: innermost override, else the env defaults."""
    stack = _stack()
    opts = stack[-1] if stack else _env_defaults()
    return opts.validated()


@contextmanager
def codegen_options(**overrides):
    """Scoped override of the current codegen options.

    Unset fields inherit from the enclosing scope (or the environment
    defaults), so ``with codegen_options(unroll=4):`` changes only the
    unroll factor.
    """
    base = _stack()[-1] if _stack() else _env_defaults()
    opts = replace(base, **overrides).validated()
    _stack().append(opts)
    try:
        yield opts
    finally:
        _stack().pop()
