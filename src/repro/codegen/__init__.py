"""Native code generation for Plan-IR loop nests (§3.4 transforms).

Public surface:

* :func:`~repro.codegen.lower.lower_plan` — Plan IR -> generated module
  source (fused/tiled/unroll-and-jammed scalar loops + manifest).
* :func:`~repro.codegen.jit.materialize` — source -> callables, under
  Numba or plain Python.
* :class:`~repro.codegen.options.CodegenOptions` /
  :func:`~repro.codegen.options.codegen_options` — factor and jit-mode
  configuration.
* :mod:`~repro.codegen.cache` — keyed in-process + on-disk kernel
  caches.

The consumer is :class:`repro.runtime.compiled.CompiledExec`
(``backend="compiled"``).
"""

from repro.codegen.lower import (  # noqa: F401
    CODEGEN_VERSION, Fallback, LoweredNest, LoweredPlan, lower_plan,
    plan_nests,
)
from repro.codegen.jit import (  # noqa: F401
    KernelEntry, KernelModule, materialize, numba_available,
)
from repro.codegen.options import (  # noqa: F401
    CodegenOptions, JIT_MODES, codegen_options, current_options,
)
from repro.codegen.cache import (  # noqa: F401
    KernelDiskCache, kernel_key,
)
