"""Reproduction of *Compiling Stencils in High Performance Fortran*
(Roth, Mellor-Crummey, Kennedy, Brickner; SC'97).

Public API
----------
:func:`repro.frontend.parse_program`
    Parse HPF source into IR.
:func:`repro.compiler.compile_hpf` / :class:`repro.compiler.HpfCompiler`
    Compile a program at an optimization level (O0 .. O4, the paper's
    cumulative pipeline) into an executable plan.
:class:`repro.machine.Machine`
    The simulated distributed-memory machine the plans run on.
:mod:`repro.kernels`
    The paper's benchmark kernels as source strings.
"""

__version__ = "1.0.0"

# Re-exported lazily to keep import cost low for sub-package users.
from repro.errors import ReproError  # noqa: F401


def __getattr__(name: str):
    if name == "parse_program":
        from repro.frontend import parse_program
        return parse_program
    if name in ("compile_hpf", "HpfCompiler", "OptLevel"):
        import repro.compiler as _c
        return getattr(_c, name)
    if name in ("Machine", "CostModel"):
        import repro.machine as _m
        return getattr(_m, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
