"""The paper's benchmark kernels as HPF source strings.

These are the exact codes of the paper's figures (modulo declarations,
which the figures omit):

* :data:`FIVE_POINT_ARRAY_SYNTAX` — Figure 1, the 5-point array-syntax
  stencil.
* :data:`NINE_POINT_CSHIFT` — Figure 2, the single-statement 9-point
  CSHIFT stencil.
* :data:`PURDUE_PROBLEM9` — Figure 3, Problem 9 of the Purdue Set as
  adapted for Fortran D benchmarking (the multi-statement 9-point
  stencil used throughout sections 4 and 5).
* :data:`NINE_POINT_ARRAY_SYNTAX` — the interior-only array-syntax
  9-point stencil of section 5 / Figure 18.

Each takes a size parameter ``N`` via the ``bindings`` argument of
:func:`repro.frontend.parse_program`.
"""

from __future__ import annotations

_DECL_2D = """
      REAL, DIMENSION(N,N) :: {names}
!HPF$ DISTRIBUTE {first}(BLOCK,BLOCK)
"""


def _decls(*names: str, align_to_first: bool = True) -> str:
    text = _DECL_2D.format(names=", ".join(names), first=names[0])
    if align_to_first:
        for other in names[1:]:
            text += f"!HPF$ ALIGN {other} WITH {names[0]}\n"
    return text


FIVE_POINT_ARRAY_SYNTAX = _decls("DST", "SRC") + """
      DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1)
     &                 + C2 * SRC(2:N-1,1:N-2)
     &                 + C3 * SRC(2:N-1,2:N-1)
     &                 + C4 * SRC(3:N  ,2:N-1)
     &                 + C5 * SRC(2:N-1,3:N  )
"""

NINE_POINT_CSHIFT = _decls("DST", "SRC") + """
      DST = C1 * CSHIFT(CSHIFT(SRC,-1,1),-1,2)
     &    + C2 * CSHIFT(SRC,-1,1)
     &    + C3 * CSHIFT(CSHIFT(SRC,-1,1),+1,2)
     &    + C4 * CSHIFT(SRC,-1,2)
     &    + C5 * SRC
     &    + C6 * CSHIFT(SRC,+1,2)
     &    + C7 * CSHIFT(CSHIFT(SRC,+1,1),-1,2)
     &    + C8 * CSHIFT(SRC,+1,1)
     &    + C9 * CSHIFT(CSHIFT(SRC,+1,1),+1,2)
"""

PURDUE_PROBLEM9 = _decls("T", "U", "RIP", "RIN") + """
      RIP = CSHIFT(U,SHIFT=+1,DIM=1)
      RIN = CSHIFT(U,SHIFT=-1,DIM=1)
      T   = U + RIP + RIN
      T   = T + CSHIFT(U,SHIFT=-1,DIM=2)
      T   = T + CSHIFT(U,SHIFT=+1,DIM=2)
      T   = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
      T   = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
      T   = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
      T   = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
"""

NINE_POINT_ARRAY_SYNTAX = _decls("DST", "SRC") + """
      DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,1:N-2)
     &                 + C2 * SRC(1:N-2,2:N-1)
     &                 + C3 * SRC(1:N-2,3:N  )
     &                 + C4 * SRC(2:N-1,1:N-2)
     &                 + C5 * SRC(2:N-1,2:N-1)
     &                 + C6 * SRC(2:N-1,3:N  )
     &                 + C7 * SRC(3:N  ,1:N-2)
     &                 + C8 * SRC(3:N  ,2:N-1)
     &                 + C9 * SRC(3:N  ,3:N  )
"""

# Weights of the Problem 9 computation: an unweighted 9-point sum.  Used by
# examples and tests to cross-check against direct NumPy stencils.
PROBLEM9_COEFFS = {f"C{i}": 1.0 for i in range(1, 10)}


# ---------------------------------------------------------------------------
# Generated stencils (experiments beyond the paper's three specifications)
# ---------------------------------------------------------------------------


def make_array_syntax_stencil(radius: int, ndim: int = 2,
                              dst: str = "DST", src: str = "SRC") -> str:
    """Source text of a dense (2*radius+1)^ndim array-syntax stencil.

    The iteration space is the interior ``1+radius : N-radius`` in every
    dimension; coefficients are scalars ``W1, W2, ...``.
    """
    if ndim not in (2, 3):
        raise ValueError("only 2-D and 3-D stencils are generated")
    dims = ",".join("N" for _ in range(ndim))
    dist = "BLOCK,BLOCK" + (",*" if ndim == 3 else "")
    lines = [
        f"      REAL, DIMENSION({dims}) :: {dst}, {src}",
        f"!HPF$ DISTRIBUTE {dst}({dist})",
        f"!HPF$ ALIGN {src} WITH {dst}",
    ]
    lo, hi = 1 + radius, f"N-{radius}"

    def sec(offset: int) -> str:
        a = lo + offset
        b = f"N-{radius - offset}" if radius != offset else "N"
        return f"{a}:{b}"

    target = ",".join(f"{lo}:{hi}" for _ in range(ndim))
    offsets = range(-radius, radius + 1)
    terms = []
    k = 0
    import itertools as _it
    for offs in _it.product(offsets, repeat=ndim):
        k += 1
        section = ",".join(sec(o) for o in offs)
        terms.append(f"W{k} * {src}({section})")
    body = f"      {dst}({target}) = " + terms[0]
    for t in terms[1:]:
        body += f"\n     &    + {t}"
    lines.append(body)
    return "\n".join(lines) + "\n"


def make_cshift_stencil(offsets: "list[tuple[int, ...]]", ndim: int = 2,
                        dst: str = "DST", src: str = "SRC") -> str:
    """Source text of a whole-array CSHIFT stencil over given taps.

    ``offsets`` lists per-tap displacement vectors; tap ``k`` is weighted
    by scalar ``W<k+1>``.  A zero vector yields a bare ``SRC`` term.
    """
    dims = ",".join("N" for _ in range(ndim))
    dist = "BLOCK,BLOCK" + (",*" if ndim == 3 else "")
    lines = [
        f"      REAL, DIMENSION({dims}) :: {dst}, {src}",
        f"!HPF$ DISTRIBUTE {dst}({dist})",
        f"!HPF$ ALIGN {src} WITH {dst}",
    ]
    terms = []
    for k, offs in enumerate(offsets, start=1):
        expr = src
        for d, o in enumerate(offs, start=1):
            if o:
                expr = f"CSHIFT({expr},SHIFT={o:+d},DIM={d})"
        terms.append(f"W{k} * {expr}")
    body = f"      {dst} = " + terms[0]
    for t in terms[1:]:
        body += f"\n     &    + {t}"
    lines.append(body)
    return "\n".join(lines) + "\n"


def star_offsets(radius: int, ndim: int) -> "list[tuple[int, ...]]":
    """Taps of a star (von-Neumann) stencil: axis-aligned out to radius."""
    out = [tuple(0 for _ in range(ndim))]
    for d in range(ndim):
        for r in range(1, radius + 1):
            for s in (-r, r):
                offs = [0] * ndim
                offs[d] = s
                out.append(tuple(offs))
    return out


def box_offsets(radius: int, ndim: int) -> "list[tuple[int, ...]]":
    """Taps of a dense box (Moore) stencil of the given radius."""
    import itertools as _it
    return [offs for offs in _it.product(range(-radius, radius + 1),
                                         repeat=ndim)]


#: 25-point dense 2-D stencil (radius 2), array syntax.
TWENTYFIVE_POINT_ARRAY_SYNTAX = make_array_syntax_stencil(radius=2, ndim=2)

#: 7-point 3-D star stencil via CSHIFTs, (BLOCK,BLOCK,*) distribution.
SEVEN_POINT_3D_CSHIFT = make_cshift_stencil(star_offsets(1, 3), ndim=3)

#: 27-point 3-D box stencil via CSHIFTs.
TWENTYSEVEN_POINT_3D_CSHIFT = make_cshift_stencil(box_offsets(1, 3), ndim=3)


# ---------------------------------------------------------------------------
# Loop-carrying solver kernels (whole solvers, DO loop included)
# ---------------------------------------------------------------------------

#: Variable-coefficient Jacobi relaxation, full-array form.  The DO loop
#: is part of the compiled program, so this is the registry's showcase
#: for the loop-aware plan passes: the coefficient array ``A`` is never
#: written inside the loop (its four halo exchanges hoist to the loop
#: preheader) and the trailing ``U = UNEW`` double-buffer copy is
#: recognised as a ping-pong and replaced by a buffer swap.
JACOBI_SOLVER = _decls("U", "UNEW", "A") + """
      DO K = 1, NITER
        UNEW = 0.25 * ( CSHIFT(A,+1,1)*CSHIFT(U,+1,1)
     &                + CSHIFT(A,-1,1)*CSHIFT(U,-1,1)
     &                + CSHIFT(A,+1,2)*CSHIFT(U,+1,2)
     &                + CSHIFT(A,-1,2)*CSHIFT(U,-1,2) )
        U = UNEW
      ENDDO
"""

#: Red-black Gauss-Seidel smoothing with WHERE masks (the checkerboard
#: colouring lives in the precomputed ``RED`` parity array).  Only the
#: in-place-updated ``U`` is ever shifted, so every exchange is
#: loop-variant and the loop passes must leave the body alone — the
#: masked-solver counterpart of ``cg``'s hands-off coverage.
RED_BLACK_SOLVER = _decls("U", "F", "RED") + """
      DO K = 1, NSWEEPS
        WHERE (RED > 0.5)
          U = 0.25 * ( CSHIFT(U,1,1) + CSHIFT(U,-1,1)
     &               + CSHIFT(U,1,2) + CSHIFT(U,-1,2) - H2 * F )
        END WHERE
        WHERE (RED < 0.5)
          U = 0.25 * ( CSHIFT(U,1,1) + CSHIFT(U,-1,1)
     &               + CSHIFT(U,1,2) + CSHIFT(U,-1,2) - H2 * F )
        END WHERE
      ENDDO
"""

#: One conjugate-gradient solver, DO loop, reductions and scalar
#: recurrences included.  Every array is written every iteration, so
#: this is the loop passes' hands-off case: nothing hoists, nothing
#: swaps, and the plan must come out semantically untouched.
CG_SOLVER = """
      REAL, DIMENSION(N,N) :: X, R, P, Q, B
!HPF$ DISTRIBUTE X(BLOCK,BLOCK)
!HPF$ ALIGN R WITH X
!HPF$ ALIGN P WITH X
!HPF$ ALIGN Q WITH X
!HPF$ ALIGN B WITH X
      X = 0.0
      R = B
      P = R
      RZ = SUM(R * R)
      DO K = 1, NITER
        Q = (4.0 + SIGMA) * P - CSHIFT(P,1,1) - CSHIFT(P,-1,1)
     &    - CSHIFT(P,1,2) - CSHIFT(P,-1,2)
        PAP = SUM(P * Q)
        ALPHA = RZ / PAP
        X = X + ALPHA * P
        R = R - ALPHA * Q
        RZNEW = SUM(R * R)
        BETA = RZNEW / RZ
        RZ = RZNEW
        P = R + BETA * P
      ENDDO
"""


# ---------------------------------------------------------------------------
# Named-kernel registry (CLI convenience: ``python -m repro trace purdue9``)
# ---------------------------------------------------------------------------

from dataclasses import dataclass as _dataclass
from dataclasses import field as _field


@_dataclass(frozen=True)
class KernelSpec:
    """A named kernel with enough metadata to compile+run it directly.

    ``default_scalars`` seeds runtime scalars the kernel needs to be
    numerically meaningful (unset scalars execute as 0.0, which is
    valid but degenerate for e.g. the CG operator shift).
    """

    name: str
    source: str
    outputs: frozenset[str]
    default_bindings: dict[str, int] = _field(
        default_factory=lambda: {"N": 64})
    default_scalars: dict[str, float] = _field(default_factory=dict)


def _spec(name: str, source: str, *outputs: str,
          bindings: dict[str, int] | None = None,
          scalars: dict[str, float] | None = None) -> KernelSpec:
    extra = {} if bindings is None else {
        "default_bindings": dict(bindings)}
    return KernelSpec(name=name, source=source,
                      outputs=frozenset(outputs),
                      default_scalars=dict(scalars or {}), **extra)


#: Kernels addressable by name from the CLI.  The ``jacobi``,
#: ``red_black`` and ``cg`` entries are whole solvers whose DO loop is
#: part of the compiled plan — the coverage targets of the loop-aware
#: plan passes (``plan_passes=True``).
KERNELS: dict[str, KernelSpec] = {
    spec.name: spec for spec in [
        _spec("five_point", FIVE_POINT_ARRAY_SYNTAX, "DST"),
        _spec("nine_point_cshift", NINE_POINT_CSHIFT, "DST"),
        _spec("nine_point", NINE_POINT_ARRAY_SYNTAX, "DST"),
        _spec("purdue9", PURDUE_PROBLEM9, "T"),
        _spec("twentyfive_point", TWENTYFIVE_POINT_ARRAY_SYNTAX, "DST"),
        _spec("seven_point_3d", SEVEN_POINT_3D_CSHIFT, "DST"),
        _spec("box27_3d", TWENTYSEVEN_POINT_3D_CSHIFT, "DST"),
        _spec("jacobi", JACOBI_SOLVER, "U",
              bindings={"N": 64, "NITER": 10}),
        _spec("red_black", RED_BLACK_SOLVER, "U",
              bindings={"N": 64, "NSWEEPS": 10},
              scalars={"H2": 1.0 / (63 * 63)}),
        _spec("cg", CG_SOLVER, "X", "R",
              bindings={"N": 64, "NITER": 10},
              scalars={"SIGMA": 0.5}),
    ]
}


def resolve_kernel(name: str) -> KernelSpec:
    """Look up a named kernel; raises ``KeyError`` with the valid names."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; known kernels: "
            f"{', '.join(sorted(KERNELS))}") from None


def compile_kernel(name: str, bindings: dict[str, int] | None = None,
                   level: str = "O4", cache=None, tracer=None,
                   **options):
    """Compile a registry kernel by name (with its declared outputs).

    ``cache`` is forwarded to :func:`repro.compiler.compile_hpf` — pass
    ``True`` (process default) or a ``PlanCache`` to memoize sweeps that
    recompile the same kernel.
    """
    from repro.compiler import compile_hpf
    spec = resolve_kernel(name)
    return compile_hpf(spec.source,
                       bindings={**spec.default_bindings,
                                 **(bindings or {})},
                       level=level, outputs=set(spec.outputs),
                       cache=cache, tracer=tracer, **options)


def run_kernel(name: str, grid: tuple[int, ...] = (2, 2),
               bindings: dict[str, int] | None = None,
               level: str = "O4", backend: str = "perpe",
               iterations: int = 1, seed: int = 0, machine=None,
               cache=None, tracer=None, profile: bool = False,
               workers: int | None = None,
               scalars: dict[str, float] | None = None, **options):
    """Compile and execute a registry kernel with seeded random inputs.

    ``backend`` selects the execution strategy (``"perpe"``,
    ``"vectorized"``, or ``"parallel"``); all produce bitwise-identical
    results and cost reports.  ``profile`` attaches a communication
    profile (see :mod:`repro.obs.profile`) to the result; its
    kernel/level fields are filled in here.  ``workers`` caps the
    ``parallel`` backend's worker-process count.  Returns the
    :class:`~repro.runtime.executor.ExecutionResult`.
    """
    import numpy as np

    from repro.machine.machine import Machine

    spec = resolve_kernel(name)
    compiled = compile_kernel(name, bindings=bindings, level=level,
                              cache=cache, tracer=tracer, **options)
    if machine is None:
        machine = Machine(grid=grid)
    rng = np.random.default_rng(seed)
    inputs = {
        arr: rng.standard_normal(decl.shape).astype(decl.dtype)
        for arr, decl in compiled.plan.arrays.items()
        if arr in compiled.plan.entry_arrays}
    run_scalars = {**spec.default_scalars, **(scalars or {})}
    result = compiled.run(machine, inputs=inputs, iterations=iterations,
                          scalars=run_scalars, tracer=tracer,
                          backend=backend, profile=profile,
                          workers=workers)
    if result.profile is not None:
        result.profile.kernel = name
        result.profile.level = level
    return result
