"""The simulated distributed-memory machine.

The paper's experiments ran on a 4-processor IBM SP-2 with MPI.  This
package substitutes a deterministic simulator: a grid of processing
elements with private memories (:mod:`repro.machine.memory`), an explicit
message-passing network with per-message records
(:mod:`repro.machine.network`), and an SP-2-class analytic cost model
(:mod:`repro.machine.cost_model`).  Data movement is *actually performed*
on NumPy arrays so results can be checked against serial references; the
cost model supplies modelled execution times with the paper's structure
(message startup, bandwidth, intraprocessor copies, memory-bound loop
bodies).
"""

from repro.machine.topology import ProcessorGrid  # noqa: F401
from repro.machine.cost_model import CostModel, SP2_COST_MODEL  # noqa: F401
from repro.machine.network import Network, MessageRecord  # noqa: F401
from repro.machine.memory import MemoryManager  # noqa: F401
from repro.machine.machine import Machine  # noqa: F401
from repro.machine.presets import PRESETS, by_name, scaled  # noqa: F401
