"""Per-PE memory accounting.

Each PE has a private heap of configurable capacity.  Array allocations
charge it; exceeding capacity raises
:class:`~repro.errors.SimulatedOutOfMemoryError`.  This reproduces the
Figure 11 behaviour where the single-statement 9-point CSHIFT stencil
(12 compiler temporaries) exhausts SP-2 node memory at problem sizes the
3-temporary Problem 9 formulation still handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError, SimulatedOutOfMemoryError


@dataclass
class _Heap:
    capacity: int
    in_use: int = 0
    peak: int = 0
    blocks: dict[str, int] = field(default_factory=dict)


@dataclass
class MemoryManager:
    """Tracks named allocations on every PE.

    ``capacity`` is bytes per PE; ``None`` means unlimited (the default
    for correctness tests; Figure 11 sets a finite capacity).
    """

    npes: int
    capacity: int | None = None

    def __post_init__(self) -> None:
        cap = self.capacity if self.capacity is not None else 1 << 62
        self._heaps = [_Heap(cap) for _ in range(self.npes)]

    def allocate(self, pe: int, name: str, nbytes: int) -> None:
        heap = self._heaps[pe]
        if name in heap.blocks:
            raise MachineError(f"PE {pe}: double allocation of {name}")
        if heap.in_use + nbytes > heap.capacity:
            raise SimulatedOutOfMemoryError(
                pe, nbytes, heap.in_use, heap.capacity)
        heap.blocks[name] = nbytes
        heap.in_use += nbytes
        heap.peak = max(heap.peak, heap.in_use)

    def free(self, pe: int, name: str) -> None:
        heap = self._heaps[pe]
        nbytes = heap.blocks.pop(name, None)
        if nbytes is None:
            raise MachineError(f"PE {pe}: free of unallocated {name}")
        heap.in_use -= nbytes

    def allocate_all(self, name: str, nbytes_per_pe: list[int]) -> None:
        """Allocate one named block on every PE (distributed array)."""
        done = []
        try:
            for pe, nbytes in enumerate(nbytes_per_pe):
                self.allocate(pe, name, nbytes)
                done.append(pe)
        except SimulatedOutOfMemoryError:
            for pe in done:
                self.free(pe, name)
            raise

    def free_all(self, name: str) -> None:
        for pe in range(self.npes):
            if name in self._heaps[pe].blocks:
                self.free(pe, name)

    def in_use(self, pe: int) -> int:
        return self._heaps[pe].in_use

    def peak(self, pe: int) -> int:
        return self._heaps[pe].peak

    @property
    def peak_per_pe(self) -> int:
        return max(h.peak for h in self._heaps)

    def adopt_peaks(self, peaks: list[int]) -> None:
        """Raise per-PE peaks to at least ``peaks``.

        The parallel backend's workers run the full allocation charge
        walk in their own processes; the coordinator folds their peak
        watermarks back into the parent's heaps so ``peak_per_pe``
        reflects the execution regardless of which process allocated.
        """
        if len(peaks) != len(self._heaps):
            raise MachineError(
                f"adopt_peaks: {len(peaks)} peaks for "
                f"{len(self._heaps)} PEs")
        for heap, peak in zip(self._heaps, peaks):
            heap.peak = max(heap.peak, peak)

    def live_blocks(self, pe: int) -> dict[str, int]:
        return dict(self._heaps[pe].blocks)
