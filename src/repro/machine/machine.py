"""The :class:`Machine` facade tying together grid, network, and memory."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.cost_model import CostModel, CostReport, SP2_COST_MODEL
from repro.machine.memory import MemoryManager
from repro.machine.network import Network
from repro.machine.topology import ProcessorGrid


@dataclass
class Machine:
    """A simulated distributed-memory machine.

    Parameters
    ----------
    grid:
        Processor grid shape, e.g. ``(2, 2)`` for the paper's 4-processor
        SP-2 runs.
    cost_model:
        Machine constants; defaults to :data:`SP2_COST_MODEL`.
    memory_per_pe:
        Heap capacity per PE in bytes, or ``None`` for unlimited.
    keep_message_log:
        Retain individual message records (handy in tests; experiments
        with millions of messages can turn it off).
    """

    grid: tuple[int, ...] = (2, 2)
    cost_model: CostModel = field(default_factory=lambda: SP2_COST_MODEL)
    memory_per_pe: int | None = None
    keep_message_log: bool = True

    def __post_init__(self) -> None:
        self.topology = ProcessorGrid(tuple(self.grid))
        self.reset()

    def reset(self) -> None:
        """Fresh cost report, message log, and heaps (keeps the grid)."""
        self.report = CostReport()
        self.report.ensure_pes(self.topology.size)
        self.memory = MemoryManager(self.topology.size, self.memory_per_pe)
        self.network = Network(self.cost_model, self.report,
                               keep_log=self.keep_message_log)
        self._owned = None

    def set_ownership(self, owned) -> None:
        """Restrict cost charging to the PEs satisfying ``owned``.

        Installed by parallel workers (owner-computes execution): loop
        and copy charges on non-owned PEs become no-ops, and the network
        skips charging/logging transfers whose source PE is not owned
        (while still advancing the global message sequence).  Pass
        ``None`` to restore charge-everything behaviour.
        """
        self._owned = owned
        self.network.owned = owned

    @property
    def npes(self) -> int:
        return self.topology.size

    def fingerprint(self) -> str:
        """Canonical string identifying the machine configuration (grid
        shape, cost constants, heap capacity) for plan-cache keys —
        plans are machine-independent today, but callers that record
        results per machine key on this to stay honest if that ever
        changes."""
        return (f"grid={tuple(self.grid)};mem={self.memory_per_pe};"
                f"cost={sorted(vars(self.cost_model).items())}")

    def charge_loop(self, pe: int, stats, overhead_factor: float = 1.0) -> None:
        if self._owned is not None and not self._owned(pe):
            return
        self.report.add_loop(pe, stats, self.cost_model, overhead_factor)

    def charge_copy(self, pe: int, nelems: int, elem_size: int) -> None:
        if self._owned is not None and not self._owned(pe):
            return
        self.report.add_copy(pe, nelems, elem_size, self.cost_model)

    def __str__(self) -> str:
        return f"Machine(grid={self.topology}, npes={self.npes})"
