"""Named machine presets.

The default :data:`~repro.machine.cost_model.SP2_COST_MODEL` models the
paper's 4-processor IBM SP-2.  These presets span the balance space the
sensitivity study sweeps, with rough provenance for each:

=================  =====================================================
``SP2``            the paper's machine: tens-of-MB/s network with heavy
                   per-message software overhead, ~25 ns memory loads
``ETHERNET_NOW``   the same nodes on a shared 10 Mb Ethernet — the
                   workstation-cluster setting HPF also targeted
``T3E``            a tightly coupled late-90s MPP: much lower message
                   latency, similar memory
``MODERN_NODE``    one contemporary multicore socket: memory an order of
                   magnitude faster, message costs unchanged (helpful
                   for what-if runs against the 1997 network)
``MODERN_CLUSTER`` contemporary HPC: microsecond-class latency and fast
                   memory — where message *counts* matter far less than
                   traffic, foreshadowed by the sensitivity study
=================  =====================================================

These are modelling instruments, not certified machine specs; absolute
times are indicative, structure (which term dominates) is the point.
"""

from __future__ import annotations

from dataclasses import replace

from repro.machine.cost_model import CostModel, SP2_COST_MODEL


def scaled(base: CostModel, network: float = 1.0,
           memory: float = 1.0) -> CostModel:
    """Scale a model's network terms (alpha, beta) and memory terms
    (loads, stores, copies) independently."""
    return replace(
        base,
        alpha=base.alpha * network,
        beta=base.beta * network,
        mem_load=base.mem_load * memory,
        cached_load=base.cached_load * memory,
        store=base.store * memory,
        copy_elem=base.copy_elem * memory,
    )


#: the paper's machine (see cost_model.py for the calibration notes)
SP2: CostModel = SP2_COST_MODEL

#: SP-2-class nodes on shared 10 Mb Ethernet
ETHERNET_NOW: CostModel = scaled(SP2_COST_MODEL, network=8.0)

#: tightly coupled MPP (low-latency interconnect, similar memory)
T3E: CostModel = scaled(SP2_COST_MODEL, network=0.15)

#: contemporary single node: much faster memory, 1997 network kept
MODERN_NODE: CostModel = scaled(SP2_COST_MODEL, memory=0.2)

#: contemporary cluster: fast everything
MODERN_CLUSTER: CostModel = scaled(SP2_COST_MODEL, network=0.05,
                                   memory=0.1)

PRESETS: dict[str, CostModel] = {
    "sp2": SP2,
    "ethernet": ETHERNET_NOW,
    "t3e": T3E,
    "modern-node": MODERN_NODE,
    "modern-cluster": MODERN_CLUSTER,
}


def by_name(name: str) -> CostModel:
    """Look up a preset by its CLI-friendly name."""
    try:
        return PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown machine preset {name!r}; choose from "
            f"{sorted(PRESETS)}") from None
