"""Message-passing network of the simulated machine.

Every interprocessor transfer goes through :meth:`Network.send`, which
records a :class:`MessageRecord` and charges the cost model.  The data
itself is a NumPy array handed to the receiver immediately (the simulator
is sequentially consistent; modelled time lives in the cost report, not
in wall-clock ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MachineError
from repro.machine.cost_model import CostModel, CostReport


@dataclass(frozen=True)
class MessageRecord:
    """One logged point-to-point message."""

    src: int
    dst: int
    nbytes: int
    tag: str

    def __str__(self) -> str:
        return f"{self.src}->{self.dst} {self.nbytes}B [{self.tag}]"


@dataclass
class Network:
    """Records messages and charges their cost to the sending PE."""

    cost_model: CostModel
    report: CostReport
    log: list[MessageRecord] = field(default_factory=list)
    keep_log: bool = True

    def send(self, src: int, dst: int, payload: np.ndarray,
             tag: str = "") -> np.ndarray:
        """Transfer ``payload`` from PE ``src`` to PE ``dst``.

        Returns the received array (a copy, as a real message would be).
        Self-sends are legal — on a 1-wide grid dimension a circular shift
        wraps onto the same PE — and are priced as local copies, not
        messages (no NIC involvement, matching what MPI implementations
        do for self-communication via memcpy).
        """
        if payload.size == 0:
            raise MachineError("zero-size message; caller should elide it")
        data = np.ascontiguousarray(payload).copy()
        if src == dst:
            self.report.add_copy(src, data.size, data.itemsize,
                                 self.cost_model)
            return data
        rec = MessageRecord(src, dst, int(data.nbytes), tag)
        if self.keep_log:
            self.log.append(rec)
        self.report.add_message(src, int(data.nbytes), self.cost_model)
        return data

    @property
    def message_count(self) -> int:
        return self.report.messages

    def messages_with_tag(self, prefix: str) -> list[MessageRecord]:
        return [m for m in self.log if m.tag.startswith(prefix)]
