"""Message-passing network of the simulated machine.

Every interprocessor transfer goes through :meth:`Network.send`, which
records a :class:`MessageRecord` and charges the cost model.  The data
itself is a NumPy array handed to the receiver immediately (the simulator
is sequentially consistent; modelled time lives in the cost report, not
in wall-clock ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MachineError
from repro.machine.cost_model import CostModel, CostReport

#: Tag classes of every point-to-point message, in the order the
#: communication profiler reports them:
#:
#: * ``halo`` — plain ``OVERLAP_SHIFT`` slab exchange (trivial RSD): the
#:   face of a block moving to the neighboring PE's overlap area.
#: * ``rsd`` — an ``OVERLAP_SHIFT`` whose slab was *widened* by an RSD or
#:   by base offsets: the message also carries overlap cells filled by
#:   earlier shifts (the paper's corner pickup, Figures 9/10).
#: * ``bufshift`` — the buffered exchange of a full ``CSHIFT``/``EOSHIFT``
#:   through a scratch communication buffer: the unconverted-shift path
#:   (compensating copies and the naive O0 translation) whose
#:   intraprocessor components the offset-array optimization deletes.
TAG_CLASSES = ("halo", "rsd", "bufshift")

#: Name prefix of scratch communication buffers; messages on these
#: arrays classify as ``bufshift`` regardless of their slab shape.
SHIFT_BUFFER_PREFIX = "__shiftbuf_"


def comm_tag(array: str, dim: int, shift: int, *,
             widened: bool = False) -> str:
    """The canonical message tag for a slab exchange.

    Both executors MUST build tags through this function — the tag
    taxonomy is part of the backend-equivalence contract (metadata-only
    :meth:`Network.record` logs must be indistinguishable from
    :meth:`Network.send` logs), and the communication profiler's
    per-class matrix split keys on the class prefix.
    """
    if array.startswith(SHIFT_BUFFER_PREFIX):
        kind = "bufshift"
    elif widened:
        kind = "rsd"
    else:
        kind = "halo"
    return f"{kind}:{array}:d{dim}:{shift:+d}"


def tag_class(tag: str) -> str:
    """Tag class of a message tag (``other`` for untagged/foreign tags)."""
    head, _, _ = tag.partition(":")
    return head if head in TAG_CLASSES else "other"


@dataclass(frozen=True)
class MessageRecord:
    """One logged point-to-point message."""

    src: int
    dst: int
    nbytes: int
    tag: str

    def __str__(self) -> str:
        return f"{self.src}->{self.dst} {self.nbytes}B [{self.tag}]"


@dataclass
class Network:
    """Records messages and charges their cost to the sending PE."""

    cost_model: CostModel
    report: CostReport
    log: list[MessageRecord] = field(default_factory=list)
    keep_log: bool = True

    def send(self, src: int, dst: int, payload: np.ndarray,
             tag: str = "") -> np.ndarray:
        """Transfer ``payload`` from PE ``src`` to PE ``dst``.

        Returns the received array (a copy, as a real message would be).
        Self-sends are legal — on a 1-wide grid dimension a circular shift
        wraps onto the same PE — and are priced as local copies, not
        messages (no NIC involvement, matching what MPI implementations
        do for self-communication via memcpy).
        """
        if payload.size == 0:
            raise MachineError("zero-size message; caller should elide it")
        data = np.ascontiguousarray(payload).copy()
        if src == dst:
            self.report.add_copy(src, data.size, data.itemsize,
                                 self.cost_model)
            return data
        rec = MessageRecord(src, dst, int(data.nbytes), tag)
        if self.keep_log:
            self.log.append(rec)
        self.report.add_message(src, int(data.nbytes), self.cost_model)
        return data

    def record(self, src: int, dst: int, nelems: int, itemsize: int,
               tag: str = "") -> None:
        """Charge and log a transfer without moving payload bytes.

        Metadata-only twin of :meth:`send` for executors that move data
        out of band (the vectorized backend): identical message/copy
        accounting, identical zero-size rejection, no array copy.
        """
        if nelems == 0:
            raise MachineError("zero-size message; caller should elide it")
        if src == dst:
            self.report.add_copy(src, nelems, itemsize, self.cost_model)
            return
        nbytes = int(nelems) * int(itemsize)
        if self.keep_log:
            self.log.append(MessageRecord(src, dst, nbytes, tag))
        self.report.add_message(src, nbytes, self.cost_model)

    def record_batch(self, transfers: list[tuple[int, int, int]],
                     itemsize: int, tag: str = "") -> None:
        """:meth:`record` over many ``(src, dst, nelems)`` transfers.

        Bitwise-identical accounting to calling :meth:`record` once per
        transfer in list order — each PE's time accumulates the same
        addends in the same order — with the loop constants (cost-model
        lookups, report attribute access) hoisted out of the per-PE loop.
        """
        report = self.report
        report.ensure_pes(1 + max((t[0] for t in transfers), default=-1))
        pe_times = report.pe_times
        pe_comm = report.pe_comm_times
        log = self.log if self.keep_log else None
        msg_t: dict[int, float] = {}
        nmsgs = 0
        total_bytes = 0
        for src, dst, nelems in transfers:
            if nelems == 0:
                raise MachineError("zero-size message; caller should "
                                   "elide it")
            if src == dst:
                report.add_copy(src, nelems, itemsize, self.cost_model)
                continue
            nbytes = nelems * itemsize
            t = msg_t.get(nbytes)
            if t is None:
                t = self.cost_model.msg_time(nbytes)
                msg_t[nbytes] = t
            if log is not None:
                log.append(MessageRecord(src, dst, nbytes, tag))
            pe_times[src] += t
            pe_comm[src] += t
            nmsgs += 1
            total_bytes += nbytes
        report.messages += nmsgs
        report.message_bytes += total_bytes

    def install_worker_logs(self,
                            logs: list[list[MessageRecord]]) -> None:
        """Adopt the merged message log from parallel-backend workers.

        Every worker replays the full deterministic charge walk, so the
        logs must already be identical replicas; divergence is reported
        as an error, never silently resolved.  ``MessageRecord`` is a
        frozen dataclass of ints and a string, so worker logs pickle
        unchanged and compare by value here.
        """
        if not logs:
            raise MachineError("install_worker_logs needs >= 1 log")
        first = logs[0]
        for w, log in enumerate(logs[1:], start=1):
            if log != first:
                raise MachineError(
                    f"worker {w} message log diverged from worker 0 "
                    f"({len(log)} vs {len(first)} records)")
        if self.keep_log:
            self.log = list(first)

    @property
    def message_count(self) -> int:
        return self.report.messages

    def messages_with_tag(self, prefix: str) -> list[MessageRecord]:
        return [m for m in self.log if m.tag.startswith(prefix)]
