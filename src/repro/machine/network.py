"""Message-passing network of the simulated machine.

Every interprocessor transfer goes through :meth:`Network.send`, which
records a :class:`MessageRecord` and charges the cost model.  The data
itself is a NumPy array handed to the receiver immediately (the simulator
is sequentially consistent; modelled time lives in the cost report, not
in wall-clock ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MachineError
from repro.machine.cost_model import CostModel, CostReport

#: Tag classes of every point-to-point message, in the order the
#: communication profiler reports them:
#:
#: * ``halo`` — plain ``OVERLAP_SHIFT`` slab exchange (trivial RSD): the
#:   face of a block moving to the neighboring PE's overlap area.
#: * ``rsd`` — an ``OVERLAP_SHIFT`` whose slab was *widened* by an RSD or
#:   by base offsets: the message also carries overlap cells filled by
#:   earlier shifts (the paper's corner pickup, Figures 9/10).
#: * ``bufshift`` — the buffered exchange of a full ``CSHIFT``/``EOSHIFT``
#:   through a scratch communication buffer: the unconverted-shift path
#:   (compensating copies and the naive O0 translation) whose
#:   intraprocessor components the offset-array optimization deletes.
#: * ``allreduce`` — the butterfly rounds of a reduction collective
#:   (SUM/MAXVAL/MINVAL): ``ceil(log2 P)`` 8-byte exchanges per PE that
#:   combine per-PE partials into the globally agreed scalar.
TAG_CLASSES = ("halo", "rsd", "bufshift", "allreduce")

#: Name prefix of scratch communication buffers; messages on these
#: arrays classify as ``bufshift`` regardless of their slab shape.
SHIFT_BUFFER_PREFIX = "__shiftbuf_"


def comm_tag(array: str, dim: int, shift: int, *,
             widened: bool = False) -> str:
    """The canonical message tag for a slab exchange.

    Both executors MUST build tags through this function — the tag
    taxonomy is part of the backend-equivalence contract (metadata-only
    :meth:`Network.record` logs must be indistinguishable from
    :meth:`Network.send` logs), and the communication profiler's
    per-class matrix split keys on the class prefix.
    """
    if array.startswith(SHIFT_BUFFER_PREFIX):
        kind = "bufshift"
    elif widened:
        kind = "rsd"
    else:
        kind = "halo"
    return f"{kind}:{array}:d{dim}:{shift:+d}"


def tag_class(tag: str) -> str:
    """Tag class of a message tag (``other`` for untagged/foreign tags)."""
    head, _, _ = tag.partition(":")
    return head if head in TAG_CLASSES else "other"


def allreduce_tag(op: str) -> str:
    """The canonical message tag for one reduction collective."""
    return f"allreduce:{op}"


def butterfly_partner(pe: int, rnd: int, npes: int) -> int:
    """PE ``pe``'s exchange partner in round ``rnd`` of a recursive-
    doubling butterfly over ``npes`` ranks.

    For the power-of-two case this is the classic ``pe XOR 2^rnd``; when
    the XOR partner falls off the end of a non-power-of-two rank count
    the exchange wraps cyclically.  The partner is never ``pe`` itself:
    every round has ``0 < 2^rnd < npes``.
    """
    step = 1 << rnd
    partner = pe ^ step
    if partner >= npes:
        partner = (pe + step) % npes
    return partner


@dataclass(frozen=True)
class MessageRecord:
    """One logged point-to-point message.

    ``seq`` is the record's position in the machine-global message
    order.  Serial backends log records already in order, so the stamp
    is redundant there; parallel workers each log only the records whose
    *source* PE they own, and the parent splices the worker logs back
    into the global order by sorting on ``seq``.  It is excluded from
    equality so a merged log compares equal to a serially produced one.
    """

    src: int
    dst: int
    nbytes: int
    tag: str
    seq: int = field(default=-1, compare=False)

    def __str__(self) -> str:
        return f"{self.src}->{self.dst} {self.nbytes}B [{self.tag}]"


@dataclass
class Network:
    """Records messages and charges their cost to the sending PE.

    ``owned`` is the ownership predicate of the process-parallel
    backend: when set, only transfers whose source PE satisfies it are
    charged and logged — but the global sequence counter still advances
    for skipped records, so every worker stamps the records it *does*
    log with their position in the machine-global message order.
    Serial backends leave ``owned`` as ``None`` and charge everything.
    """

    cost_model: CostModel
    report: CostReport
    log: list[MessageRecord] = field(default_factory=list)
    keep_log: bool = True
    owned: "object" = None  # callable pe -> bool, or None (own all)
    _seq: int = 0

    def _owns(self, pe: int) -> bool:
        return self.owned is None or self.owned(pe)

    def send(self, src: int, dst: int, payload: np.ndarray,
             tag: str = "") -> np.ndarray:
        """Transfer ``payload`` from PE ``src`` to PE ``dst``.

        Returns the received array (a copy, as a real message would be).
        Self-sends are legal — on a 1-wide grid dimension a circular shift
        wraps onto the same PE — and are priced as local copies, not
        messages (no NIC involvement, matching what MPI implementations
        do for self-communication via memcpy).
        """
        if payload.size == 0:
            raise MachineError("zero-size message; caller should elide it")
        data = np.ascontiguousarray(payload).copy()
        if src == dst:
            if self._owns(src):
                self.report.add_copy(src, data.size, data.itemsize,
                                     self.cost_model)
            return data
        seq = self._seq
        self._seq = seq + 1
        if self._owns(src):
            if self.keep_log:
                self.log.append(
                    MessageRecord(src, dst, int(data.nbytes), tag,
                                  seq=seq))
            self.report.add_message(src, int(data.nbytes),
                                    self.cost_model)
        return data

    def record(self, src: int, dst: int, nelems: int, itemsize: int,
               tag: str = "") -> None:
        """Charge and log a transfer without moving payload bytes.

        Metadata-only twin of :meth:`send` for executors that move data
        out of band (the vectorized backend): identical message/copy
        accounting, identical zero-size rejection, no array copy.
        """
        if nelems == 0:
            raise MachineError("zero-size message; caller should elide it")
        if src == dst:
            if self._owns(src):
                self.report.add_copy(src, nelems, itemsize,
                                     self.cost_model)
            return
        seq = self._seq
        self._seq = seq + 1
        if not self._owns(src):
            return
        nbytes = int(nelems) * int(itemsize)
        if self.keep_log:
            self.log.append(MessageRecord(src, dst, nbytes, tag, seq=seq))
        self.report.add_message(src, nbytes, self.cost_model)

    def record_batch(self, transfers: list[tuple[int, int, int]],
                     itemsize: int, tag: str = "") -> None:
        """:meth:`record` over many ``(src, dst, nelems)`` transfers.

        Bitwise-identical accounting to calling :meth:`record` once per
        transfer in list order — each PE's time accumulates the same
        addends in the same order — with the loop constants (cost-model
        lookups, report attribute access) hoisted out of the per-PE loop.
        """
        report = self.report
        report.ensure_pes(1 + max((t[0] for t in transfers), default=-1))
        pe_times = report.pe_times
        pe_comm = report.pe_comm_times
        log = self.log if self.keep_log else None
        owned = self.owned
        msg_t: dict[int, float] = {}
        nmsgs = 0
        total_bytes = 0
        for src, dst, nelems in transfers:
            if nelems == 0:
                raise MachineError("zero-size message; caller should "
                                   "elide it")
            if src == dst:
                if owned is None or owned(src):
                    report.add_copy(src, nelems, itemsize,
                                    self.cost_model)
                continue
            seq = self._seq
            self._seq = seq + 1
            if owned is not None and not owned(src):
                continue
            nbytes = nelems * itemsize
            t = msg_t.get(nbytes)
            if t is None:
                t = self.cost_model.msg_time(nbytes)
                msg_t[nbytes] = t
            if log is not None:
                log.append(MessageRecord(src, dst, nbytes, tag, seq=seq))
            pe_times[src] += t
            pe_comm[src] += t
            nmsgs += 1
            total_bytes += nbytes
        report.messages += nmsgs
        report.message_bytes += total_bytes

    def allreduce(self, pe: int, npes: int, nbytes: int = 8,
                  tag: str = "allreduce:SUM") -> None:
        """Charge and log PE ``pe``'s share of one reduction collective.

        Models a recursive-doubling butterfly: ``ceil(log2 npes)``
        rounds, one ``nbytes`` exchange with a distinct partner per
        round, each priced as an ordinary point-to-point message on the
        sender.  Executors call this once per PE in rank order so every
        backend charges the identical per-PE addend sequence.
        """
        rounds = (npes - 1).bit_length() if npes > 1 else 0
        elems = max(1, nbytes // 8)
        for rnd in range(rounds):
            self.record(pe, butterfly_partner(pe, rnd, npes), elems, 8,
                        tag)

    def install_worker_logs(self,
                            logs: list[list[MessageRecord]]) -> None:
        """Splice ownership-partial worker logs into the global order.

        Each parallel worker logs only the records whose source PE it
        owns, stamped with their position in the machine-global message
        sequence (every worker's sequence counter advances even for the
        records it skips, so the stamps agree across workers).  The
        merged log is the concatenation sorted by ``seq``; the stamps
        must tile ``0..n-1`` exactly — a gap means some record was
        charged by no worker, a duplicate means two workers both believe
        they own its source PE.  Either way the workers desynchronized
        and the error says where.  ``MessageRecord`` is a frozen
        dataclass of ints and a string, so worker logs pickle unchanged.
        """
        if not logs:
            raise MachineError("install_worker_logs needs >= 1 log")
        merged = sorted((rec for log in logs for rec in log),
                        key=lambda rec: rec.seq)
        for pos, rec in enumerate(merged):
            if rec.seq != pos:
                kind = ("duplicated by two workers" if rec.seq < pos
                        else "logged by no worker")
                raise MachineError(
                    f"worker message logs desynchronized: global "
                    f"message #{min(pos, rec.seq)} {kind} (next record "
                    f"is {rec} with seq {rec.seq}, expected {pos})")
        if self.keep_log:
            self.log = merged

    @property
    def message_count(self) -> int:
        return self.report.messages

    def messages_with_tag(self, prefix: str) -> list[MessageRecord]:
        return [m for m in self.log if m.tag.startswith(prefix)]
