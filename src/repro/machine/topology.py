"""Processor grid topology.

PEs are arranged in a d-dimensional torus (CSHIFT wraps, so neighbor
relations wrap too).  Ranks are row-major over grid coordinates, matching
the usual MPI Cartesian communicator convention.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.errors import MachineError


@dataclass(frozen=True)
class ProcessorGrid:
    """A d-dimensional torus of processing elements."""

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape or any(p <= 0 for p in self.shape):
            raise MachineError(f"bad grid shape {self.shape}")

    @property
    def size(self) -> int:
        return math.prod(self.shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def coords(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of a PE rank (row-major)."""
        if not (0 <= rank < self.size):
            raise MachineError(f"rank {rank} out of range for {self.shape}")
        out = []
        for extent in reversed(self.shape):
            out.append(rank % extent)
            rank //= extent
        return tuple(reversed(out))

    def rank(self, coords: tuple[int, ...]) -> int:
        """PE rank of grid coordinates (wrapping each coordinate)."""
        if len(coords) != self.ndim:
            raise MachineError(
                f"coordinate rank mismatch: {coords} on grid {self.shape}")
        r = 0
        for c, extent in zip(coords, self.shape):
            r = r * extent + (c % extent)
        return r

    def neighbor(self, rank: int, grid_dim: int, direction: int) -> int:
        """Rank of the torus neighbor along ``grid_dim`` (0-based) in
        ``direction`` (+1 or -1)."""
        if direction not in (-1, 1):
            raise MachineError("direction must be +1 or -1")
        if not (0 <= grid_dim < self.ndim):
            raise MachineError(f"grid dim {grid_dim} out of range")
        coords = list(self.coords(rank))
        coords[grid_dim] += direction
        return self.rank(tuple(coords))

    def ranks(self) -> range:
        return range(self.size)

    def all_coords(self) -> list[tuple[int, ...]]:
        return [tuple(c) for c in itertools.product(
            *(range(e) for e in self.shape))]

    def __str__(self) -> str:
        return "x".join(map(str, self.shape))
