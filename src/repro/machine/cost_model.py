"""Analytic cost model for the simulated machine.

The reproduction cannot time a 1997 IBM SP-2, so modelled execution time
is computed from first principles with SP-2-class constants:

* interprocessor messages cost ``alpha + beta * nbytes`` (MPL/MPI linear
  model; SP-2 latency tens of microseconds, bandwidth tens of MB/s);
* intraprocessor shift copies stream whole subgrids through memory;
* subgrid loop nests are memory bound (paper section 2.2): time is
  dominated by loads that miss cache vs. loads satisfied from cache or
  registers.  The compiler's memory-optimization pass reports how many
  references per point remain memory loads after scalar replacement and
  unroll-and-jam; the model prices them.

Absolute numbers are not the point — the *structure* is: which
optimization removes which term.  ``hpf_overhead_factor`` models the
interpretive subgrid-loop overhead of early HPF compilers (the paper
measured xlhpf 10x slower than hand-written F77+MPI before any of its
optimizations; Figure 11 vs Figure 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class LoopStats:
    """Per-point memory behaviour of one subgrid loop nest.

    Produced by codegen + the memory-optimization pass; consumed by
    :meth:`CostModel.loop_time`.
    """

    points: int                 # iteration-space points executed by this PE
    statements: int = 1         # fused statement count (loop overhead)
    mem_loads: float = 0.0      # per-point loads that go to memory
    cached_loads: float = 0.0   # per-point loads from cache/registers
    stores: float = 0.0         # per-point stores
    flops: float = 0.0          # per-point arithmetic operations

    def scaled(self, factor: float) -> "LoopStats":
        return replace(self, mem_loads=self.mem_loads * factor)


@dataclass(frozen=True)
class CostModel:
    """Machine constants (seconds / bytes / elements)."""

    #: per-message software overhead (s) — HPF-era shift communication:
    #: MPL latency plus runtime buffer packing/synchronization
    alpha: float = 300e-6
    #: per-byte transfer time (s/B) — ~25 MB/s sustained through the
    #: runtime (the raw SP-2 switch did ~35 MB/s)
    beta: float = 1.0 / 25e6
    #: per-element intraprocessor copy cost (s).  A library CSHIFT makes
    #: two whole-subgrid copies (into the communication buffer and out to
    #: the destination), each read+write through memory; the pair then
    #: costs ~2.5 memory accesses per element, matching the measured
    #: weight of the offset-array optimization's first step
    copy_elem: float = 30e-9
    #: per-element memory load (cache-miss dominated streaming) (s)
    mem_load: float = 24e-9
    #: per-element cached/register load (s)
    cached_load: float = 4e-9
    #: per-element store (s)
    store: float = 10e-9
    #: per arithmetic operation (s)
    flop: float = 4e-9
    #: per-iteration-point loop bookkeeping per statement (s)
    loop_overhead: float = 2e-9
    #: multiplier applied to loop time for the xlhpf-like baseline's
    #: interpretive subgrid loops and run-time alignment checks.
    #: Calibrated so the baseline is ~10x slower than the naive
    #: Fortran77+MPI translation, the gap the paper measured between
    #: Figure 11 (xlhpf, 4.77 s) and Figure 17 ("original", 0.475 s).
    hpf_overhead_factor: float = 18.0

    # -- primitive costs ----------------------------------------------------
    def msg_time(self, nbytes: int) -> float:
        """One point-to-point message of ``nbytes``."""
        return self.alpha + self.beta * nbytes

    def copy_time(self, nelems: int, elem_size: int) -> float:
        """Intraprocessor move of ``nelems`` elements (both components of a
        CSHIFT move whole subgrids; the offset-array optimization exists to
        delete this term)."""
        scale = elem_size / 4.0
        return nelems * self.copy_elem * scale

    def loop_time(self, stats: LoopStats,
                  overhead_factor: float = 1.0) -> float:
        """A subgrid loop nest, from its per-point memory profile."""
        per_point = (stats.mem_loads * self.mem_load
                     + stats.cached_loads * self.cached_load
                     + stats.stores * self.store
                     + stats.flops * self.flop
                     + stats.statements * self.loop_overhead)
        return stats.points * per_point * overhead_factor


#: Default SP-2-class constants used by all experiments.
SP2_COST_MODEL = CostModel()


@dataclass
class CostReport:
    """Accumulated modelled costs of one program execution.

    Times are per-PE; :attr:`modelled_time` is the max over PEs of each
    PE's accumulated time (BSP-style: PEs run the same SPMD program).

    The four float memory/arithmetic aggregates are kept as *per-PE
    rows* (``pe_mem_loads`` …) and summed in PE order by the property
    accessors.  This makes the aggregates ownership-mergeable: each
    parallel worker charges only the PEs it owns, and the merged report
    — rows taken from each PE's owner — sums to bitwise the same floats
    as a serial backend, because every backend folds the same rows in
    the same PE order.  Integer counters are order-free and stay plain
    scalars summed across workers.
    """

    pe_times: list[float] = field(default_factory=list)
    pe_comm_times: list[float] = field(default_factory=list)
    pe_copy_times: list[float] = field(default_factory=list)
    pe_mem_loads: list[float] = field(default_factory=list)
    pe_cached_loads: list[float] = field(default_factory=list)
    pe_stores: list[float] = field(default_factory=list)
    pe_flops: list[float] = field(default_factory=list)
    messages: int = 0
    message_bytes: int = 0
    copies: int = 0
    copy_elements: int = 0
    loop_points: int = 0

    #: per-PE row lists grown together by :meth:`ensure_pes`; every row
    #: is authoritative only on the PE's owning worker
    _PE_ROWS = ("pe_times", "pe_comm_times", "pe_copy_times",
                "pe_mem_loads", "pe_cached_loads", "pe_stores",
                "pe_flops")
    #: order-free integer counters, summed across worker shards
    _INT_COUNTERS = ("messages", "message_bytes", "copies",
                     "copy_elements", "loop_points")

    def ensure_pes(self, npes: int) -> None:
        while len(self.pe_times) < npes:
            for row in self._PE_ROWS:
                getattr(self, row).append(0.0)

    @property
    def mem_loads(self) -> float:
        return sum(self.pe_mem_loads)

    @property
    def cached_loads(self) -> float:
        return sum(self.pe_cached_loads)

    @property
    def stores(self) -> float:
        return sum(self.pe_stores)

    @property
    def flops(self) -> float:
        return sum(self.pe_flops)

    @property
    def modelled_time(self) -> float:
        return max(self.pe_times, default=0.0)

    @property
    def comm_time_fraction(self) -> float:
        """Fraction of the critical PE's time spent communicating."""
        if not self.pe_times or self.modelled_time == 0:
            return 0.0
        critical = max(range(len(self.pe_times)),
                       key=lambda p: self.pe_times[p])
        return self.pe_comm_times[critical] / self.pe_times[critical]

    def add_message(self, pe: int, nbytes: int, model: CostModel) -> None:
        self.ensure_pes(pe + 1)
        t = model.msg_time(nbytes)
        self.pe_times[pe] += t
        self.pe_comm_times[pe] += t
        self.messages += 1
        self.message_bytes += nbytes

    def add_copy(self, pe: int, nelems: int, elem_size: int,
                 model: CostModel) -> None:
        self.ensure_pes(pe + 1)
        t = model.copy_time(nelems, elem_size)
        self.pe_times[pe] += t
        self.pe_copy_times[pe] += t
        self.copies += 1
        self.copy_elements += nelems

    def add_loop(self, pe: int, stats: LoopStats, model: CostModel,
                 overhead_factor: float = 1.0) -> None:
        self.ensure_pes(pe + 1)
        self.pe_times[pe] += model.loop_time(stats, overhead_factor)
        self.loop_points += stats.points
        self.pe_mem_loads[pe] += stats.mem_loads * stats.points
        self.pe_cached_loads[pe] += stats.cached_loads * stats.points
        self.pe_stores[pe] += stats.stores * stats.points
        self.pe_flops[pe] += stats.flops * stats.points

    # -- multi-process merge -------------------------------------------------
    @classmethod
    def merge_worker_reports(cls, reports: "list[CostReport]",
                             owner_of: "list[int]") -> "CostReport":
        """Merge *ownership-partial* reports from parallel workers.

        Each worker of the process-parallel backend charges only the PEs
        it owns, so its report has non-zero rows exactly on those PEs.
        The merged report takes each PE's rows from the worker that owns
        it (``owner_of[pe]`` indexes into ``reports``) and sums the
        order-free integer counters across all shards.  A worker
        charging a PE it does *not* own means the ownership gating broke
        — the workers' executions desynchronized — which is reported as
        a hard error rather than papered over.

        ``CostReport`` is a plain dataclass of floats/ints/lists, so the
        shards pickle across process boundaries unchanged.
        """
        if not reports:
            raise ValueError("merge_worker_reports needs >= 1 report")
        npes = len(owner_of)
        if any(len(r.pe_times) < npes for r in reports):
            raise ValueError("worker reports cover fewer PEs than "
                             "owner_of")
        for pe in range(npes):
            for w, rep in enumerate(reports):
                if w == owner_of[pe]:
                    continue
                bad = [row for row in cls._PE_ROWS
                       if getattr(rep, row)[pe] != 0.0]
                if bad:
                    raise ValueError(
                        f"worker {w} charged PE {pe} it does not own "
                        f"(owner is worker {owner_of[pe]}; non-zero "
                        f"rows: {', '.join(bad)}) — ownership gating "
                        f"desynchronized")
        merged = cls()
        for row in cls._PE_ROWS:
            setattr(merged, row,
                    [getattr(reports[owner_of[pe]], row)[pe]
                     for pe in range(npes)])
        for counter in cls._INT_COUNTERS:
            setattr(merged, counter,
                    sum(getattr(r, counter) for r in reports))
        return merged

    def adopt(self, other: "CostReport") -> None:
        """Overwrite this report's contents in place with ``other``'s.

        Used by the parallel backend's coordinator: the machine's report
        object is shared by reference (network, profiler frames), so the
        merged state is installed into it rather than rebinding."""
        for row in self._PE_ROWS:
            setattr(self, row, list(getattr(other, row)))
        for counter in self._INT_COUNTERS:
            setattr(self, counter, getattr(other, counter))

    def snapshot(self) -> tuple[float, ...]:
        """Cheap aggregate snapshot for before/after deltas (tracing)."""
        return (float(self.messages), float(self.message_bytes),
                float(self.copies), float(self.copy_elements),
                float(self.loop_points), self.modelled_time)

    _SNAPSHOT_KEYS = ("messages", "bytes", "copies", "copy_elements",
                      "compute_points", "modelled_time_s")

    def delta(self, before: tuple[float, ...]) -> dict[str, float]:
        """Named differences since ``before`` (a :meth:`snapshot`)."""
        now = self.snapshot()
        return {k: now[i] - before[i]
                for i, k in enumerate(self._SNAPSHOT_KEYS)}

    def summary(self) -> dict[str, float]:
        return {
            "modelled_time_s": self.modelled_time,
            "messages": float(self.messages),
            "message_bytes": float(self.message_bytes),
            "copies": float(self.copies),
            "copy_elements": float(self.copy_elements),
            "mem_loads": self.mem_loads,
            "cached_loads": self.cached_loads,
            "stores": self.stores,
            "flops": self.flops,
        }
