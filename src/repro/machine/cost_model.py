"""Analytic cost model for the simulated machine.

The reproduction cannot time a 1997 IBM SP-2, so modelled execution time
is computed from first principles with SP-2-class constants:

* interprocessor messages cost ``alpha + beta * nbytes`` (MPL/MPI linear
  model; SP-2 latency tens of microseconds, bandwidth tens of MB/s);
* intraprocessor shift copies stream whole subgrids through memory;
* subgrid loop nests are memory bound (paper section 2.2): time is
  dominated by loads that miss cache vs. loads satisfied from cache or
  registers.  The compiler's memory-optimization pass reports how many
  references per point remain memory loads after scalar replacement and
  unroll-and-jam; the model prices them.

Absolute numbers are not the point — the *structure* is: which
optimization removes which term.  ``hpf_overhead_factor`` models the
interpretive subgrid-loop overhead of early HPF compilers (the paper
measured xlhpf 10x slower than hand-written F77+MPI before any of its
optimizations; Figure 11 vs Figure 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class LoopStats:
    """Per-point memory behaviour of one subgrid loop nest.

    Produced by codegen + the memory-optimization pass; consumed by
    :meth:`CostModel.loop_time`.
    """

    points: int                 # iteration-space points executed by this PE
    statements: int = 1         # fused statement count (loop overhead)
    mem_loads: float = 0.0      # per-point loads that go to memory
    cached_loads: float = 0.0   # per-point loads from cache/registers
    stores: float = 0.0         # per-point stores
    flops: float = 0.0          # per-point arithmetic operations

    def scaled(self, factor: float) -> "LoopStats":
        return replace(self, mem_loads=self.mem_loads * factor)


@dataclass(frozen=True)
class CostModel:
    """Machine constants (seconds / bytes / elements)."""

    #: per-message software overhead (s) — HPF-era shift communication:
    #: MPL latency plus runtime buffer packing/synchronization
    alpha: float = 300e-6
    #: per-byte transfer time (s/B) — ~25 MB/s sustained through the
    #: runtime (the raw SP-2 switch did ~35 MB/s)
    beta: float = 1.0 / 25e6
    #: per-element intraprocessor copy cost (s).  A library CSHIFT makes
    #: two whole-subgrid copies (into the communication buffer and out to
    #: the destination), each read+write through memory; the pair then
    #: costs ~2.5 memory accesses per element, matching the measured
    #: weight of the offset-array optimization's first step
    copy_elem: float = 30e-9
    #: per-element memory load (cache-miss dominated streaming) (s)
    mem_load: float = 24e-9
    #: per-element cached/register load (s)
    cached_load: float = 4e-9
    #: per-element store (s)
    store: float = 10e-9
    #: per arithmetic operation (s)
    flop: float = 4e-9
    #: per-iteration-point loop bookkeeping per statement (s)
    loop_overhead: float = 2e-9
    #: multiplier applied to loop time for the xlhpf-like baseline's
    #: interpretive subgrid loops and run-time alignment checks.
    #: Calibrated so the baseline is ~10x slower than the naive
    #: Fortran77+MPI translation, the gap the paper measured between
    #: Figure 11 (xlhpf, 4.77 s) and Figure 17 ("original", 0.475 s).
    hpf_overhead_factor: float = 18.0

    # -- primitive costs ----------------------------------------------------
    def msg_time(self, nbytes: int) -> float:
        """One point-to-point message of ``nbytes``."""
        return self.alpha + self.beta * nbytes

    def copy_time(self, nelems: int, elem_size: int) -> float:
        """Intraprocessor move of ``nelems`` elements (both components of a
        CSHIFT move whole subgrids; the offset-array optimization exists to
        delete this term)."""
        scale = elem_size / 4.0
        return nelems * self.copy_elem * scale

    def loop_time(self, stats: LoopStats,
                  overhead_factor: float = 1.0) -> float:
        """A subgrid loop nest, from its per-point memory profile."""
        per_point = (stats.mem_loads * self.mem_load
                     + stats.cached_loads * self.cached_load
                     + stats.stores * self.store
                     + stats.flops * self.flop
                     + stats.statements * self.loop_overhead)
        return stats.points * per_point * overhead_factor


#: Default SP-2-class constants used by all experiments.
SP2_COST_MODEL = CostModel()


@dataclass
class CostReport:
    """Accumulated modelled costs of one program execution.

    Times are per-PE; :attr:`modelled_time` is the max over PEs of each
    PE's accumulated time (BSP-style: PEs run the same SPMD program).
    """

    pe_times: list[float] = field(default_factory=list)
    pe_comm_times: list[float] = field(default_factory=list)
    pe_copy_times: list[float] = field(default_factory=list)
    messages: int = 0
    message_bytes: int = 0
    copies: int = 0
    copy_elements: int = 0
    loop_points: int = 0
    mem_loads: float = 0.0
    cached_loads: float = 0.0
    stores: float = 0.0
    flops: float = 0.0

    def ensure_pes(self, npes: int) -> None:
        while len(self.pe_times) < npes:
            self.pe_times.append(0.0)
            self.pe_comm_times.append(0.0)
            self.pe_copy_times.append(0.0)

    @property
    def modelled_time(self) -> float:
        return max(self.pe_times, default=0.0)

    @property
    def comm_time_fraction(self) -> float:
        """Fraction of the critical PE's time spent communicating."""
        if not self.pe_times or self.modelled_time == 0:
            return 0.0
        critical = max(range(len(self.pe_times)),
                       key=lambda p: self.pe_times[p])
        return self.pe_comm_times[critical] / self.pe_times[critical]

    def add_message(self, pe: int, nbytes: int, model: CostModel) -> None:
        self.ensure_pes(pe + 1)
        t = model.msg_time(nbytes)
        self.pe_times[pe] += t
        self.pe_comm_times[pe] += t
        self.messages += 1
        self.message_bytes += nbytes

    def add_copy(self, pe: int, nelems: int, elem_size: int,
                 model: CostModel) -> None:
        self.ensure_pes(pe + 1)
        t = model.copy_time(nelems, elem_size)
        self.pe_times[pe] += t
        self.pe_copy_times[pe] += t
        self.copies += 1
        self.copy_elements += nelems

    def add_loop(self, pe: int, stats: LoopStats, model: CostModel,
                 overhead_factor: float = 1.0) -> None:
        self.ensure_pes(pe + 1)
        self.pe_times[pe] += model.loop_time(stats, overhead_factor)
        self.loop_points += stats.points
        self.mem_loads += stats.mem_loads * stats.points
        self.cached_loads += stats.cached_loads * stats.points
        self.stores += stats.stores * stats.points
        self.flops += stats.flops * stats.points

    # -- multi-process merge -------------------------------------------------
    @classmethod
    def merge_worker_reports(cls, reports: "list[CostReport]",
                             owner_of: "list[int]") -> "CostReport":
        """Merge full-replica reports from parallel workers.

        Every worker of the process-parallel backend replays the complete
        deterministic charge walk, so the replicas must agree bit-for-bit
        — divergence means the workers' executions desynchronized, which
        this helper treats as a hard error rather than papering over.
        The merged report takes each PE's time rows from the worker that
        *owns* that PE (``owner_of[pe]`` indexes into ``reports``) —
        expressing that a PE's modelled time is authoritative on its
        owner — and the order-sensitive aggregate sums from worker 0.

        ``CostReport`` is a plain dataclass of floats/ints/lists, so the
        shards pickle across process boundaries unchanged.
        """
        if not reports:
            raise ValueError("merge_worker_reports needs >= 1 report")
        first = reports[0]
        for w, rep in enumerate(reports[1:], start=1):
            if (rep.pe_times != first.pe_times
                    or rep.pe_comm_times != first.pe_comm_times
                    or rep.pe_copy_times != first.pe_copy_times
                    or rep.summary() != first.summary()):
                raise ValueError(
                    f"worker {w} cost-report replica diverged from "
                    f"worker 0: {rep.summary()} vs {first.summary()}")
        npes = len(owner_of)
        if any(len(r.pe_times) < npes for r in reports):
            raise ValueError("replica reports cover fewer PEs than "
                             "owner_of")
        merged = cls(
            pe_times=[reports[owner_of[pe]].pe_times[pe]
                      for pe in range(npes)],
            pe_comm_times=[reports[owner_of[pe]].pe_comm_times[pe]
                           for pe in range(npes)],
            pe_copy_times=[reports[owner_of[pe]].pe_copy_times[pe]
                           for pe in range(npes)],
            messages=first.messages,
            message_bytes=first.message_bytes,
            copies=first.copies,
            copy_elements=first.copy_elements,
            loop_points=first.loop_points,
            mem_loads=first.mem_loads,
            cached_loads=first.cached_loads,
            stores=first.stores,
            flops=first.flops,
        )
        return merged

    def adopt(self, other: "CostReport") -> None:
        """Overwrite this report's contents in place with ``other``'s.

        Used by the parallel backend's coordinator: the machine's report
        object is shared by reference (network, profiler frames), so the
        merged state is installed into it rather than rebinding."""
        self.pe_times = list(other.pe_times)
        self.pe_comm_times = list(other.pe_comm_times)
        self.pe_copy_times = list(other.pe_copy_times)
        self.messages = other.messages
        self.message_bytes = other.message_bytes
        self.copies = other.copies
        self.copy_elements = other.copy_elements
        self.loop_points = other.loop_points
        self.mem_loads = other.mem_loads
        self.cached_loads = other.cached_loads
        self.stores = other.stores
        self.flops = other.flops

    def snapshot(self) -> tuple[float, ...]:
        """Cheap aggregate snapshot for before/after deltas (tracing)."""
        return (float(self.messages), float(self.message_bytes),
                float(self.copies), float(self.copy_elements),
                float(self.loop_points), self.modelled_time)

    _SNAPSHOT_KEYS = ("messages", "bytes", "copies", "copy_elements",
                      "compute_points", "modelled_time_s")

    def delta(self, before: tuple[float, ...]) -> dict[str, float]:
        """Named differences since ``before`` (a :meth:`snapshot`)."""
        now = self.snapshot()
        return {k: now[i] - before[i]
                for i, k in enumerate(self._SNAPSHOT_KEYS)}

    def summary(self) -> dict[str, float]:
        return {
            "modelled_time_s": self.modelled_time,
            "messages": float(self.messages),
            "message_bytes": float(self.message_bytes),
            "copies": float(self.copies),
            "copy_elements": float(self.copy_elements),
            "mem_loads": self.mem_loads,
            "cached_loads": self.cached_loads,
            "stores": self.stores,
            "flops": self.flops,
        }
