"""Compiler driver: pipeline levels, code generation, executable plans.

The optimization levels map onto the paper's cumulative strategy
(section 5, Figure 17):

========  =====================================================
``O0``    normalized naive translation (full CSHIFTs, one loop
          per statement) — the "original" Fortran77+MPI version
``O1``    + offset arrays (section 3.1)
``O2``    + context partitioning and loop fusion (section 3.2)
``O3``    + communication unioning (section 3.3)
``O4``    + memory optimizations (section 3.4)
========  =====================================================
"""

from repro.compiler.options import OptLevel, CompilerOptions  # noqa: F401
from repro.compiler.driver import HpfCompiler, compile_hpf  # noqa: F401
from repro.plan import Plan, CompiledProgram  # noqa: F401
from repro.compiler.cache import (  # noqa: F401
    DEFAULT_CACHE, CacheStats, PersistentPlanCache, PlanCache,
    TieredPlanCache, cache_key,
)
