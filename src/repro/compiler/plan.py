"""Backwards-compatible re-export of the Plan IR.

The plan op types now live in the :mod:`repro.plan` package (ops,
verifier, passes, printer, serializer); this module keeps the historic
``repro.compiler.plan`` import path working.  New code should import
from :mod:`repro.plan`.
"""

from repro.plan.ops import (
    AllocOp, ArrayDecl, Blocks, Box, CompiledProgram, CompileReport,
    CondOp, FreeOp, FullShiftOp, LoopNestOp, NestStmt, OverlappedOp,
    OverlapShiftOp, Plan, PlanOp, ScalarAssignOp, SeqLoopOp, WhileOp,
    map_blocks, op_label, walk,
)

__all__ = [
    "AllocOp", "ArrayDecl", "Blocks", "Box", "CompiledProgram",
    "CompileReport", "CondOp", "FreeOp", "FullShiftOp", "LoopNestOp",
    "NestStmt", "OverlappedOp", "OverlapShiftOp", "Plan", "PlanOp",
    "ScalarAssignOp", "SeqLoopOp", "WhileOp", "map_blocks", "op_label",
    "walk",
]
