"""Compile-plan cache: memoized :func:`repro.compiler.compile_hpf`.

Compilation of a stencil kernel is pure — the plan depends only on the
source text, the size bindings, and the :class:`CompilerOptions` — and
experiment drivers recompile the same kernel for every machine shape and
iteration count they sweep.  :class:`PlanCache` memoizes
:class:`~repro.compiler.plan.CompiledProgram` objects under a content
hash of exactly those inputs (plus an optional machine fingerprint for
callers that specialise plans per machine), with LRU eviction, explicit
invalidation, and hit/miss/invalidation counters surfaced through the
structured tracer.

Cached programs are shared, not copied: a hit returns the same
:class:`CompiledProgram` instance the miss produced.  Plans are treated
as immutable after codegen (executors materialise per-run state on the
:class:`~repro.machine.Machine`, never on the plan), so sharing is safe;
callers that mutate a compiled program must bypass the cache.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.compiler.options import CompilerOptions
from repro.compiler.plan import CompiledProgram


@dataclass
class CacheStats:
    """Counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"hits": float(self.hits), "misses": float(self.misses),
                "invalidations": float(self.invalidations),
                "evictions": float(self.evictions),
                "hit_rate": self.hit_rate}


def cache_key(source: str, name: str,
              bindings: "dict[str, int] | None",
              options: CompilerOptions,
              machine_fingerprint: str = "") -> str:
    """Content hash identifying one compilation.

    Bindings are order-insensitive; every :class:`CompilerOptions` field
    participates via :meth:`CompilerOptions.fingerprint`, so toggling any
    knob (level, outputs, cse, ...) misses rather than aliasing.
    """
    h = hashlib.sha256()
    for part in (source, "\x00", name, "\x00",
                 repr(sorted((bindings or {}).items())), "\x00",
                 options.fingerprint(), "\x00", machine_fingerprint):
        h.update(part.encode())
    return h.hexdigest()


class PlanCache:
    """LRU cache of compiled programs keyed by :func:`cache_key`."""

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CompiledProgram]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> CompiledProgram | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: str, program: CompiledProgram) -> None:
        self._entries[key] = program
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: str | None = None) -> int:
        """Drop one entry (or all, when ``key`` is ``None``).

        Returns the number of entries dropped; each counts as one
        invalidation.
        """
        if key is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            dropped = 1 if self._entries.pop(key, None) is not None else 0
        self.stats.invalidations += dropped
        return dropped


#: Process-wide cache used when callers pass ``cache=True``.
DEFAULT_CACHE = PlanCache()
