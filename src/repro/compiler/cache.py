"""Compile-plan cache: memoized :func:`repro.compiler.compile_hpf`.

Compilation of a stencil kernel is pure — the plan depends only on the
source text, the size bindings, and the :class:`CompilerOptions` — and
experiment drivers recompile the same kernel for every machine shape and
iteration count they sweep.  :class:`PlanCache` memoizes
:class:`~repro.plan.CompiledProgram` objects under a content
hash of exactly those inputs (plus an optional machine fingerprint for
callers that specialise plans per machine), with LRU eviction, explicit
invalidation, and hit/miss/invalidation counters surfaced through the
structured tracer.

Cached programs are shared, not copied: a hit returns the same
:class:`CompiledProgram` instance the miss produced.  Plans are treated
as immutable after codegen (executors materialise per-run state on the
:class:`~repro.machine.Machine`, never on the plan), so sharing is safe;
callers that mutate a compiled program must bypass the cache.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from repro.compiler.options import CompilerOptions
# CacheStats moved to the obs layer (PR 8) so every cache — plan
# memory/disk, kernel memory/disk — shares one snapshot schema and
# publishes events to the metrics registry; re-exported here for the
# historic import path.
from repro.obs.metrics import CacheStats  # noqa: F401
from repro.plan.ops import CompiledProgram


def canonical_bindings(bindings: "dict[str, int] | None") -> dict[str, int]:
    """Normalize size bindings to plain ``int`` values.

    ``np.int64(512)`` and ``512`` denote the same compilation, but their
    ``repr`` differs, so hashing raw values makes equal requests miss.
    Bools and non-integral values are rejected outright rather than
    silently coerced: a float ``512.5`` or ``True`` binding is a caller
    bug, not an alternate spelling of an extent.
    """
    out: dict[str, int] = {}
    for name, value in (bindings or {}).items():
        if isinstance(value, bool):
            raise TypeError(
                f"binding {name}={value!r} is a bool; size bindings must "
                f"be integers")
        if isinstance(value, float) or (
                hasattr(value, "is_integer") and not isinstance(value, int)):
            # Covers python floats and numpy floating scalars alike.
            if not float(value).is_integer():
                raise TypeError(
                    f"binding {name}={value!r} is not an integral value; "
                    f"size bindings must be integers")
            out[name] = int(value)
            continue
        try:
            as_int = int(value)
        except (TypeError, ValueError):
            raise TypeError(
                f"binding {name}={value!r} ({type(value).__name__}) is "
                f"not an integer; size bindings must be integers") from None
        if as_int != value:
            raise TypeError(
                f"binding {name}={value!r} is not an integral value; "
                f"size bindings must be integers")
        out[name] = as_int
    return out


def cache_key(source: str, name: str,
              bindings: "dict[str, int] | None",
              options: CompilerOptions,
              machine_fingerprint: str = "") -> str:
    """Content hash identifying one compilation.

    Bindings are order-insensitive and canonicalized through
    :func:`canonical_bindings`, so ``np.int64(512)`` and ``512`` hash
    identically and non-integral values raise instead of silently
    producing a unique key.  Every :class:`CompilerOptions` field
    participates via :meth:`CompilerOptions.fingerprint`, so toggling any
    knob (level, outputs, cse, ...) misses rather than aliasing.
    """
    h = hashlib.sha256()
    for part in (source, "\x00", name, "\x00",
                 repr(sorted(canonical_bindings(bindings).items())), "\x00",
                 options.fingerprint(), "\x00", machine_fingerprint):
        h.update(part.encode())
    return h.hexdigest()


class PlanCache:
    """LRU cache of compiled programs keyed by :func:`cache_key`.

    Thread-safe: ``get``/``put``/``invalidate`` and the stats counters
    run under one re-entrant lock.  Both the LRU bookkeeping
    (``move_to_end``, eviction) and the counter read-modify-writes are
    multi-step mutations, so without the lock concurrent callers — e.g.
    threads sharing :data:`DEFAULT_CACHE`, or a threaded experiment
    driver compiling while the parallel backend runs — could lose
    entries or drop counter increments.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats(label="plan-memory")
        self._entries: "OrderedDict[str, CompiledProgram]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def key_for(self, source: str, name: str,
                bindings: "dict[str, int] | None",
                options: CompilerOptions) -> str:
        """The key this cache files one compilation under.

        The in-memory cache is machine-agnostic (plans are symbolic over
        the processor grid), so no machine fingerprint participates.
        """
        return cache_key(source, name, bindings, options)

    def get(self, key: str) -> CompiledProgram | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.record("miss")
                return None
            self._entries.move_to_end(key)
            self.stats.record("hit")
            return entry

    def put(self, key: str, program: CompiledProgram) -> None:
        with self._lock:
            self._entries[key] = program
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.record("eviction")

    def invalidate(self, key: str | None = None) -> int:
        """Drop one entry (or all, when ``key`` is ``None``).

        Returns the number of entries dropped; each counts as one
        invalidation.
        """
        with self._lock:
            if key is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                dropped = 1 if self._entries.pop(key, None) is not None \
                    else 0
            self.stats.record("invalidation", dropped)
            return dropped


class PersistentPlanCache:
    """On-disk plan cache: compiled programs survive the interpreter.

    Entries are the versioned JSON documents of
    :mod:`repro.plan.serialize`, one file per key under ``path``.
    Writes are atomic (temp file + ``os.replace``) so a crashed or
    concurrent writer can never leave a half-written entry; reads treat
    *any* failure — missing file, truncated JSON, a schema-version
    mismatch from an older build — as a miss, so corruption degrades to
    recompilation, never to an error or a stale plan.

    Unlike the in-memory :class:`PlanCache`, lookups key on
    ``Machine.fingerprint()`` (grid shape, memory capacity, cost-model
    constants): a persistent entry may outlive the machine configuration
    that produced it, and replaying a plan tuned for one machine on
    another must miss, not silently reuse.  Pass the :class:`Machine`
    the plan will run on (or its fingerprint string); compile-only
    callers may leave it empty.

    The store is bounded: ``max_entries`` caps the number of on-disk
    entries, with least-recently-used pruning (by file mtime — ``get``
    refreshes it) applied on ``put``.  Initialisation also sweeps
    ``*.tmp`` litter left behind by writers that died between
    ``mkstemp`` and ``os.replace``; only stale files (older than
    :data:`TMP_SWEEP_AGE` seconds) are removed so a concurrent live
    writer is never raced.  Prune and sweep counts surface in
    :attr:`stats`.
    """

    #: Seconds a ``*.tmp`` file must be untouched before the init sweep
    #: treats it as orphaned rather than a concurrent writer's scratch.
    TMP_SWEEP_AGE = 60.0

    def __init__(self, path: "str | os.PathLike[str]",
                 machine=None, machine_fingerprint: str = "",
                 max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError(
                f"cache max_entries must be >= 1, got {max_entries}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        if machine is not None:
            machine_fingerprint = machine.fingerprint()
        self.machine_fingerprint = machine_fingerprint
        self.max_entries = max_entries
        self.stats = CacheStats(label="plan-disk")
        self._sweep_tmp()

    def _sweep_tmp(self) -> int:
        """Delete orphaned ``*.tmp`` files; returns the number removed."""
        import time
        cutoff = time.time() - self.TMP_SWEEP_AGE
        swept = 0
        for tmp in self.path.glob("*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    swept += 1
            except OSError:
                pass  # raced with the owner or another sweeper
        self.stats.record("tmp_swept", swept)
        return swept

    def _prune(self) -> int:
        """Evict oldest-mtime entries beyond ``max_entries``.

        Eviction order is ``(st_mtime, name)``: on coarse-mtime
        filesystems many entries share one timestamp, and ordering by
        raw mtime alone left ties in directory-listing order — an
        arbitrary, filesystem-dependent choice that could evict the
        entry a concurrent ``get`` had just touched.  The name
        tie-break makes the victim set a pure function of the directory
        contents, so concurrent pruners also agree on it.

        Tolerates concurrent writers and sweepers: a file vanishing
        between the listing and the unlink is someone else's prune, not
        an error.
        """
        entries = []
        for f in self.path.glob("*.json"):
            try:
                entries.append((f.stat().st_mtime, f.name, f))
            except OSError:
                pass
        excess = len(entries) - self.max_entries
        pruned = 0
        if excess > 0:
            entries.sort(key=lambda item: item[:2])
            for _, _, f in entries[:excess]:
                try:
                    f.unlink()
                    pruned += 1
                except OSError:
                    pass
        self.stats.record("pruned", pruned)
        return pruned

    def key_for(self, source: str, name: str,
                bindings: "dict[str, int] | None",
                options: CompilerOptions) -> str:
        return cache_key(source, name, bindings, options,
                         self.machine_fingerprint)

    def _file(self, key: str) -> Path:
        return self.path / f"{key}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob("*.json"))

    def get(self, key: str) -> CompiledProgram | None:
        from repro.plan.serialize import program_from_json
        path = self._file(key)
        for attempt in (0, 1):
            try:
                text = path.read_text()
                program = program_from_json(text)
            except FileNotFoundError:
                break  # genuinely absent: recompile
            except Exception:
                # The file exists but did not parse.  A concurrent
                # writer's ``os.replace`` may have presented a partial
                # view (the name can briefly resolve oddly on some
                # filesystems, or an older build left junk); re-read
                # once — the rename is atomic, so the second read sees
                # either the complete new entry or the complete old one.
                if attempt == 0:
                    continue
                break  # still corrupt: degrade to recompilation
            try:
                # Refresh mtime so LRU pruning sees recency of *use*,
                # not just of writing.
                os.utime(path)
            except OSError:
                pass
            self.stats.record("hit")
            return program
        self.stats.record("miss")
        return None

    def put(self, key: str, program: CompiledProgram) -> None:
        from repro.plan.serialize import program_to_json
        text = program_to_json(program)
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(text)
            os.replace(tmp, self._file(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._prune()

    def invalidate(self, key: str | None = None) -> int:
        """Remove one entry file (or every entry when ``key`` is
        ``None``); returns the number removed."""
        files = [self._file(key)] if key is not None \
            else list(self.path.glob("*.json"))
        dropped = 0
        for f in files:
            try:
                f.unlink()
                dropped += 1
            except OSError:
                pass
        self.stats.record("invalidation", dropped)
        return dropped


class TieredPlanCache:
    """Memory-over-disk plan cache: :class:`PlanCache` in front of a
    :class:`PersistentPlanCache`, with promotion on disk hits.

    Both tiers must derive the same key, so the disk tier is required
    to be machine-agnostic (``machine_fingerprint=""`` — the service
    caches symbolic plans, which are machine-independent; executors
    bind the processor grid at run time).  ``get`` checks memory first,
    falls back to disk, and promotes disk hits into memory so repeat
    lookups stay in-process; ``put`` writes through to both tiers.

    Duck-compatible with the ``cache=`` argument of
    :func:`compile_hpf` (``key_for``/``get``/``put``/``invalidate``).
    """

    def __init__(self, memory: PlanCache,
                 disk: "PersistentPlanCache | None" = None) -> None:
        if disk is not None and disk.machine_fingerprint:
            raise ValueError(
                "TieredPlanCache needs a machine-agnostic disk tier "
                "(machine_fingerprint=''), else the tiers derive "
                "different keys for one compilation")
        self.memory = memory
        self.disk = disk
        # driver tracer spans read ``cache.stats``; the memory tier's
        # counters are the service-relevant ones (disk keeps its own)
        self.stats = memory.stats

    def key_for(self, source: str, name: str,
                bindings: "dict[str, int] | None",
                options: CompilerOptions) -> str:
        return self.memory.key_for(source, name, bindings, options)

    def get(self, key: str) -> CompiledProgram | None:
        program = self.memory.get(key)
        if program is not None:
            return program
        if self.disk is None:
            return None
        program = self.disk.get(key)
        if program is not None:
            self.memory.put(key, program)
        return program

    def put(self, key: str, program: CompiledProgram) -> None:
        self.memory.put(key, program)
        if self.disk is not None:
            self.disk.put(key, program)

    def invalidate(self, key: str | None = None) -> int:
        dropped = self.memory.invalidate(key)
        if self.disk is not None:
            dropped += self.disk.invalidate(key)
        return dropped


#: Process-wide cache used when callers pass ``cache=True``.
DEFAULT_CACHE = PlanCache()
