"""Code generation: optimized IR -> executable plan.

This stage performs the paper's scalarization and loop fusion (sections
3.2/4.5): every computation statement is converted into a subgrid loop
nest over its iteration space; adjacent congruent statements whose
dependences are all aligned are fused into one nest (context
partitioning has already placed them next to each other); the memory
optimizer's analysis annotates each nest with its per-point memory
profile.  SPMD loop-bounds reduction happens at execution time, when
each PE intersects the nest's global iteration box with its owned block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PipelineError
from repro.compiler.options import CompilerOptions
from repro.plan import (
    AllocOp, ArrayDecl, Box, CondOp, FreeOp, FullShiftOp, LoopNestOp,
    NestStmt, OverlapShiftOp, Plan, PlanOp, ScalarAssignOp, SeqLoopOp,
    WhileOp,
)
from repro.ir.dependence import build_ddg
from repro.ir.linexpr import LinExpr
from repro.ir.nodes import (
    Allocate, ArrayAssign, ArrayRef, BinOp, Compare, Const, CShift,
    Deallocate, DoLoop, EOShift, Expr, If, Intrinsic, OffsetRef,
    OverlapShift, Reduction, ScalarAssign, ScalarRef, Stmt, UnaryOp,
    section_offsets,
)
from repro.ir.nodes import DoWhile
from repro.ir.program import Program
from repro.passes.context_partition import congruence_class
from repro.passes.memopt import analyze_nest


@dataclass
class _HaloNeeds:
    """Accumulates per-array, per-dimension overlap-area requirements."""

    needs: dict[str, list[list[int]]] = field(default_factory=dict)

    def _entry(self, name: str, rank: int) -> list[list[int]]:
        return self.needs.setdefault(name, [[0, 0] for _ in range(rank)])

    def offsets(self, name: str, rank: int, offs: tuple[int, ...]) -> None:
        e = self._entry(name, rank)
        for d, o in enumerate(offs):
            if o < 0:
                e[d][0] = max(e[d][0], -o)
            elif o > 0:
                e[d][1] = max(e[d][1], o)

    def shift(self, name: str, rank: int, shift: int, dim: int) -> None:
        e = self._entry(name, rank)
        d = dim - 1
        if shift > 0:
            e[d][1] = max(e[d][1], shift)
        else:
            e[d][0] = max(e[d][0], -shift)

    def rsd(self, name: str, rank: int, rsd) -> None:
        e = self._entry(name, rank)
        for d, rd in enumerate(rsd.dims):
            if rd is None:
                continue
            e[d][0] = max(e[d][0], rd.lo)
            e[d][1] = max(e[d][1], rd.hi)

    def halo_of(self, name: str, rank: int) -> tuple[tuple[int, int], ...]:
        e = self.needs.get(name)
        if e is None:
            return tuple((0, 0) for _ in range(rank))
        return tuple((lo, hi) for lo, hi in e)


class CodeGenerator:
    """Lowers one optimized program into a :class:`Plan`."""

    def __init__(self, program: Program, options: CompilerOptions) -> None:
        self.program = program
        self.options = options
        self.halo = _HaloNeeds()
        self.fused_statements = 0
        self.loop_nests = 0

    # -- public -----------------------------------------------------------
    def generate(self) -> Plan:
        ops = self._lower_block(self.program.body)
        if self.options.overlap_comm:
            ops = self._apply_comm_overlap(ops)
        arrays = {}
        allocated_later: set[str] = set()
        for op in _walk(ops):
            if isinstance(op, AllocOp):
                allocated_later.update(op.names)
        live = self._referenced_names(ops)
        if self.options.outputs is not None:
            live |= set(self.options.outputs)
        else:
            live |= {name for name, sym in
                     self.program.symbols.arrays.items()
                     if not sym.is_temporary}
        for name, sym in self.program.symbols.arrays.items():
            if name not in live:
                # paper section 4.2: arrays with no remaining uses need
                # not be allocated at all (RIP/RIN after offset arrays)
                continue
            arrays[name] = ArrayDecl(
                name=name,
                shape=sym.type.shape,
                distribution=sym.distribution,
                dtype=np.dtype(sym.type.dtype),
                halo=self.halo.halo_of(name, sym.type.rank),
                is_temporary=sym.is_temporary,
            )
        entry = tuple(name for name in arrays if name not in allocated_later)
        scalar_names = tuple(self.program.symbols.scalars)
        outputs = None
        if self.options.outputs is not None:
            outputs = tuple(sorted(n for n in self.options.outputs
                                   if n in arrays))
        return Plan(arrays=arrays, params=dict(self.program.symbols.params),
                    scalar_names=scalar_names, ops=ops, entry_arrays=entry,
                    processors=self.program.processors, outputs=outputs)

    def _referenced_names(self, ops: list[PlanOp]) -> set[str]:
        names: set[str] = set()
        for op in _walk(ops):
            if isinstance(op, (AllocOp, FreeOp)):
                names.update(op.names)
            elif isinstance(op, OverlapShiftOp):
                names.add(op.array)
            elif isinstance(op, FullShiftOp):
                names.add(op.dst)
                names.add(op.src)
            elif isinstance(op, LoopNestOp):
                for stmt in op.statements:
                    names.add(stmt.lhs)
                    exprs = [stmt.rhs] + ([stmt.mask]
                                          if stmt.mask is not None else [])
                    for expr in exprs:
                        for node in expr.walk():
                            if isinstance(node, OffsetRef):
                                names.add(node.name)
            elif isinstance(op, ScalarAssignOp):
                for node in op.rhs.walk():
                    if isinstance(node, OffsetRef):
                        names.add(node.name)
            elif isinstance(op, (CondOp, WhileOp)):
                for node in op.cond.walk():
                    if isinstance(node, OffsetRef):
                        names.add(node.name)
        return names

    # -- communication/computation overlap ------------------------------------
    def _apply_comm_overlap(self, ops: list[PlanOp]) -> list[PlanOp]:
        """Wrap [OVERLAP_SHIFT..., nest] runs into OverlappedOps when the
        shifts feed the nest, so the executor can charge
        max(comm, interior) + boundary (the classic follow-on
        optimization; enabled by ``overlap_comm``)."""
        from repro.plan import OverlappedOp
        out: list[PlanOp] = []
        pending: list[OverlapShiftOp] = []
        for op in ops:
            if isinstance(op, OverlapShiftOp):
                pending.append(op)
                continue
            if isinstance(op, LoopNestOp) and pending:
                read = set()
                written = {stmt.lhs for stmt in op.statements}
                splittable = True
                for stmt in op.statements:
                    exprs = [stmt.rhs] + ([stmt.mask]
                                          if stmt.mask is not None else [])
                    for expr in exprs:
                        for node in expr.walk():
                            if isinstance(node, OffsetRef):
                                read.add(node.name)
                                # Fortran evaluates the whole RHS before
                                # storing; splitting the iteration space
                                # would let the boundary phase read
                                # values the interior phase already
                                # overwrote, so a displaced read of a
                                # nest-written array blocks the overlap
                                if node.name in written and \
                                        any(node.offsets):
                                    splittable = False
                if splittable and all(s.array in read for s in pending):
                    out.append(OverlappedOp(list(pending), op))
                    pending.clear()
                    continue
            out.extend(pending)
            pending.clear()
            if isinstance(op, SeqLoopOp):
                op.body = self._apply_comm_overlap(op.body)
            elif isinstance(op, CondOp):
                op.then_ops = self._apply_comm_overlap(op.then_ops)
                op.else_ops = self._apply_comm_overlap(op.else_ops)
            else:
                from repro.plan import WhileOp
                if isinstance(op, WhileOp):
                    op.body = self._apply_comm_overlap(op.body)
            out.append(op)
        out.extend(pending)
        return out

    # -- lowering -----------------------------------------------------------
    def _lower_block(self, body: list[Stmt]) -> list[PlanOp]:
        ops: list[PlanOp] = []
        run: list[ArrayAssign] = []

        def flush() -> None:
            if run:
                ops.extend(self._lower_compute_run(list(run)))
                run.clear()

        for stmt in body:
            if isinstance(stmt, ArrayAssign):
                rhs = stmt.rhs
                if isinstance(rhs, (CShift, EOShift)):
                    flush()
                    ops.append(self._lower_full_shift(stmt, rhs))
                else:
                    run.append(stmt)
                continue
            flush()
            if isinstance(stmt, OverlapShift):
                ops.append(self._lower_overlap(stmt))
            elif isinstance(stmt, ScalarAssign):
                ops.append(ScalarAssignOp(
                    stmt.name, self._scalarize_reductions(stmt.rhs)))
            elif isinstance(stmt, Allocate):
                ops.append(AllocOp(stmt.names))
            elif isinstance(stmt, Deallocate):
                ops.append(FreeOp(stmt.names))
            elif isinstance(stmt, If):
                ops.append(CondOp(self._scalarize_reductions(stmt.cond),
                                  self._lower_block(stmt.then_body),
                                  self._lower_block(stmt.else_body)))
            elif isinstance(stmt, DoLoop):
                ops.append(SeqLoopOp(stmt.var, stmt.lo, stmt.hi,
                                     self._lower_block(stmt.body)))
            elif isinstance(stmt, DoWhile):
                ops.append(WhileOp(
                    self._scalarize_reductions(stmt.cond),
                    self._lower_block(stmt.body)))
            else:
                raise PipelineError(
                    f"codegen cannot lower {type(stmt).__name__}")
        flush()
        return ops

    def _lower_full_shift(self, stmt: ArrayAssign, rhs) -> FullShiftOp:
        if stmt.lhs.section is not None or not \
                isinstance(rhs.array, ArrayRef) or rhs.array.section is not None:
            raise PipelineError(
                f"s{stmt.sid}: shift statement not in normal form")
        src = rhs.array.name
        # no overlap area needed on src: the runtime full shift goes
        # through a private communication buffer
        boundary = rhs.boundary if isinstance(rhs, EOShift) else None
        return FullShiftOp(stmt.lhs.name, src, rhs.shift, rhs.dim,
                           boundary=boundary)

    def _lower_overlap(self, stmt: OverlapShift) -> OverlapShiftOp:
        rank = self.program.symbols.array(stmt.array).type.rank
        self.halo.shift(stmt.array, rank, stmt.shift, stmt.dim)
        if stmt.rsd is not None:
            self.halo.rsd(stmt.array, rank, stmt.rsd)
        if stmt.base_offsets:
            self.halo.offsets(stmt.array, rank, stmt.base_offsets)
        return OverlapShiftOp(stmt.array, stmt.shift, stmt.dim,
                              rsd=stmt.rsd, base_offsets=stmt.base_offsets,
                              boundary=stmt.boundary)

    # -- computation runs ----------------------------------------------------
    def _lower_compute_run(self, run: list[ArrayAssign]) -> list[PlanOp]:
        if not self.options.level.fuse_loops or len(run) == 1:
            return [self._make_nest([s]) for s in run]
        groups = self._fusible_groups(run)
        return [self._make_nest(g) for g in groups]

    def _fusible_groups(self,
                        run: list[ArrayAssign]) -> list[list[ArrayAssign]]:
        """Greedy maximal fusion of an adjacent run: extend the current
        group while spaces match, no dependence into the group is fusion
        preventing, and the over-fusion limit is respected."""
        edges = build_ddg(list(run), self.program)
        bad_pairs = {(e.src, e.dst) for e in edges if e.fusion_preventing}
        classes = [congruence_class(s, self.program) for s in run]
        limit = self.options.fusion_limit or len(run)
        groups: list[list[int]] = []
        current: list[int] = []
        for i in range(len(run)):
            ok = bool(current)
            if ok and classes[i] != classes[current[0]]:
                ok = False
            if ok and len(current) >= limit:
                ok = False
            if ok and any((j, i) in bad_pairs for j in current):
                ok = False
            if ok:
                current.append(i)
            else:
                if current:
                    groups.append(current)
                current = [i]
        if current:
            groups.append(current)
        return [[run[i] for i in g] for g in groups]

    def _make_nest(self, stmts: list[ArrayAssign]) -> LoopNestOp:
        space = self._space_of(stmts[0])
        nest_stmts = [NestStmt(s.lhs.name,
                               self._scalarize_expr(s.rhs, s),
                               mask=None if s.mask is None else
                               self._scalarize_expr(s.mask, s))
                      for s in stmts]
        rank_of = lambda name: self.program.symbols.array(name).type.rank
        stats = analyze_nest(nest_stmts, rank_of,
                             memopt=self.options.level.memopt,
                             unroll_jam=self.options.unroll_jam)
        self.loop_nests += 1
        if len(stmts) > 1:
            self.fused_statements += len(stmts)
        return LoopNestOp(
            statements=nest_stmts,
            space=space,
            stats=stats,
            fused=len(stmts) > 1,
            memopt=self.options.level.memopt,
            unroll_jam=self.options.unroll_jam
            if self.options.level.memopt else 1,
            # per-compilation ordinal, not the global statement sid:
            # plan documents must be byte-stable across process history
            label=f"nest@{self.loop_nests}:{stmts[0].lhs.name}",
        )

    def _scalarize_reductions(self, expr: Expr) -> Expr:
        """Scalarize reduction operands in a scalar expression: whole
        array references become offset-0 references iterated over the
        owned subgrid at run time."""
        if isinstance(expr, Reduction):
            return Reduction(expr.op, self._scalarize_whole(expr.arg))
        if isinstance(expr, BinOp):
            return BinOp(expr.op, self._scalarize_reductions(expr.left),
                         self._scalarize_reductions(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op,
                           self._scalarize_reductions(expr.operand))
        if isinstance(expr, Intrinsic):
            return Intrinsic(expr.name, tuple(
                self._scalarize_reductions(a) for a in expr.args))
        if isinstance(expr, Compare):
            return Compare(expr.op,
                           self._scalarize_reductions(expr.left),
                           self._scalarize_reductions(expr.right))
        return expr

    def _scalarize_whole(self, expr: Expr) -> Expr:
        """Scalarize a whole-array elementwise expression (a reduction
        operand)."""
        if isinstance(expr, ArrayRef):
            if expr.section is not None:
                raise PipelineError(
                    "sectioned reduction operands escaped normalization")
            rank = self.program.symbols.array(expr.name).type.rank
            self.halo.offsets(expr.name, rank,
                              tuple(0 for _ in range(rank)))
            return OffsetRef(expr.name, tuple(0 for _ in range(rank)))
        if isinstance(expr, OffsetRef):
            rank = self.program.symbols.array(expr.name).type.rank
            self.halo.offsets(expr.name, rank, expr.offsets)
            return expr
        if isinstance(expr, BinOp):
            return BinOp(expr.op, self._scalarize_whole(expr.left),
                         self._scalarize_whole(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self._scalarize_whole(expr.operand))
        if isinstance(expr, Intrinsic):
            return Intrinsic(expr.name, tuple(
                self._scalarize_whole(a) for a in expr.args))
        if isinstance(expr, Compare):
            return Compare(expr.op, self._scalarize_whole(expr.left),
                           self._scalarize_whole(expr.right))
        if isinstance(expr, (Const, ScalarRef)):
            return expr
        raise PipelineError(
            f"{type(expr).__name__} in a reduction operand escaped "
            f"normalization")

    def _space_of(self, stmt: ArrayAssign) -> Box:
        sym = self.program.symbols.array(stmt.lhs.name)
        if stmt.lhs.section is None:
            return tuple((LinExpr(1), LinExpr(n)) for n in sym.type.shape)
        return tuple((t.lo, t.hi) for t in stmt.lhs.section)

    def _scalarize_expr(self, expr: Expr, stmt: ArrayAssign) -> Expr:
        """Replace aligned section references by offset-0 references; the
        iteration point supplies the indexing."""
        if isinstance(expr, (Const, ScalarRef, OffsetRef)):
            if isinstance(expr, OffsetRef):
                rank = self.program.symbols.array(expr.name).type.rank
                self.halo.offsets(expr.name, rank, expr.offsets)
            return expr
        if isinstance(expr, ArrayRef):
            rank = self.program.symbols.array(expr.name).type.rank
            if expr.section is None:
                return OffsetRef(expr.name, tuple(0 for _ in range(rank)))
            if stmt.lhs.section is None:
                raise PipelineError(
                    f"s{stmt.sid}: sectioned operand in whole-array "
                    f"statement escaped normalization")
            offs = section_offsets(expr.section, stmt.lhs.section)
            if offs is None:
                raise PipelineError(
                    f"s{stmt.sid}: unaligned operand {expr} escaped "
                    f"normalization")
            self.halo.offsets(expr.name, rank, offs)
            return OffsetRef(expr.name, offs)
        if isinstance(expr, BinOp):
            return BinOp(expr.op,
                         self._scalarize_expr(expr.left, stmt),
                         self._scalarize_expr(expr.right, stmt))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op,
                           self._scalarize_expr(expr.operand, stmt))
        if isinstance(expr, Intrinsic):
            return Intrinsic(expr.name, tuple(
                self._scalarize_expr(a, stmt) for a in expr.args))
        if isinstance(expr, Compare):
            return Compare(expr.op,
                           self._scalarize_expr(expr.left, stmt),
                           self._scalarize_expr(expr.right, stmt))
        raise PipelineError(
            f"s{stmt.sid}: {type(expr).__name__} escaped normalization")


def _walk(ops: list[PlanOp]):
    from repro.plan import OverlappedOp
    for op in ops:
        yield op
        if isinstance(op, (SeqLoopOp, WhileOp)):
            yield from _walk(op.body)
        elif isinstance(op, CondOp):
            yield from _walk(op.then_ops)
            yield from _walk(op.else_ops)
        elif isinstance(op, OverlappedOp):
            yield from _walk(op.comm_ops)
            yield op.nest
