"""Optimization levels and compiler options."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OptLevel(enum.IntEnum):
    """Cumulative optimization levels matching the paper's Figure 17."""

    O0 = 0  # normalized naive translation ("original")
    O1 = 1  # + offset arrays
    O2 = 2  # + context partitioning / loop fusion
    O3 = 3  # + communication unioning
    O4 = 4  # + memory optimizations

    @property
    def offset_arrays(self) -> bool:
        return self >= OptLevel.O1

    @property
    def context_partition(self) -> bool:
        return self >= OptLevel.O2

    @property
    def fuse_loops(self) -> bool:
        return self >= OptLevel.O2

    @property
    def comm_union(self) -> bool:
        return self >= OptLevel.O3

    @property
    def memopt(self) -> bool:
        return self >= OptLevel.O4

    @staticmethod
    def parse(value: "OptLevel | int | str") -> "OptLevel":
        if isinstance(value, OptLevel):
            return value
        if isinstance(value, int):
            return OptLevel(value)
        return OptLevel[value.upper()]


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs of the compilation pipeline.

    ``outputs`` lists arrays live out of the routine (paper section 4.2:
    dead temporaries like RIP/RIN need not be materialised).  ``None``
    keeps every user array live — safe but pessimistic.

    ``max_offset`` is the offset-array "small constant" criterion and the
    overlap-area width bound.

    ``unroll_jam`` is the outer-loop unroll factor used by the memory
    optimizer's analysis (paper section 3.4 / the CM-2 "multi-stencil
    swath" analogue).

    ``fusion_limit`` caps statements per fused nest to guard against
    over-fusion (0 = unlimited); an ablation knob.

    ``pooled_temps`` selects the normalizer's temporary policy
    (pooled reuse across statements vs. one per shift).

    ``hpf_overhead`` multiplies subgrid-loop cost to model an early HPF
    compiler's interpretive node code; used only by the xlhpf-like
    baseline.

    ``plan_passes`` enables the post-codegen plan-level optimizations
    (:mod:`repro.plan.passes`): op scheduling, redundant-shift
    coalescing, dead alloc elimination.  Off by default so the emitted
    plans keep matching the paper's figure-for-figure op sequences.

    ``verify_plan`` runs the plan verifier (:mod:`repro.plan.verify`)
    after codegen (and after every plan pass when those are enabled);
    on by default — it is a pure check.
    """

    level: OptLevel = OptLevel.O4
    outputs: frozenset[str] | None = None
    max_offset: int = 4
    unroll_jam: int = 2
    fusion_limit: int = 0
    pooled_temps: bool = True
    cse: bool = False
    hoist_comm: bool = False
    overlap_comm: bool = False
    hpf_overhead: bool = False
    keep_trace: bool = False
    plan_passes: bool = False
    verify_plan: bool = True

    @staticmethod
    def make(level: "OptLevel | int | str" = OptLevel.O4,
             outputs: "set[str] | frozenset[str] | None" = None,
             **kwargs) -> "CompilerOptions":
        lv = OptLevel.parse(level)
        outs = frozenset(n.upper() for n in outputs) if outputs else None
        return CompilerOptions(level=lv, outputs=outs, **kwargs)

    def fingerprint(self) -> str:
        """Canonical string covering every field, for plan-cache keys.

        Two options objects fingerprint equally iff compilation behaves
        identically under them; unordered fields (``outputs``) are
        sorted so set construction order cannot alias.
        """
        outs = ",".join(sorted(self.outputs)) if self.outputs else "*"
        return (f"level={self.level.name};outputs={outs};"
                f"max_offset={self.max_offset};"
                f"unroll_jam={self.unroll_jam};"
                f"fusion_limit={self.fusion_limit};"
                f"pooled_temps={self.pooled_temps};cse={self.cse};"
                f"hoist_comm={self.hoist_comm};"
                f"overlap_comm={self.overlap_comm};"
                f"hpf_overhead={self.hpf_overhead};"
                f"keep_trace={self.keep_trace};"
                f"plan_passes={self.plan_passes};"
                f"verify_plan={self.verify_plan}")
