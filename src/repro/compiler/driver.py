"""The compiler driver: parse -> pass pipeline -> codegen."""

from __future__ import annotations

import copy
from contextlib import contextmanager
from time import perf_counter

from repro.compiler.codegen import CodeGenerator
from repro.compiler.options import CompilerOptions, OptLevel
from repro.plan import CompiledProgram, CompileReport, FullShiftOp, \
    LoopNestOp, OverlapShiftOp
from repro.frontend.parser import parse_program
from repro.ir.program import Program
from repro.passes.comm_union import CommUnionPass
from repro.passes.context_partition import ContextPartitionPass
from repro.passes.normalize import NormalizePass
from repro.passes.offset_arrays import OffsetArrayPass
from repro.passes.pass_manager import Pass, PassManager, PassTrace


class HpfCompiler:
    """Compiles HPF programs with the paper's optimization strategy.

    >>> from repro.compiler import HpfCompiler
    >>> from repro import kernels
    >>> cc = HpfCompiler.at_level("O4", outputs={"T"})
    >>> prog = cc.compile(kernels.PURDUE_PROBLEM9, bindings={"N": 64})
    >>> prog.report.overlap_shifts
    4
    """

    def __init__(self, options: CompilerOptions | None = None) -> None:
        self.options = options or CompilerOptions()

    @staticmethod
    def at_level(level: "OptLevel | int | str",
                 outputs: set[str] | None = None,
                 **kwargs) -> "HpfCompiler":
        return HpfCompiler(CompilerOptions.make(level, outputs, **kwargs))

    # -- pipeline construction ------------------------------------------------
    def build_passes(self) -> list[Pass]:
        opts = self.options
        passes: list[Pass] = [
            NormalizePass(pooled_temps=opts.pooled_temps, cse=opts.cse)]
        if opts.level.offset_arrays:
            passes.append(OffsetArrayPass(
                max_offset=opts.max_offset,
                outputs=set(opts.outputs) if opts.outputs else None))
        if opts.level.context_partition:
            passes.append(ContextPartitionPass())
        if opts.level.comm_union:
            passes.append(CommUnionPass())
        if opts.hoist_comm:
            from repro.passes.licm import CommMotionPass
            passes.append(CommMotionPass())
        return passes

    # -- compilation --------------------------------------------------------
    def compile(self, source: "str | Program",
                bindings: dict[str, int] | None = None,
                name: str = "MAIN",
                tracer=None,
                cache=None) -> CompiledProgram:
        """Compile HPF source text (or an already-parsed program, which is
        deep-copied, not mutated) into an executable plan.

        ``tracer`` (a :class:`repro.obs.Tracer`) receives a ``compile``
        span with children for parsing, every pass, coverage
        verification, and codegen.

        ``cache`` memoizes the result: a
        :class:`~repro.compiler.cache.PlanCache` instance, or ``True``
        for the process-wide default cache.  Only string sources are
        cached (parsed :class:`Program` objects have no stable content
        hash); a hit returns the previously compiled program — shared,
        not copied — and emits a ``plan-cache`` tracer span carrying the
        cache counters.
        """
        cache = _resolve_cache(cache)
        key = None
        if cache is not None and isinstance(source, str):
            from repro.compiler.cache import cache_key
            # caches that specialise per machine (PersistentPlanCache)
            # supply their own key derivation
            key_for = getattr(cache, "key_for", None)
            key = key_for(source, name, bindings, self.options) \
                if key_for is not None \
                else cache_key(source, name, bindings, self.options)
            hit = cache.get(key)
            if tracer is not None:
                from repro.obs.tracer import coalesce
                tr = coalesce(tracer)
                if tr.enabled:
                    with tr.span("plan-cache", kind="compile",
                                 result="hit" if hit is not None
                                 else "miss") as sp:
                        for stat, value in \
                                cache.stats.as_dict().items():
                            sp.gauge(f"cache_{stat}", value)
            if hit is not None:
                return hit
        compiled = self._compile_uncached(source, bindings, name, tracer)
        if key is not None:
            cache.put(key, compiled)
        return compiled

    def _compile_uncached(self, source: "str | Program",
                          bindings: dict[str, int] | None,
                          name: str, tracer) -> CompiledProgram:
        from repro.obs import metrics as _metrics
        from repro.obs.tracer import coalesce
        tracer = coalesce(tracer)
        registry = _metrics.get_registry()
        phase_hist = None
        if registry.enabled:
            phase_hist = registry.histogram(
                "repro_compile_phase_seconds",
                help="Wall-clock seconds per compiler driver phase.",
                deterministic=False)
        t_total = perf_counter() if phase_hist is not None else 0.0
        with tracer.span("compile", kind="compile",
                         level=self.options.level.name) as span:
            with tracer.span("parse", kind="frontend"), \
                    _timed(phase_hist, "parse"):
                if isinstance(source, Program):
                    program = copy.deepcopy(source)
                else:
                    program = parse_program(source, bindings=bindings,
                                            name=name)
            trace = PassTrace() if self.options.keep_trace else None
            passes = self.build_passes()
            with _timed(phase_hist, "passes"):
                PassManager(passes, trace, tracer=tracer).run(program)
            with tracer.span("verify-coverage", kind="analysis"), \
                    _timed(phase_hist, "verify-coverage"):
                self._verify_coverage(program)
            with tracer.span("codegen", kind="codegen") as cg_span, \
                    _timed(phase_hist, "codegen"):
                gen = CodeGenerator(program, self.options)
                plan = gen.generate()
                cg_span.gauge("statements_fused", gen.fused_statements)
            if self.options.verify_plan:
                from repro.plan import assert_plan_valid
                with tracer.span("verify-plan", kind="analysis"), \
                        _timed(phase_hist, "verify-plan"):
                    assert_plan_valid(plan, phase="codegen")
            plan_pass_stats = None
            if self.options.plan_passes:
                from repro.plan import PlanPassManager
                manager = PlanPassManager(
                    verify=self.options.verify_plan, tracer=tracer)
                with _timed(phase_hist, "plan-passes"):
                    plan, plan_pass_stats = manager.run(plan)
            report = self._build_report(program, plan, passes, gen)
            if plan_pass_stats is not None:
                report.pass_stats["plan-passes"] = plan_pass_stats
            if tracer.enabled:
                span.attrs["source"] = program.name
                span.gauge("overlap_shifts", report.overlap_shifts)
                span.gauge("full_shifts", report.full_shifts)
                span.gauge("loop_nests", report.loop_nests)
                span.gauge("temporaries", report.temporaries)
                span.gauge("copies_inserted", report.copies_inserted)
        if registry.enabled:
            phase_hist.observe(perf_counter() - t_total, phase="total")
            registry.counter(
                "repro_compiles_total",
                help="Completed (uncached) compilations by level.",
            ).inc(level=self.options.level.name)
            ops = registry.counter(
                "repro_compile_plan_ops_total",
                help="Plan ops emitted by completed compilations.")
            ops.inc(report.overlap_shifts, kind="overlap_shift")
            ops.inc(report.full_shifts, kind="full_shift")
            ops.inc(report.loop_nests, kind="loop_nest")
        return CompiledProgram(plan=plan, report=report,
                               source_name=program.name, trace=trace)

    def _verify_coverage(self, program: Program) -> None:
        """Safety net: the transformed IR must not contain an offset
        reference whose overlap cells no shift makes resident."""
        from repro.analysis.verify_offsets import verify_offset_coverage
        from repro.errors import PipelineError
        problems = verify_offset_coverage(program)
        if problems:
            detail = "\n".join(str(p) for p in problems[:5])
            raise PipelineError(
                f"offset-array coverage verification failed "
                f"({len(problems)} problem(s)):\n{detail}")

    def _build_report(self, program: Program, plan, passes: list[Pass],
                      gen: CodeGenerator) -> CompileReport:
        report = CompileReport(level=self.options.level.name)
        report.overlap_shifts = plan.count_ops(OverlapShiftOp)
        report.full_shifts = plan.count_ops(FullShiftOp)
        report.loop_nests = plan.count_ops(LoopNestOp)
        report.fused_statements = gen.fused_statements
        temps = [d for d in plan.arrays.values() if d.is_temporary]
        report.temporaries = len(temps)
        report.temp_bytes_global = sum(
            int(d.dtype.itemsize) * _prod(d.shape) for d in temps)
        for p in passes:
            stats = getattr(p, "stats", None)
            if stats is not None:
                report.pass_stats[p.name] = stats
        if self.options.hpf_overhead:
            report.pass_stats["hpf_overhead"] = True
        for p in passes:
            if isinstance(p, OffsetArrayPass):
                report.copies_inserted = p.stats.copies_inserted
        return report


@contextmanager
def _timed(hist, phase: str):
    """Observe a phase's wall time on ``hist`` (no-op when ``None``)."""
    if hist is None:
        yield
        return
    t0 = perf_counter()
    try:
        yield
    finally:
        hist.observe(perf_counter() - t0, phase=phase)


def _prod(shape: tuple[int, ...]) -> int:
    n = 1
    for e in shape:
        n *= e
    return n


def _resolve_cache(cache):
    """``None``/``False`` -> no caching; ``True`` -> process default;
    anything else is used as a :class:`PlanCache` directly."""
    if cache is None or cache is False:
        return None
    if cache is True:
        from repro.compiler.cache import DEFAULT_CACHE
        return DEFAULT_CACHE
    return cache


def compile_hpf(source: "str | Program",
                bindings: dict[str, int] | None = None,
                level: "OptLevel | int | str" = OptLevel.O4,
                outputs: set[str] | None = None,
                tracer=None,
                cache=None,
                **options) -> CompiledProgram:
    """One-call compilation at an optimization level.

    Parameters
    ----------
    source:
        HPF source text or a parsed :class:`~repro.ir.program.Program`.
    bindings:
        Size parameters, e.g. ``{"N": 512}``.
    level:
        ``"O0"`` .. ``"O4"`` (see :class:`~repro.compiler.OptLevel`).
    outputs:
        Names of arrays live out of the routine; lets the offset-array
        optimization drop dead temporaries (paper section 4.2).
    tracer:
        Optional :class:`repro.obs.Tracer` recording compile-time spans.
    cache:
        Optional plan cache — a
        :class:`~repro.compiler.cache.PlanCache`, or ``True`` for the
        process-wide default.  See :meth:`HpfCompiler.compile`.
    options:
        Remaining :class:`~repro.compiler.CompilerOptions` fields.
    """
    cc = HpfCompiler(CompilerOptions.make(level, outputs, **options))
    return cc.compile(source, bindings=bindings, tracer=tracer, cache=cache)
