"""Context partitioning (paper section 3.2).

Partitions the statements of a basic block into groups of *congruent*
array statements, communication operations, and scalar statements, using
the Kennedy-McKinley typed-fusion algorithm over the (acyclic) data
dependence graph.  The reordered program places each group contiguously:

* congruent computation statements become adjacent, so scalarization can
  fuse them into a single subgrid loop nest without over-fusing;
* communication operations become adjacent, handing communication
  unioning a whole group to minimise at once.

Two array statements are congruent when they operate on identically
distributed arrays and cover the same iteration space (the paper's
definition, footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.ir.dependence import DepEdge, build_ddg, predecessors
from repro.ir.nodes import (
    Allocate, ArrayAssign, ArrayRef, Deallocate, DoLoop, DoWhile, If,
    OffsetRef, OverlapShift, ScalarAssign, Stmt,
)
from repro.ir.program import Program
from repro.passes.pass_manager import Pass


def congruence_class(stmt: Stmt, program: Program) -> Hashable:
    """The 'type' of a statement for typed fusion.

    Computation statements are keyed by iteration space and operand
    distributions; all communication calls share one class; scalar and
    memory-management statements get their own classes.
    """
    if isinstance(stmt, OverlapShift):
        return ("comm",)
    if isinstance(stmt, ScalarAssign):
        return ("scalar",)
    if isinstance(stmt, (Allocate, Deallocate)):
        return ("mem",)
    if isinstance(stmt, ArrayAssign):
        sym = program.symbols.array(stmt.lhs.name)
        if stmt.lhs.section is None:
            space: Hashable = ("whole", sym.type.shape)
        else:
            space = tuple(str(t) for t in stmt.lhs.section)
        dists = {str(sym.distribution)}
        exprs = [stmt.rhs] + ([stmt.mask] if stmt.mask is not None else [])
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, (ArrayRef, OffsetRef)):
                    dists.add(
                        str(program.symbols.array(node.name).distribution))
        return ("compute", space, tuple(sorted(dists)))
    return ("other", type(stmt).__name__)


@dataclass
class TypedFusionResult:
    """Groups in execution order; each group lists statement indices of
    the original block, in original textual order."""

    groups: list[list[int]]
    group_class: list[Hashable]
    edges: list[DepEdge] = field(default_factory=list)

    def group_of(self, stmt_index: int) -> int:
        for g, members in enumerate(self.groups):
            if stmt_index in members:
                return g
        raise KeyError(stmt_index)


def typed_fusion(statements: list[Stmt], program: Program,
                 edges: list[DepEdge] | None = None) -> TypedFusionResult:
    """Greedy typed fusion with a total order on groups.

    Processing statements in (topological = textual) order, a statement
    may join an existing group ``g`` of its own class provided every
    dependence predecessor sits in a group placed no later than ``g`` —
    strictly earlier when the edge crosses classes or is fusion
    preventing.  The total order makes bad-path transitivity automatic:
    a bad edge into a later group position blocks fusion with any
    earlier same-class group beyond it.
    """
    if edges is None:
        edges = build_ddg(statements, program)
    preds = predecessors(edges, len(statements))
    classes = [congruence_class(s, program) for s in statements]

    groups: list[list[int]] = []
    group_class: list[Hashable] = []
    placement: list[int] = []

    for i, stmt in enumerate(statements):
        minpos = 0
        for e in preds[i]:
            p_pos = placement[e.src]
            same = classes[e.src] == classes[i]
            if same and not e.fusion_preventing:
                minpos = max(minpos, p_pos)
            else:
                minpos = max(minpos, p_pos + 1)
        chosen = None
        for g in range(minpos, len(groups)):
            if group_class[g] == classes[i]:
                chosen = g
                break
        if chosen is None:
            groups.append([])
            group_class.append(classes[i])
            chosen = len(groups) - 1
        groups[chosen].append(i)
        placement.append(chosen)

    return TypedFusionResult(groups, group_class, edges)


class ContextPartitionPass(Pass):
    """Reorder straight-line regions into contiguous congruence groups."""

    name = "context-partition"

    def __init__(self) -> None:
        self.last_result: TypedFusionResult | None = None

    def run(self, program: Program) -> None:
        program.body = self._partition_block(program.body, program)

    def _partition_block(self, body: list[Stmt],
                         program: Program) -> list[Stmt]:
        out: list[Stmt] = []
        run: list[Stmt] = []

        def flush() -> None:
            if run:
                out.extend(self._reorder(run, program))
                run.clear()

        for stmt in body:
            if isinstance(stmt, If):
                flush()
                stmt.then_body = self._partition_block(stmt.then_body,
                                                       program)
                stmt.else_body = self._partition_block(stmt.else_body,
                                                       program)
                out.append(stmt)
            elif isinstance(stmt, (DoLoop, DoWhile)):
                flush()
                stmt.body = self._partition_block(stmt.body, program)
                out.append(stmt)
            else:
                run.append(stmt)
        flush()
        return out

    def _reorder(self, statements: list[Stmt],
                 program: Program) -> list[Stmt]:
        result = typed_fusion(statements, program)
        self.last_result = result
        ordered: list[Stmt] = []
        for members in result.groups:
            for i in members:
                ordered.append(statements[i])
        return ordered
