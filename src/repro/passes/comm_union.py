"""Communication unioning (paper section 3.3).

Operates on each contiguous group of ``OVERLAP_SHIFT`` calls produced by
context partitioning and minimises the interprocessor data movement:

1. *Canonicalization by commutativity* — every multi-offset requirement
   is realised by shifting ascending dimensions in order, so a shift of
   dimension ``k`` may pick up the overlap cells already filled for
   dimensions ``< k``.
2. *Subsumption* — within one dimension and direction, the largest shift
   amount subsumes all smaller ones (``|j| >= |i|`` and same sign).
3. *RSD widening* — a shift whose source is a multi-offset array extends
   the transferred slab by the lower-dimension components of its offsets
   (the corner pickup of Figures 9/10); larger RSDs subsume smaller.

The result is a single ``OVERLAP_SHIFT`` per (array, dimension,
direction) actually required — e.g. the 9-point stencil's twelve CSHIFTs
collapse to the four calls of Figure 6.

The pass is requirement-driven rather than pattern-driven, exactly as
the paper advertises: it reconstructs, from the group's shift calls, the
set of total-offset vectors that must be resident in overlap areas, and
then emits the canonical minimal call set that covers them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.nodes import DoLoop, DoWhile, If, OverlapShift, Stmt
from repro.ir.program import Program
from repro.ir.rsd import RSD
from repro.passes.pass_manager import Pass


@dataclass
class CommUnionStats:
    """Before/after message-operation counts per unioned group."""

    groups: int = 0
    shifts_before: int = 0
    shifts_after: int = 0
    rsds_emitted: int = 0
    requirements: list[tuple[str, tuple[int, ...]]] = field(
        default_factory=list)


def requirement_of(stmt: OverlapShift,
                   rank: int) -> tuple[str, tuple[int, ...],
                                       "float | None"]:
    """Total offset vector (and fill kind) a shift call makes resident.

    ``OVERLAP_SHIFT(U<b>, s, d)`` guarantees the overlap cells for the
    offset ``b + s*e_d`` of array ``U``; the fill kind is circular for
    CSHIFT-derived calls and the boundary value for EOSHIFT-derived ones.
    ``rank`` is the declared rank of ``stmt.array`` (from the symbol
    table): the returned vector always has exactly ``rank`` components,
    so trailing-dimension base offsets are never truncated.
    """
    base = stmt.base_offsets or ()
    if len(base) > rank or stmt.dim > rank:
        raise ValueError(
            f"shift of {stmt.array} exceeds its declared rank {rank}: "
            f"dim {stmt.dim}, base offsets {base}")
    offs = list(base) + [0] * (rank - len(base))
    offs[stmt.dim - 1] += stmt.shift
    return stmt.array, tuple(offs), stmt.boundary


def union_requirements(array: str, rank: int,
                       offsets: list[tuple[int, ...]],
                       boundary: "float | None" = None) -> list[OverlapShift]:
    """Emit the canonical minimal shift set covering ``offsets``.

    For each dimension in ascending order and each direction, one call
    with the maximum amount; its RSD is the union of the lower-dimension
    extensions of every covered offset (trivial RSDs are omitted).  All
    requirements must share one fill kind — the offset-array pass's
    fill discipline guarantees this per group.
    """
    calls: list[OverlapShift] = []
    for d in range(rank):
        for sign in (-1, +1):
            need = [o for o in offsets
                    if o[d] != 0 and (1 if o[d] > 0 else -1) == sign]
            if not need:
                continue
            amount = max(abs(o[d]) for o in need)
            rsd = RSD.trivial(rank, d)
            for o in need:
                lower = tuple(o[k] if k < d else 0 for k in range(rank))
                rsd = rsd.union(RSD.from_offsets(lower, d))
            calls.append(OverlapShift(
                array, sign * amount, d + 1,
                rsd=None if rsd.is_trivial else rsd,
                boundary=boundary))
    return calls


class CommUnionPass(Pass):
    """Union each contiguous group of OVERLAP_SHIFT statements."""

    name = "comm-union"

    def __init__(self) -> None:
        self.stats = CommUnionStats()

    def run(self, program: Program) -> None:
        self.stats = CommUnionStats()
        program.body = self._process(program.body, program)

    def _process(self, body: list[Stmt], program: Program) -> list[Stmt]:
        out: list[Stmt] = []
        group: list[OverlapShift] = []

        def flush() -> None:
            if group:
                out.extend(self._union_group(list(group), program))
                group.clear()

        for stmt in body:
            if isinstance(stmt, OverlapShift):
                group.append(stmt)
            elif isinstance(stmt, If):
                flush()
                stmt.then_body = self._process(stmt.then_body, program)
                stmt.else_body = self._process(stmt.else_body, program)
                out.append(stmt)
            elif isinstance(stmt, (DoLoop, DoWhile)):
                flush()
                stmt.body = self._process(stmt.body, program)
                out.append(stmt)
            else:
                flush()
                out.append(stmt)
        flush()
        return out

    def _union_group(self, group: list[OverlapShift],
                     program: Program) -> list[Stmt]:
        self.stats.groups += 1
        self.stats.shifts_before += len(group)
        # requirements are unioned per (array, fill kind): CSHIFT wants
        # wrapped overlap data, EOSHIFT boundary-filled data, and regions
        # of different kinds never mix (offset pass invariant)
        by_key: dict[tuple, list[tuple[int, ...]]] = {}
        order: list[tuple] = []
        for stmt in group:
            rank = program.symbols.array(stmt.array).type.rank
            array, offs, fill = requirement_of(stmt, rank)
            self.stats.requirements.append((array, offs))
            key = (array, fill)
            if key not in by_key:
                by_key[key] = []
                order.append(key)
            by_key[key].append(offs)
        out: list[Stmt] = []
        for key in order:
            array, fill = key
            rank = program.symbols.array(array).type.rank
            calls = union_requirements(array, rank, by_key[key],
                                       boundary=fill)
            self.stats.shifts_after += len(calls)
            self.stats.rsds_emitted += sum(
                1 for c in calls if c.rsd is not None)
            out.extend(calls)
        return out
