"""Memory-optimization analysis for subgrid loop nests (paper 3.4).

The paper hands its final fused loop nest to an optimizing node compiler
that applies loop permutation, scalar replacement, and unroll-and-jam.
This module performs the corresponding *analysis* on a nest's reference
set and produces the per-point :class:`~repro.machine.cost_model.LoopStats`
the cost model prices:

* without memory optimization, every distinct array reference is a
  memory load and every statement stores its result (the memory-bound
  behaviour of section 2.2);
* values written earlier in the same fused nest at the same offset are
  register/cache hits — fusion's data-reuse benefit (section 3.2);
* scalar replacement keeps the innermost-dimension neighbors of each
  reference group in registers, so each (array, non-inner offsets) group
  costs one load per point;
* unroll-and-jam by ``u`` on the outermost loop amortises row loads
  across unrolled iterations: a group spanning ``s`` outer offsets needs
  ``(s + u - 1)/u`` loads per point — the CM-2 stencil compiler's
  "multi-stencil swath" effect;
* scalar replacement also coalesces the per-statement stores of an
  accumulation chain into one store per distinct target.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import PipelineError
from repro.ir.nodes import (
    ArrayRef, BinOp, Compare, Const, Expr, Intrinsic, OffsetRef,
    ScalarRef, UnaryOp,
)
from repro.machine.cost_model import LoopStats

#: flop weights of elementwise intrinsics (ABS is one instruction; the
#: transcendentals cost an order of magnitude more)
_INTRINSIC_FLOPS = {"ABS": 1, "MIN": 1, "MAX": 1,
                    "SQRT": 10, "EXP": 20, "LOG": 20}


@dataclass
class NestProfile:
    """Raw per-point reference behaviour of a nest."""

    reads: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)
    writes: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)
    flops: int = 0
    statements: int = 0


def _collect_expr(expr: Expr, rank_of, profile: NestProfile) -> None:
    if isinstance(expr, (Const, ScalarRef)):
        return
    if isinstance(expr, OffsetRef):
        profile.reads.append((expr.name, expr.offsets))
        return
    if isinstance(expr, ArrayRef):
        profile.reads.append((expr.name,
                              tuple(0 for _ in range(rank_of(expr.name)))))
        return
    if isinstance(expr, BinOp):
        profile.flops += 1
        _collect_expr(expr.left, rank_of, profile)
        _collect_expr(expr.right, rank_of, profile)
        return
    if isinstance(expr, UnaryOp):
        profile.flops += 1
        _collect_expr(expr.operand, rank_of, profile)
        return
    if isinstance(expr, Intrinsic):
        # transcendental/elementwise calls cost a few flops each
        profile.flops += _INTRINSIC_FLOPS.get(expr.name, 2)
        for a in expr.args:
            _collect_expr(a, rank_of, profile)
        return
    if isinstance(expr, Compare):
        _collect_expr(expr.left, rank_of, profile)
        _collect_expr(expr.right, rank_of, profile)
        return
    raise PipelineError(
        f"unexpected {type(expr).__name__} in a scalarized nest")


def profile_nest(statements, rank_of) -> NestProfile:
    """Collect the reference profile of a list of NestStmt."""
    profile = NestProfile()
    for stmt in statements:
        _collect_expr(stmt.rhs, rank_of, profile)
        if getattr(stmt, "mask", None) is not None:
            _collect_expr(stmt.mask, rank_of, profile)
        profile.writes.append((stmt.lhs,
                               tuple(0 for _ in range(rank_of(stmt.lhs)))))
        profile.statements += 1
    return profile


def analyze_nest(statements, rank_of, memopt: bool = False,
                 unroll_jam: int = 1) -> LoopStats:
    """Per-point LoopStats for a (possibly fused) nest.

    Returns stats with ``points=1``; the executor scales by each PE's
    iteration count via :func:`scaled_to_points`.
    """
    prof = profile_nest(statements, rank_of)
    written: set[tuple[str, tuple[int, ...]]] = set()
    mem_groups: dict[tuple, set[int]] = {}  # (array, offs sans inner) -> rows
    total_reads = 0

    # replay in statement order.  The hardware cache keeps the rows a
    # stencil touches resident across the (stride-1) inner loop, so the
    # first reference of each (array, offsets-ignoring-innermost) group
    # misses and the rest hit; values written earlier in the same fused
    # nest are register/cache hits outright.
    for stmt in statements:
        sub = NestProfile()
        _collect_expr(stmt.rhs, rank_of, sub)
        if getattr(stmt, "mask", None) is not None:
            _collect_expr(stmt.mask, rank_of, sub)
        for array, offs in sub.reads:
            total_reads += 1
            if (array, offs) in written:
                continue
            key = (array, offs[:-1]) if offs else (array, ())
            outer = offs[0] if len(offs) >= 2 else 0
            mem_groups.setdefault(key, set()).add(outer)
        written.add((stmt.lhs, tuple(0 for _ in range(rank_of(stmt.lhs)))))

    if not memopt:
        loads = float(len(mem_groups))
        return LoopStats(points=1,
                         statements=prof.statements,
                         mem_loads=loads,
                         cached_loads=total_reads - loads,
                         stores=float(prof.statements),
                         flops=float(prof.flops))

    # unroll-and-jam by u on the outermost loop amortises row loads:
    # the rows a group spans are shared by the u unrolled iterations
    u = max(1, unroll_jam)
    outer_groups: dict[tuple, set[int]] = {}
    for (array, outer_offs), _rows in mem_groups.items():
        key = (array, outer_offs[1:]) if outer_offs else (array, ())
        outer = outer_offs[0] if outer_offs else 0
        outer_groups.setdefault(key, set()).add(outer)
    loads = 0.0
    for outers in outer_groups.values():
        span = max(outers) - min(outers) + 1
        loads += (span + u - 1) / u
    loads = min(loads, float(len(mem_groups)))
    # scalar replacement keeps each accumulation target in a register:
    # one store per distinct LHS instead of one per statement
    stores = float(len(set(prof.writes)))
    return LoopStats(points=1,
                     statements=prof.statements,
                     mem_loads=loads,
                     cached_loads=total_reads - loads,
                     stores=stores,
                     flops=float(prof.flops))


def analyze_reduction(arg, rank_of) -> LoopStats:
    """Per-point LoopStats of a reduction operand's evaluation loop."""
    prof = NestProfile()
    _collect_expr(arg, rank_of, prof)
    groups = {(a, o[:-1] if o else ()) for a, o in prof.reads}
    loads = float(len(groups))
    return LoopStats(points=1, statements=1, mem_loads=loads,
                     cached_loads=len(prof.reads) - loads, stores=0.0,
                     flops=float(prof.flops) + 1.0)


def scaled_to_points(stats: LoopStats, points: int) -> LoopStats:
    """Stats for a PE executing ``points`` iteration points."""
    return replace(stats, points=points)
