"""Normalization into the paper's intermediate form (section 2.1).

After this pass:

* every ``CSHIFT``/``EOSHIFT`` occurs as a *singleton* operation on the
  right-hand side of a whole-array assignment to a (possibly pooled)
  compiler temporary;
* array-syntax stencil operands — section references at a constant
  offset from the LHS section — have been converted into shifts of whole
  arrays plus aligned section references of the temporaries, exactly the
  CM-Fortran translation the paper shows in Figure 4;
* every remaining computation operand is perfectly aligned with the
  statement's iteration space.

Temporary policy reproduces the storage behaviour the paper measures in
Figure 11: one fresh temporary per *simultaneously live* shift (all the
shifts of one statement are live together, so the single-statement
9-point stencil needs 12 temporaries) with pooled reuse across
statements (Problem 9's six hoisted shifts share one temporary, Figure
12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnsupportedFeatureError
from repro.ir.nodes import (
    Allocate, ArrayAssign, ArrayRef, BinOp, Compare, Const, CShift,
    Deallocate, DoLoop, DoWhile, EOShift, Expr, If, Intrinsic, OffsetRef,
    Reduction, ScalarAssign, ScalarRef, Stmt, UnaryOp, section_offsets,
)
from repro.ir.program import Program
from repro.ir.symbols import ArraySymbol, SymbolTable
from repro.passes.pass_manager import Pass


@dataclass
class _TempPool:
    """Pooled compiler temporaries: reused across statements when their
    live ranges do not overlap (paper section 4, 12-vs-3 temporaries)."""

    symbols: SymbolTable
    pooled: bool = True
    free: dict[tuple, list[str]] = field(default_factory=dict)
    all_names: list[str] = field(default_factory=list)

    def acquire(self, like: ArraySymbol) -> str:
        key = (like.type, like.distribution)
        bucket = self.free.setdefault(key, [])
        if self.pooled and bucket:
            return bucket.pop()
        sym = self.symbols.new_temp(like)
        self.all_names.append(sym.name)
        return sym.name

    def release(self, name: str) -> None:
        sym = self.symbols.array(name)
        self.free.setdefault((sym.type, sym.distribution), []).append(name)


class NormalizePass(Pass):
    """Hoist shifts and de-offset array-syntax sections."""

    name = "normalize"

    def __init__(self, pooled_temps: bool = True,
                 emit_alloc: bool = True, cse: bool = False) -> None:
        """``cse`` enables common-subexpression elimination of identical
        shifts within one statement — the hand transformation the paper
        credits Problem 9's author with ("removing four duplicate CSHIFTs
        from the original specification", section 4): the 12 shifts of
        the single-statement 9-point stencil drop to 8.  Off by default
        so the naive baseline models CSE-less compilers faithfully."""
        self.pooled_temps = pooled_temps
        self.emit_alloc = emit_alloc
        self.cse = cse

    def run(self, program: Program) -> None:
        pool = _TempPool(program.symbols, pooled=self.pooled_temps)
        program.body = self._normalize_block(program, program.body, pool)
        if self.emit_alloc and pool.all_names:
            program.body.insert(0, Allocate(pool.all_names))
            program.body.append(Deallocate(pool.all_names))

    # -- block / statement walk ---------------------------------------------
    def _normalize_block(self, program: Program, body: list[Stmt],
                         pool: _TempPool) -> list[Stmt]:
        out: list[Stmt] = []
        for stmt in body:
            if isinstance(stmt, ArrayAssign):
                out.extend(self._normalize_assign(program, stmt, pool))
            elif isinstance(stmt, ScalarAssign):
                out.extend(self._normalize_scalar_assign(program, stmt,
                                                         pool))
            elif isinstance(stmt, If):
                stmt.then_body = self._normalize_block(
                    program, stmt.then_body, pool)
                stmt.else_body = self._normalize_block(
                    program, stmt.else_body, pool)
                out.append(stmt)
            elif isinstance(stmt, (DoLoop, DoWhile)):
                stmt.body = self._normalize_block(program, stmt.body, pool)
                out.append(stmt)
            else:
                out.append(stmt)
        return out

    @staticmethod
    def _is_singleton_shift(stmt: ArrayAssign) -> bool:
        """Already in normal form: a whole-array ``DST = CSHIFT(SRC,s,d)``
        with a whole-array operand (like Problem 9's RIP/RIN assigns)."""
        return (isinstance(stmt.rhs, (CShift, EOShift))
                and stmt.lhs.section is None
                and isinstance(stmt.rhs.array, ArrayRef)
                and stmt.rhs.array.section is None)

    def _normalize_assign(self, program: Program, stmt: ArrayAssign,
                          pool: _TempPool) -> list[Stmt]:
        if self._is_singleton_shift(stmt):
            return [stmt]
        hoisted: list[Stmt] = []
        live_temps: list[str] = []
        self._cse_table: dict[tuple, str] = {}
        sec = stmt.lhs.section
        rhs = self._rewrite(program, stmt.rhs, sec, hoisted, live_temps,
                            pool)
        mask = stmt.mask
        if mask is not None:
            mask = self._rewrite(program, mask, sec, hoisted, live_temps,
                                 pool)
        new_stmt = ArrayAssign(stmt.lhs, rhs, mask)
        for name in live_temps:
            pool.release(name)
        return hoisted + [new_stmt]

    def _normalize_scalar_assign(self, program: Program,
                                 stmt: ScalarAssign,
                                 pool: _TempPool) -> list[Stmt]:
        """Hoist shifts inside reduction operands: ``S = SUM(CSHIFT(..))``
        becomes a singleton shift plus ``S = SUM(TMP)``."""
        hoisted: list[Stmt] = []
        live_temps: list[str] = []
        self._cse_table = {}
        stmt.rhs = self._rewrite(program, stmt.rhs, None, hoisted,
                                 live_temps, pool)
        for name in live_temps:
            pool.release(name)
        return hoisted + [stmt]

    # -- expression rewriting ---------------------------------------------------
    def _rewrite(self, program: Program, expr: Expr, lhs_section,
                 hoisted: list[Stmt], live: list[str],
                 pool: _TempPool) -> Expr:
        if isinstance(expr, (Const, ScalarRef, OffsetRef)):
            return expr
        if isinstance(expr, ArrayRef):
            return self._rewrite_ref(program, expr, lhs_section, hoisted,
                                     live, pool)
        if isinstance(expr, (CShift, EOShift)):
            ref = self._hoist_shift(program, expr, hoisted, live, pool)
            # the temporary is referenced aligned with the LHS section
            return ArrayRef(ref.name, lhs_section)
        if isinstance(expr, BinOp):
            return BinOp(expr.op,
                         self._rewrite(program, expr.left, lhs_section,
                                       hoisted, live, pool),
                         self._rewrite(program, expr.right, lhs_section,
                                       hoisted, live, pool))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op,
                           self._rewrite(program, expr.operand,
                                         lhs_section, hoisted, live, pool))
        if isinstance(expr, Intrinsic):
            return Intrinsic(expr.name, tuple(
                self._rewrite(program, a, lhs_section, hoisted, live, pool)
                for a in expr.args))
        if isinstance(expr, Reduction):
            # the reduction operand iterates the whole array space
            return Reduction(expr.op,
                             self._rewrite(program, expr.arg, None,
                                           hoisted, live, pool))
        if isinstance(expr, Compare):
            return Compare(expr.op,
                           self._rewrite(program, expr.left, lhs_section,
                                         hoisted, live, pool),
                           self._rewrite(program, expr.right, lhs_section,
                                         hoisted, live, pool))
        raise UnsupportedFeatureError(
            f"cannot normalize {type(expr).__name__}")

    def _rewrite_ref(self, program: Program, ref: ArrayRef,
                     lhs_sec, hoisted: list[Stmt],
                     live: list[str], pool: _TempPool) -> Expr:
        """Turn an unaligned section reference into a shift of the whole
        array plus an aligned reference (Figure 1 -> Figure 4)."""
        if ref.section is None or lhs_sec is None:
            if ref.section is None and lhs_sec is not None:
                raise UnsupportedFeatureError(
                    f"whole-array operand {ref.name} in a sectioned "
                    f"assignment is not conformable")
            if ref.section is not None and lhs_sec is None:
                raise UnsupportedFeatureError(
                    f"sectioned operand {ref} in a whole-array context "
                    f"is not conformable")
            return ref
        offsets = section_offsets(ref.section, lhs_sec)
        if offsets is None:
            raise UnsupportedFeatureError(
                f"section {ref} is not a constant offset of the LHS "
                f"section; general section communication is "
                f"outside the stencil subset")
        if all(o == 0 for o in offsets):
            return ArrayRef(ref.name, lhs_sec)
        # reading SRC(i + o) means TMP(i) = SRC(i + o) = CSHIFT(SRC, o_d, d)
        # chained over the nonzero dimensions
        inner: Expr = ArrayRef(ref.name)
        for d, o in enumerate(offsets):
            if o:
                inner = CShift(inner, o, d + 1)
        tmp_ref = self._hoist_shift(program, inner, hoisted, live, pool)
        assert isinstance(tmp_ref, ArrayRef)
        return ArrayRef(tmp_ref.name, lhs_sec)

    def _hoist_shift(self, program: Program, expr: Expr,
                     hoisted: list[Stmt],
                     live: list[str], pool: _TempPool) -> ArrayRef:
        """Hoist (possibly nested) shifts into singleton assignments.

        Returns the aligned reference replacing the shift expression."""
        assert isinstance(expr, (CShift, EOShift))
        operand = expr.array
        if isinstance(operand, (CShift, EOShift)):
            operand = self._hoist_shift(program, operand, hoisted,
                                        live, pool)
        if isinstance(operand, ArrayRef) and operand.section is not None:
            raise UnsupportedFeatureError(
                "CSHIFT of an array section is outside the normal form; "
                "shift the whole array instead")
        if not isinstance(operand, ArrayRef):
            raise UnsupportedFeatureError(
                f"CSHIFT of a {type(operand).__name__} expression is not "
                f"supported; assign it to an array first")
        if isinstance(expr, CShift):
            key = (operand.name, expr.shift, expr.dim, None)
        else:
            key = (operand.name, expr.shift, expr.dim, expr.boundary)
        if self.cse and key in self._cse_table:
            # the identical shift was already hoisted for an earlier
            # term of this statement; reuse its (still live) temporary
            return ArrayRef(self._cse_table[key])
        src = program.symbols.array(operand.name)
        tmp = pool.acquire(src)
        live.append(tmp)
        if isinstance(expr, CShift):
            shifted: Expr = CShift(ArrayRef(operand.name), expr.shift,
                                   expr.dim)
        else:
            shifted = EOShift(ArrayRef(operand.name), expr.shift, expr.dim,
                              expr.boundary)
        hoisted.append(ArrayAssign(ArrayRef(tmp), shifted))
        if self.cse:
            self._cse_table[key] = tmp
        return ArrayRef(tmp)


def is_normal_form(program: Program) -> bool:
    """Check the three normal-form properties of paper section 2.1."""
    for stmt in program.leaf_statements():
        if not isinstance(stmt, ArrayAssign):
            continue
        rhs = stmt.rhs
        if isinstance(rhs, (CShift, EOShift)):
            # singleton whole-array shift
            if stmt.lhs.section is not None:
                return False
            if not (isinstance(rhs.array, ArrayRef)
                    and rhs.array.section is None):
                return False
            continue
        # computation statement: no shifts below the top, aligned operands
        for node in rhs.walk():
            if isinstance(node, (CShift, EOShift)):
                return False
            if isinstance(node, ArrayRef) and node.section is not None:
                if stmt.lhs.section is None or \
                        section_offsets(node.section,
                                        stmt.lhs.section) != tuple(
                                            0 for _ in node.section):
                    return False
    return True
