"""Optimization passes implementing the paper's compilation strategy.

Pipeline order (paper section 3):

1. :mod:`repro.passes.normalize` — translate every stencil into the
   normal form of section 2.1 (singleton whole-array CSHIFTs into
   temporaries; aligned computation operands).
2. :mod:`repro.passes.offset_arrays` — eliminate intraprocessor data
   movement (section 3.1).
3. :mod:`repro.passes.context_partition` — statement reordering via
   typed fusion (section 3.2).
4. :mod:`repro.passes.comm_union` — minimise interprocessor data
   movement (section 3.3).

Scalarization, loop fusion, and memory optimization (sections 3.4/4.5)
live in :mod:`repro.compiler.codegen` and :mod:`repro.passes.memopt`
because they operate on loop nests rather than array statements.
"""

from repro.passes.pass_manager import Pass, PassManager, PassTrace  # noqa: F401
from repro.passes.normalize import NormalizePass  # noqa: F401
from repro.passes.offset_arrays import OffsetArrayPass  # noqa: F401
from repro.passes.context_partition import ContextPartitionPass  # noqa: F401
from repro.passes.comm_union import CommUnionPass  # noqa: F401
