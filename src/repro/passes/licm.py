"""Loop-invariant communication motion (extension pass).

Time-stepped stencil solvers often shift arrays that never change inside
the loop — variable coefficients, masks, metric terms.  Re-filling their
overlap areas every iteration wastes a message per direction per
iteration.  This pass hoists an ``OVERLAP_SHIFT`` out of a ``DO`` /
``DO WHILE`` body when

* its base array is not redefined anywhere in the loop body, and
* no other shift in the body fills the same region with a different
  fill kind (which would clobber the hoisted data).

The paper does not include this optimization (its kernels shift only the
iterated field), but it falls out naturally from the same machinery and
is standard practice in later stencil compilers; DESIGN.md lists it as
an implemented extension.  Hoisting is applied innermost-first so
communication for doubly nested loops can migrate all the way out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.nodes import (
    Allocate, ArrayAssign, Deallocate, DoLoop, DoWhile, If, OverlapShift,
    Stmt,
)
from repro.ir.program import Program
from repro.passes.pass_manager import Pass


@dataclass
class LicmStats:
    """How many communication calls were hoisted out of loops."""

    hoisted: int = 0
    loops_processed: int = 0


class CommMotionPass(Pass):
    """Hoist loop-invariant OVERLAP_SHIFTs out of loop bodies."""

    name = "comm-motion"

    def __init__(self) -> None:
        self.stats = LicmStats()

    def run(self, program: Program) -> None:
        self.stats = LicmStats()
        program.body = self._process(program.body)

    # -- structured walk -----------------------------------------------------
    def _process(self, body: list[Stmt]) -> list[Stmt]:
        out: list[Stmt] = []
        for stmt in body:
            if isinstance(stmt, (DoLoop, DoWhile)):
                stmt.body = self._process(stmt.body)
                hoisted, stmt.body = self._hoist_from(stmt.body)
                self.stats.loops_processed += 1
                self.stats.hoisted += len(hoisted)
                out.extend(hoisted)
                out.append(stmt)
            elif isinstance(stmt, If):
                stmt.then_body = self._process(stmt.then_body)
                stmt.else_body = self._process(stmt.else_body)
                out.append(stmt)
            else:
                out.append(stmt)
        return out

    def _hoist_from(self, body: list[Stmt]) -> tuple[list[Stmt],
                                                     list[Stmt]]:
        killed = self._killed_in(body)
        fills: dict[tuple[str, int, int], set] = {}
        for stmt in self._all_shifts(body):
            sign = 1 if stmt.shift > 0 else -1
            fills.setdefault((stmt.array, stmt.dim - 1, sign),
                             set()).add(stmt.boundary)
        hoisted: list[Stmt] = []
        kept: list[Stmt] = []
        for stmt in body:
            if isinstance(stmt, OverlapShift) and \
                    stmt.array not in killed and \
                    self._region_uniform(fills, stmt):
                hoisted.append(stmt)
            else:
                kept.append(stmt)
        return hoisted, kept

    @staticmethod
    def _region_uniform(fills, stmt: OverlapShift) -> bool:
        sign = 1 if stmt.shift > 0 else -1
        return len(fills.get((stmt.array, stmt.dim - 1, sign),
                             {stmt.boundary})) == 1

    def _all_shifts(self, body: list[Stmt]):
        for stmt in body:
            for s in stmt.walk():
                if isinstance(s, OverlapShift):
                    yield s

    def _killed_in(self, body: list[Stmt]) -> set[str]:
        killed: set[str] = set()
        for stmt in body:
            for s in stmt.walk():
                if isinstance(s, ArrayAssign):
                    killed.add(s.lhs.name)
                elif isinstance(s, (Allocate, Deallocate)):
                    killed.update(s.names)
        return killed
