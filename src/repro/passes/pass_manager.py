"""Pass framework: ordered pipeline with validation, IR traces, and
per-pass observability (timings + IR-delta stats)."""

from __future__ import annotations

import abc
import dataclasses
import time
from dataclasses import dataclass, field

from repro.errors import PipelineError
from repro.ir.nodes import (
    ArrayAssign, CShift, EOShift, OverlapShift, ScalarAssign,
)
from repro.ir.printer import format_program
from repro.ir.program import Program


class Pass(abc.ABC):
    """One program transformation.  Subclasses set :attr:`name` and
    implement :meth:`run`, mutating the program in place."""

    name: str = "pass"

    @abc.abstractmethod
    def run(self, program: Program) -> None:
        ...


def ir_stats(program: Program) -> dict[str, int]:
    """Coarse shape of the IR: what each pass grows or shrinks.

    The counts a reader of the paper's Figures 12-15 would tally by eye:
    leaf statements, remaining full-shift intrinsics (CSHIFT/EOSHIFT),
    and OVERLAP_SHIFT calls.
    """
    leaves = program.leaf_statements()
    shift_intrinsics = 0
    for stmt in leaves:
        exprs = []
        if isinstance(stmt, ArrayAssign):
            exprs = [stmt.rhs] + ([stmt.mask] if stmt.mask is not None
                                  else [])
        elif isinstance(stmt, ScalarAssign):
            exprs = [stmt.rhs]
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, (CShift, EOShift)):
                    shift_intrinsics += 1
    return {
        "statements": len(leaves),
        "shift_intrinsics": shift_intrinsics,
        "overlap_shifts": sum(
            1 for s in leaves if isinstance(s, OverlapShift)),
    }


@dataclass
class PassSnapshot:
    """One pass's after-image: IR text plus timing and shape stats.

    Unpacks as ``(name, text)`` for backward compatibility with the
    original two-tuple snapshot format.
    """

    name: str
    text: str
    elapsed_s: float = 0.0
    ir: dict[str, int] = field(default_factory=dict)
    stats: object | None = None  # the pass's own stats dataclass, if any

    def __iter__(self):
        yield self.name
        yield self.text


@dataclass
class PassTrace:
    """IR snapshots taken after each pass — the golden-test hook that lets
    us compare the pipeline against the paper's Figures 12-15."""

    snapshots: list[PassSnapshot] = field(default_factory=list)

    def record(self, name: str, program: Program,
               elapsed_s: float = 0.0,
               stats: object | None = None) -> None:
        self.snapshots.append(PassSnapshot(
            name=name, text=format_program(program),
            elapsed_s=elapsed_s, ir=ir_stats(program), stats=stats))

    def after(self, pass_name: str) -> str:
        """IR text after the *last* run of ``pass_name`` (a pipeline may
        legally run the same pass more than once)."""
        return self.snapshot(pass_name).text

    def snapshot(self, pass_name: str) -> PassSnapshot:
        """Full snapshot after the last run of ``pass_name``."""
        for snap in reversed(self.snapshots):
            if snap.name == pass_name:
                return snap
        raise KeyError(f"no snapshot for pass {pass_name!r}")

    def names(self) -> list[str]:
        return [snap.name for snap in self.snapshots]

    def __str__(self) -> str:
        out = []
        for name, text in self.snapshots:
            out.append(f"=== after {name} ===")
            out.append(text)
        return "\n".join(out)


def _public_stats(stats: object) -> dict[str, float]:
    """Numeric fields of a pass's stats dataclass, for span counters."""
    out: dict[str, float] = {}
    if stats is None:
        return out
    if dataclasses.is_dataclass(stats):
        for f in dataclasses.fields(stats):
            value = getattr(stats, f.name)
            if isinstance(value, bool):
                out[f.name] = float(value)
            elif isinstance(value, (int, float)):
                out[f.name] = float(value)
            elif isinstance(value, (list, tuple, set)):
                out[f.name] = float(len(value))
    return out


@dataclass
class PassManager:
    """Runs a pass list in order, validating the IR after every step.

    ``tracer`` (a :class:`repro.obs.Tracer`) gets one ``pass:<name>``
    span per pass, carrying wall-clock time, the pass's own stats
    counters, and the IR-shape delta the pass caused.
    """

    passes: list[Pass]
    trace: PassTrace | None = None
    tracer: object | None = None

    def run(self, program: Program) -> Program:
        from repro.obs.tracer import coalesce
        tracer = coalesce(self.tracer)
        if self.trace is not None:
            self.trace.record("input", program)
        before = ir_stats(program) if tracer.enabled else None
        for p in self.passes:
            with tracer.span(f"pass:{p.name}", kind="pass") as span:
                t0 = time.perf_counter()
                try:
                    p.run(program)
                    program.validate()
                except PipelineError as exc:
                    raise PipelineError(
                        f"after pass {p.name}: {exc}") from exc
                elapsed = time.perf_counter() - t0
                stats = getattr(p, "stats", None)
                if tracer.enabled:
                    after = ir_stats(program)
                    for key, value in after.items():
                        span.gauge(f"ir.{key}", value)
                        span.gauge(f"ir.{key}_delta", value - before[key])
                    before = after
                    for key, value in _public_stats(stats).items():
                        span.gauge(key, value)
            if self.trace is not None:
                self.trace.record(p.name, program, elapsed_s=elapsed,
                                  stats=stats)
        return program
