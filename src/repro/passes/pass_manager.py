"""Pass framework: ordered pipeline with validation and IR traces."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import PipelineError
from repro.ir.printer import format_program
from repro.ir.program import Program


class Pass(abc.ABC):
    """One program transformation.  Subclasses set :attr:`name` and
    implement :meth:`run`, mutating the program in place."""

    name: str = "pass"

    @abc.abstractmethod
    def run(self, program: Program) -> None:
        ...


@dataclass
class PassTrace:
    """IR snapshots taken after each pass — the golden-test hook that lets
    us compare the pipeline against the paper's Figures 12-15."""

    snapshots: list[tuple[str, str]] = field(default_factory=list)

    def record(self, name: str, program: Program) -> None:
        self.snapshots.append((name, format_program(program)))

    def after(self, pass_name: str) -> str:
        for name, text in self.snapshots:
            if name == pass_name:
                return text
        raise KeyError(f"no snapshot for pass {pass_name!r}")

    def __str__(self) -> str:
        out = []
        for name, text in self.snapshots:
            out.append(f"=== after {name} ===")
            out.append(text)
        return "\n".join(out)


@dataclass
class PassManager:
    """Runs a pass list in order, validating the IR after every step."""

    passes: list[Pass]
    trace: PassTrace | None = None

    def run(self, program: Program) -> Program:
        if self.trace is not None:
            self.trace.record("input", program)
        for p in self.passes:
            try:
                p.run(program)
                program.validate()
            except PipelineError as exc:
                raise PipelineError(f"after pass {p.name}: {exc}") from exc
            if self.trace is not None:
                self.trace.record(p.name, program)
        return program
