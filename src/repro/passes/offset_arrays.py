"""Offset-array optimization (paper section 3.1).

Eliminates the *intraprocessor* component of shift data movement.  For
every normal-form shift statement ``DST = CSHIFT(SRC, s, d)`` (or
``EOSHIFT`` — the generalization the paper states in section 2.1) whose
safety criteria hold, the pass:

1. replaces the statement with ``CALL OVERLAP_SHIFT(SRC, s, d)`` — only
   the off-processor slab moves, into SRC's overlap area;
2. rewrites reached uses of ``DST`` into annotated offset references of
   the (ultimate) source, ``SRC<+s...>``;
3. when some use cannot be rewritten — or ``DST`` is live out of the
   routine — inserts a compensating copy ``DST = SRC<...>`` that performs
   exactly the intraprocessor movement that was avoided, preserving the
   original semantics (the paper's criterion-violation repair).

Shifts of offset arrays compose: ``TMP = CSHIFT(RIP, -1, 2)`` with
``RIP -> U<+1,0>`` becomes ``OVERLAP_SHIFT(U<+1,0>, -1, 2)`` and uses of
``TMP`` become ``U<+1,-1>`` — the multi-offset arrays of Figure 13.

The propagation is optimistic in the paper's sense: the relationship
``DST = base<offsets>`` is tracked through control flow with a forward
must-analysis (intersection at joins, conservative invalidation around
loop back edges) and every use where the relationship still holds is
rewritten; everything else falls back to the compensating copy.

Fill-kind discipline
--------------------
An overlap region physically holds one set of values, but CSHIFT wants
wrapped data and EOSHIFT boundary-filled data.  The pass therefore
tracks the *fill kind* established for each (base, dimension, direction)
region since the base was last redefined; converting a shift whose fill
conflicts with the region's established kind would corrupt earlier
readers, so such shifts keep their full data movement.  Multi-offset
chains must be fill-homogeneous for the same reason.  This invariant is
also what keeps the dependence relaxation of
:mod:`repro.ir.dependence` (idempotent halo rewrites) sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.nodes import (
    Allocate, ArrayAssign, ArrayRef, BinOp, Compare, CShift, Deallocate,
    DoLoop, DoWhile, EOShift, Expr, If, Intrinsic, OffsetRef, OverlapShift,
    Reduction, ScalarAssign, Stmt, UnaryOp, array_names, section_offsets,
)
from repro.ir.program import Program
from repro.passes.pass_manager import Pass

# fill kind: None = circular (CSHIFT), float = end-off boundary (EOSHIFT)
Fill = float | None

# tracked relationship: name -> (base array, accumulated offsets, fill)
Entry = tuple[str, tuple[int, ...], Fill]


@dataclass
class _State:
    """Flow state: tracked offset relationships plus per-region fills."""

    off: dict[str, Entry] = field(default_factory=dict)
    fills: dict[tuple[str, int, int], Fill] = field(default_factory=dict)

    def copy(self) -> "_State":
        return _State(dict(self.off), dict(self.fills))

    def meet(self, other: "_State") -> "_State":
        return _State(
            {k: v for k, v in self.off.items()
             if other.off.get(k) == v},
            {k: v for k, v in self.fills.items()
             if k in other.fills and other.fills[k] == v},
        )

    def kill(self, name: str) -> None:
        for key in list(self.off):
            base, _, _ = self.off[key]
            if key == name or base == name:
                del self.off[key]
        for key in list(self.fills):
            if key[0] == name:
                del self.fills[key]


@dataclass
class OffsetArrayStats:
    """What the pass did — consumed by tests and the experiment reports."""

    shifts_converted: int = 0
    shifts_kept: int = 0
    uses_rewritten: int = 0
    copies_inserted: int = 0
    copies_elided: int = 0
    dead_defs_removed: int = 0
    fill_conflicts: int = 0
    dead_arrays: list[str] = field(default_factory=list)


class OffsetArrayPass(Pass):
    """SSA-flavoured offset-array conversion with copy repair."""

    name = "offset-arrays"

    def __init__(self, max_offset: int = 4,
                 outputs: set[str] | None = None,
                 convert_eoshift: bool = True) -> None:
        """``max_offset`` bounds the per-dimension offset magnitude (the
        paper's "small constant" criterion — it becomes the overlap-area
        width).  ``outputs`` names the arrays whose final values are live
        out of the routine; ``None`` means every user-declared array.
        ``convert_eoshift`` enables the EOSHIFT generalization."""
        self.max_offset = max_offset
        self.outputs = outputs
        self.convert_eoshift = convert_eoshift
        self.stats = OffsetArrayStats()

    # -- driver ------------------------------------------------------------
    def run(self, program: Program) -> None:
        self.stats = OffsetArrayStats()
        self._program = program
        self._tentative: list[tuple[ArrayAssign, str]] = []
        program.body = self._walk(program.body, _State())
        self._resolve_copies(program)
        self._remove_dead_defs(program)
        self.stats.dead_arrays = program.prune_dead_arrays()

    # -- structured walk -----------------------------------------------------
    def _walk(self, body: list[Stmt], state: _State) -> list[Stmt]:
        out: list[Stmt] = []
        for stmt in body:
            if isinstance(stmt, ArrayAssign):
                out.extend(self._visit_assign(stmt, state))
            elif isinstance(stmt, If):
                s_then = state.copy()
                s_else = state.copy()
                stmt.then_body = self._walk(stmt.then_body, s_then)
                stmt.else_body = self._walk(stmt.else_body, s_else)
                merged = s_then.meet(s_else)
                state.off = merged.off
                state.fills = merged.fills
                out.append(stmt)
            elif isinstance(stmt, (DoLoop, DoWhile)):
                # conservative around the back edge: anything the body
                # kills is unavailable on entry to any iteration
                for name in self._killed_in(stmt.body):
                    state.kill(name)
                stmt.body = self._walk(stmt.body, state)
                out.append(stmt)
            elif isinstance(stmt, (Allocate, Deallocate)):
                for name in stmt.names:
                    state.kill(name)
                out.append(stmt)
            elif isinstance(stmt, ScalarAssign):
                stmt.rhs = self._rewrite_expr(stmt.rhs, None, state)
                out.append(stmt)
            else:
                out.append(stmt)
        return out

    def _killed_in(self, body: list[Stmt]) -> set[str]:
        killed: set[str] = set()
        for stmt in body:
            for s in stmt.walk():
                if isinstance(s, ArrayAssign):
                    killed.add(s.lhs.name)
                elif isinstance(s, (Allocate, Deallocate)):
                    killed.update(s.names)
        return killed

    # -- per-statement transformation ---------------------------------------------
    def _visit_assign(self, stmt: ArrayAssign,
                      state: _State) -> list[Stmt]:
        rhs = stmt.rhs
        is_shift = isinstance(rhs, (CShift, EOShift)) and \
            stmt.lhs.section is None and \
            isinstance(rhs.array, ArrayRef) and rhs.array.section is None
        if is_shift and (isinstance(rhs, CShift) or self.convert_eoshift):
            converted = self._try_convert_shift(stmt, rhs, state)
            if converted is not None:
                return converted
        # ordinary statement: rewrite reached uses, then apply kills
        stmt.rhs = self._rewrite_expr(stmt.rhs, stmt, state)
        if stmt.mask is not None:
            stmt.mask = self._rewrite_expr(stmt.mask, stmt, state)
        state.kill(stmt.lhs.name)
        return [stmt]

    def _try_convert_shift(self, stmt: ArrayAssign,
                           rhs: "CShift | EOShift",
                           state: _State) -> list[Stmt] | None:
        symbols = self._program.symbols
        dst = stmt.lhs.name
        src = rhs.array.name
        fill: Fill = rhs.boundary if isinstance(rhs, EOShift) else None
        entry = state.off.get(src)
        if entry is not None:
            base, boffs, src_fill = entry
            # multi-offset chains must be fill-homogeneous
            if src_fill != fill and any(boffs):
                self.stats.fill_conflicts += 1
                self.stats.shifts_kept += 1
                state.kill(dst)
                return None
        else:
            base = src
            boffs = tuple(0 for _ in range(
                symbols.array(src).type.rank))
        dst_sym = symbols.array(dst)
        base_sym = symbols.array(base)
        new_offs = list(boffs)
        d = rhs.dim - 1
        if d >= len(new_offs):
            return None
        new_offs[d] += rhs.shift
        sign = 1 if rhs.shift > 0 else -1
        region = (base, d, sign)
        established = state.fills.get(region, fill)
        criteria_ok = (
            dst_sym.type == base_sym.type
            and dst_sym.distribution == base_sym.distribution
            and dst != base
            and all(abs(o) <= self.max_offset for o in new_offs)
            and established == fill
        )
        if not criteria_ok:
            if established != fill:
                self.stats.fill_conflicts += 1
            self.stats.shifts_kept += 1
            state.kill(dst)
            return None
        offsets = tuple(new_offs)
        ovl = OverlapShift(base, rhs.shift, rhs.dim,
                           base_offsets=boffs if any(boffs) else None,
                           boundary=fill)
        copy = ArrayAssign(ArrayRef(dst), OffsetRef(base, offsets, fill))
        self._tentative.append((copy, dst))
        state.kill(dst)
        state.off[dst] = (base, offsets, fill)
        state.fills[region] = fill
        self.stats.shifts_converted += 1
        return [ovl, copy]

    # -- use rewriting -----------------------------------------------------------
    def _rewrite_expr(self, expr: Expr, stmt: ArrayAssign,
                      state: _State) -> Expr:
        if isinstance(expr, ArrayRef) and expr.name in state.off:
            base, offs, fill = state.off[expr.name]
            delta = self._ref_delta(expr, stmt)
            if delta is not None:
                # a nonzero delta composes a circular displacement on top
                # of the tracked one; only sound when fills agree
                if any(delta) and fill is not None:
                    return expr
                total = tuple(o + d for o, d in zip(offs, delta))
                if all(abs(o) <= self.max_offset for o in total):
                    self.stats.uses_rewritten += 1
                    return OffsetRef(base, total, fill)
            return expr
        if isinstance(expr, BinOp):
            return BinOp(expr.op,
                         self._rewrite_expr(expr.left, stmt, state),
                         self._rewrite_expr(expr.right, stmt, state))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op,
                           self._rewrite_expr(expr.operand, stmt, state))
        if isinstance(expr, Intrinsic):
            return Intrinsic(expr.name, tuple(
                self._rewrite_expr(a, stmt, state) for a in expr.args))
        if isinstance(expr, Reduction):
            return Reduction(expr.op,
                             self._rewrite_expr(expr.arg, None, state))
        if isinstance(expr, Compare):
            return Compare(expr.op,
                           self._rewrite_expr(expr.left, stmt, state),
                           self._rewrite_expr(expr.right, stmt, state))
        if isinstance(expr, (CShift, EOShift)):
            # non-normal-form residue: left untouched (kept full shifts)
            return expr
        return expr

    def _ref_delta(self, ref: ArrayRef,
                   stmt: "ArrayAssign | None") -> tuple[int, ...] | None:
        rank = self._program.symbols.array(ref.name).type.rank
        if ref.section is None:
            return tuple(0 for _ in range(rank))
        if stmt is None or stmt.lhs.section is None:
            return None
        return section_offsets(ref.section, stmt.lhs.section)

    # -- copy repair ------------------------------------------------------------
    def _resolve_copies(self, program: Program) -> None:
        """Drop tentative compensating copies whose destination is never
        read afterwards and is not live out of the routine."""
        outputs = self.outputs
        if outputs is None:
            outputs = {name for name, sym in
                       program.symbols.arrays.items()
                       if not sym.is_temporary}
        else:
            outputs = {n.upper() for n in outputs}
        copy_sids = {copy.sid for copy, _ in self._tentative}
        reads = self._collect_reads(program, exclude_sids=copy_sids)
        for copy, dst in self._tentative:
            if dst in reads or dst in outputs:
                self.stats.copies_inserted += 1
            else:
                self._remove_stmt(program.body, copy)
                self.stats.copies_elided += 1

    def _collect_reads(self, program: Program,
                       exclude_sids: set[int]) -> set[str]:
        reads: set[str] = set()
        for stmt in program.leaf_statements():
            if stmt.sid in exclude_sids:
                # a compensating copy reads only its base, which stays
                # live through the OVERLAP_SHIFT that precedes it
                assert isinstance(stmt, ArrayAssign)
                reads |= array_names(stmt.rhs)
                continue
            if isinstance(stmt, (ArrayAssign, ScalarAssign)):
                reads |= array_names(stmt.rhs)
                if isinstance(stmt, ArrayAssign) and stmt.mask is not None:
                    reads |= array_names(stmt.mask)
            elif isinstance(stmt, OverlapShift):
                reads.add(stmt.array)
            elif isinstance(stmt, If):
                reads |= array_names(stmt.cond)
        return reads

    def _remove_stmt(self, body: list[Stmt], target: Stmt) -> bool:
        for i, stmt in enumerate(body):
            if stmt is target:
                del body[i]
                return True
            if isinstance(stmt, If):
                if self._remove_stmt(stmt.then_body, target) or \
                        self._remove_stmt(stmt.else_body, target):
                    return True
            elif isinstance(stmt, (DoLoop, DoWhile)):
                if self._remove_stmt(stmt.body, target):
                    return True
        return False

    # -- dead definition cleanup --------------------------------------------------
    def _remove_dead_defs(self, program: Program) -> None:
        """Remove assignments to temporaries that are never read and not
        live-out (Figure 13: the TMP/RIP/RIN defs disappear)."""
        outputs = self.outputs
        if outputs is None:
            outputs = {name for name, sym in
                       program.symbols.arrays.items()
                       if not sym.is_temporary}
        else:
            outputs = {n.upper() for n in outputs}
        changed = True
        while changed:
            changed = False
            reads = self._collect_reads(program, exclude_sids=set())
            for stmt in list(program.body):
                if isinstance(stmt, ArrayAssign) and \
                        stmt.lhs.name not in reads and \
                        stmt.lhs.name not in outputs:
                    program.body.remove(stmt)
                    self.stats.dead_defs_removed += 1
                    changed = True
