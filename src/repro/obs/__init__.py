"""Observability: tracing, metrics, and communication profiling.

See :mod:`repro.obs.tracer` for the span/counter model and the JSONL
schema, :mod:`repro.obs.profile` for the communication profiler
(per-PE comm matrices, phase timelines, cost-model validation),
:mod:`repro.obs.metrics` for the labeled metrics registry (counters,
gauges, histograms; null by default), :mod:`repro.obs.ledger` for the
per-machine JSONL run ledger, and :mod:`repro.obs.export` for the
Chrome-trace, profile.json, metrics JSON, and Prometheus exporters.
README sections "Tracing and metrics", "Profiling", and "Metrics &
run ledger" cover usage.
"""

from repro.obs.export import (  # noqa: F401
    PROFILE_SCHEMA, chrome_trace, metrics_from_json, metrics_to_json,
    profile_from_json, profile_to_json, prometheus_text, read_metrics,
    read_profile, write_chrome_trace, write_metrics, write_profile,
    write_prometheus,
)
from repro.obs.ledger import LEDGER_SCHEMA, RunLedger  # noqa: F401
from repro.obs.metrics import (  # noqa: F401
    CacheStats, Counter, Gauge, Histogram, METRICS_SCHEMA,
    MetricsRegistry, NULL_REGISTRY, NullRegistry, TIME_BUCKETS,
    get_registry, registry_from_dict, set_process_default,
    set_registry, use_registry,
)
from repro.obs.profile import (  # noqa: F401
    CommProfile, MATRIX_CLASSES, OpSample, PHASES, ProfileCollector,
)
from repro.obs.tracer import (  # noqa: F401
    NULL_TRACER, NullTracer, Span, TRACE_SCHEMA, Tracer, coalesce,
)
