"""Observability: tracing, metrics, and communication profiling.

See :mod:`repro.obs.tracer` for the span/counter model and the JSONL
schema, :mod:`repro.obs.profile` for the communication profiler
(per-PE comm matrices, phase timelines, cost-model validation), and
:mod:`repro.obs.export` for the Chrome-trace and profile.json
exporters.  README sections "Tracing and metrics" and "Profiling"
cover usage.
"""

from repro.obs.export import (  # noqa: F401
    PROFILE_SCHEMA, chrome_trace, profile_from_json, profile_to_json,
    read_profile, write_chrome_trace, write_profile,
)
from repro.obs.profile import (  # noqa: F401
    CommProfile, MATRIX_CLASSES, OpSample, PHASES, ProfileCollector,
)
from repro.obs.tracer import (  # noqa: F401
    NULL_TRACER, NullTracer, Span, TRACE_SCHEMA, Tracer, coalesce,
)
