"""Observability: structured tracing + metrics across compile and run.

See :mod:`repro.obs.tracer` for the span/counter model and the JSONL
schema, and the README section "Tracing and metrics" for usage.
"""

from repro.obs.tracer import (  # noqa: F401
    NULL_TRACER, NullTracer, Span, TRACE_SCHEMA, Tracer, coalesce,
)
