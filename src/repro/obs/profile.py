"""Communication profiler: who sends what to whom, and when.

The tracer (:mod:`repro.obs.tracer`) answers *how long* each stage took;
this module answers the paper's structural questions — *where bytes
move*.  A :class:`ProfileCollector` rides along with the executor's op
dispatch (both backends share the hook, so profiles are part of the
backend-equivalence contract), and :class:`CommProfile` condenses the
collected samples plus the :class:`~repro.machine.network.Network`
message log into three artifacts:

* a per-PE-pair **communication matrix** (messages and bytes), split by
  tag class (``halo`` / ``rsd`` / ``bufshift`` / ``allreduce``, see
  :data:`repro.machine.network.TAG_CLASSES`) — which shifts got unioned,
  which corners rode along via RSDs, which messages are the naive
  buffered path, and the butterfly rounds of each reduction collective;
* a phase-attributed per-PE **timeline** (``comm`` / ``copy`` /
  ``compute`` slices in modelled time, one lane per PE) built from each
  op's per-PE cost-report deltas;
* a **cost-model validation table**: modelled per-op time against the
  measured wall-clock of executing that op in the simulator, with a
  scale-normalized error statistic.

Caveats, stated once: the matrix covers logged point-to-point messages
(self-sends are priced as local copies and carry no message record;
reduction collectives log one record per butterfly round through
:meth:`~repro.machine.network.Network.allreduce`, identically on every
backend), and an :class:`~repro.plan.OverlappedOp`'s
communication-hiding credit can shrink its compute slice to zero.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.machine.network import TAG_CLASSES, tag_class

#: Matrix classes reported, in order: the tag taxonomy plus a catch-all.
MATRIX_CLASSES = TAG_CLASSES + ("other",)

#: Timeline phases, in the order slices are laid out within one op.
PHASES = ("comm", "copy", "compute")


@dataclass
class OpSample:
    """Attribution record of one executed plan op.

    ``pe_time``/``pe_comm``/``pe_copy`` are **self** per-PE modelled-time
    deltas: the op's inclusive cost-report delta minus its children's
    (container ops — DO loops, IFs, overlapped regions — own only the
    cost they charge directly).  ``wall_self`` is the self wall-clock of
    dispatching the op in the simulator.
    """

    index: int
    parent: int          # index of the enclosing sample, -1 at top level
    depth: int
    name: str
    detail: str
    wall_incl: float = 0.0
    wall_self: float = 0.0
    #: wall-clock offset of the op's start relative to the collector's
    #: first sample — lets multi-process backends rebase worker
    #: timelines onto one Chrome-trace clock
    t_start: float = 0.0
    pe_time: list[float] = field(default_factory=list)
    pe_comm: list[float] = field(default_factory=list)
    pe_copy: list[float] = field(default_factory=list)
    messages: int = 0    # self logged point-to-point messages
    msg_bytes: int = 0
    finish_order: int = -1

    @property
    def modelled_self(self) -> float:
        """BSP-style self time: the slowest PE's share of this op."""
        return max(self.pe_time, default=0.0)


class _Frame:
    """Open-sample bookkeeping on the collector's stack."""

    __slots__ = ("sample", "t0", "pe_time0", "pe_comm0", "pe_copy0",
                 "messages0", "bytes0", "child_wall", "child_pe_time",
                 "child_pe_comm", "child_pe_copy", "child_messages",
                 "child_bytes")

    def __init__(self, sample: OpSample, t0: float, report) -> None:
        self.sample = sample
        self.t0 = t0
        self.pe_time0 = list(report.pe_times)
        self.pe_comm0 = list(report.pe_comm_times)
        self.pe_copy0 = list(report.pe_copy_times)
        self.messages0 = report.messages
        self.bytes0 = report.message_bytes
        self.child_wall = 0.0
        self.child_pe_time = [0.0] * len(self.pe_time0)
        self.child_pe_comm = [0.0] * len(self.pe_time0)
        self.child_pe_copy = [0.0] * len(self.pe_time0)
        self.child_messages = 0
        self.child_bytes = 0


class ProfileCollector:
    """Collects per-op attribution samples during one execution.

    The executor calls :meth:`begin`/:meth:`end` around every op
    dispatch (including recursive dispatch inside loop bodies); the
    collector snapshots the machine's cost report and derives self
    deltas, so nested container ops never double-count their children.
    """

    def __init__(self, machine,
                 clock=time.perf_counter) -> None:
        if not machine.network.keep_log:
            raise MachineError(
                "profiling needs the network message log; construct the "
                "Machine with keep_message_log=True")
        self.machine = machine
        self._clock = clock
        self.samples: list[OpSample] = []
        self._stack: list[_Frame] = []
        self._finished = 0
        self.wall_start: float | None = None
        self.wall_end: float = 0.0

    def begin(self, name: str, attrs: dict) -> _Frame:
        now = self._clock()
        if self.wall_start is None:
            self.wall_start = now
        detail = " ".join(f"{k}={v}" for k, v in attrs.items())
        sample = OpSample(index=len(self.samples),
                          parent=self._stack[-1].sample.index
                          if self._stack else -1,
                          depth=len(self._stack), name=name, detail=detail)
        self.samples.append(sample)
        frame = _Frame(sample, now, self.machine.report)
        self._stack.append(frame)
        return frame

    def end(self, frame: _Frame) -> None:
        now = self._clock()
        self.wall_end = now
        popped = self._stack.pop()
        assert popped is frame, "unbalanced profiler begin/end"
        report = self.machine.report
        sample = frame.sample
        npes = len(report.pe_times)

        def deltas(now_vals, before, child):
            # PEs appearing mid-run (ensure_pes growth) start at 0
            return [now_vals[pe]
                    - (before[pe] if pe < len(before) else 0.0)
                    - (child[pe] if pe < len(child) else 0.0)
                    for pe in range(npes)]

        sample.wall_incl = now - frame.t0
        sample.wall_self = sample.wall_incl - frame.child_wall
        sample.t_start = frame.t0 - (self.wall_start
                                     if self.wall_start is not None
                                     else frame.t0)
        sample.pe_time = deltas(report.pe_times, frame.pe_time0,
                                frame.child_pe_time)
        sample.pe_comm = deltas(report.pe_comm_times, frame.pe_comm0,
                                frame.child_pe_comm)
        sample.pe_copy = deltas(report.pe_copy_times, frame.pe_copy0,
                                frame.child_pe_copy)
        msgs_incl = report.messages - frame.messages0
        bytes_incl = report.message_bytes - frame.bytes0
        sample.messages = msgs_incl - frame.child_messages
        sample.msg_bytes = bytes_incl - frame.child_bytes
        sample.finish_order = self._finished
        self._finished += 1

        if self._stack:
            parent = self._stack[-1]
            parent.child_wall += sample.wall_incl
            for pe in range(npes):
                if pe >= len(parent.child_pe_time):
                    parent.child_pe_time.append(0.0)
                    parent.child_pe_comm.append(0.0)
                    parent.child_pe_copy.append(0.0)
                parent.child_pe_time[pe] += \
                    report.pe_times[pe] - \
                    (frame.pe_time0[pe] if pe < len(frame.pe_time0)
                     else 0.0)
                parent.child_pe_comm[pe] += \
                    report.pe_comm_times[pe] - \
                    (frame.pe_comm0[pe] if pe < len(frame.pe_comm0)
                     else 0.0)
                parent.child_pe_copy[pe] += \
                    report.pe_copy_times[pe] - \
                    (frame.pe_copy0[pe] if pe < len(frame.pe_copy0)
                     else 0.0)
            parent.child_messages += msgs_incl
            parent.child_bytes += bytes_incl

    @property
    def wall_total(self) -> float:
        if self.wall_start is None:
            return 0.0
        return self.wall_end - self.wall_start


def _empty_matrix(npes: int) -> dict[str, list[list[int]]]:
    return {"messages": [[0] * npes for _ in range(npes)],
            "bytes": [[0] * npes for _ in range(npes)]}


@dataclass
class CommProfile:
    """The condensed communication profile of one execution.

    ``matrix[cls]["messages"][src][dst]`` counts point-to-point messages
    of one tag class; ``timeline[pe]`` is a list of phase slices in
    modelled seconds; ``validation`` holds the per-op modelled-vs-wall
    rows and the summary error statistic.  Pure-Python values
    throughout, so :meth:`to_dict` round-trips losslessly through JSON
    (see :mod:`repro.obs.export`).
    """

    grid: tuple[int, ...]
    npes: int
    backend: str
    matrix: dict[str, dict[str, list[list[int]]]]
    timeline: list[list[dict]]
    validation: dict
    totals: dict
    kernel: str | None = None
    level: str | None = None
    #: measured per-worker wall-clock tracks, present only for the
    #: ``parallel`` backend: ``[{"worker", "pes", "wall_s", "events":
    #: [{"op", "name", "depth", "t0", "t1"}]}]`` with times in seconds
    #: relative to each worker's first op
    worker_tracks: list[dict] | None = None

    # -- construction --------------------------------------------------------
    @classmethod
    def from_run(cls, machine, collector: ProfileCollector, *,
                 backend: str, kernel: str | None = None,
                 level: str | None = None) -> "CommProfile":
        npes = machine.npes
        matrix = {c: _empty_matrix(npes) for c in MATRIX_CLASSES}
        for rec in machine.network.log:
            m = matrix[tag_class(rec.tag)]
            m["messages"][rec.src][rec.dst] += 1
            m["bytes"][rec.src][rec.dst] += rec.nbytes

        timeline: list[list[dict]] = [[] for _ in range(npes)]
        cursor = [0.0] * npes
        ordered = sorted(collector.samples, key=lambda s: s.finish_order)
        for sample in ordered:
            for pe in range(npes):
                if pe >= len(sample.pe_time):
                    continue
                comm = sample.pe_comm[pe]
                copy = sample.pe_copy[pe]
                compute = max(0.0,
                              sample.pe_time[pe] - comm - copy)
                for phase, dur in (("comm", comm), ("copy", copy),
                                   ("compute", compute)):
                    t0, t1 = cursor[pe], cursor[pe] + dur
                    if t1 <= t0:  # zero, negative, or below float ulp
                        continue
                    timeline[pe].append({
                        "t0": t0, "t1": t1, "phase": phase,
                        "op": sample.index, "name": sample.name})
                    cursor[pe] = t1

        rows = []
        for sample in collector.samples:
            modelled = sample.modelled_self
            if modelled <= 0.0 and sample.wall_self <= 0.0:
                continue
            rows.append({"op": sample.index, "name": sample.name,
                         "detail": sample.detail,
                         "modelled_s": modelled,
                         "wall_s": max(0.0, sample.wall_self),
                         "messages": sample.messages,
                         "bytes": sample.msg_bytes})
        sum_modelled = sum(r["modelled_s"] for r in rows)
        sum_wall = sum(r["wall_s"] for r in rows)
        if sum_modelled > 0:
            scale = sum_wall / sum_modelled
            abs_err = sum(abs(r["modelled_s"] * scale - r["wall_s"])
                          for r in rows)
            mape = (abs_err / sum_wall * 100.0) if sum_wall > 0 else 0.0
        else:
            # A comm-free plan models zero seconds: no scale exists, and
            # any scaled-error statistic would be meaningless.  Report
            # both as absent rather than a silently bogus 0.0.
            scale = None
            mape = None
        validation = {
            "rows": rows,
            "scale_wall_per_modelled": scale,
            "mape_pct": mape,
        }

        report = machine.report
        totals = {
            "messages": report.messages,
            "message_bytes": report.message_bytes,
            "copies": report.copies,
            "copy_elements": report.copy_elements,
            "modelled_time_s": report.modelled_time,
            "wall_s": collector.wall_total,
            "messages_by_class": {
                c: sum(map(sum, matrix[c]["messages"]))
                for c in MATRIX_CLASSES},
            "bytes_by_class": {
                c: sum(map(sum, matrix[c]["bytes"]))
                for c in MATRIX_CLASSES},
        }
        return cls(grid=tuple(machine.grid), npes=npes, backend=backend,
                   matrix=matrix, timeline=timeline,
                   validation=validation, totals=totals, kernel=kernel,
                   level=level,
                   worker_tracks=getattr(collector, "worker_tracks",
                                         None))

    # -- queries -------------------------------------------------------------
    def pair_matrix(self, cls_name: str | None = None,
                    key: str = "messages") -> list[list[int]]:
        """One npes x npes matrix; ``cls_name=None`` sums all classes."""
        if cls_name is not None:
            return [row[:] for row in self.matrix[cls_name][key]]
        out = [[0] * self.npes for _ in range(self.npes)]
        for c in MATRIX_CLASSES:
            for s in range(self.npes):
                for d in range(self.npes):
                    out[s][d] += self.matrix[c][key][s][d]
        return out

    def phase_seconds(self, pe: int) -> dict[str, float]:
        """Total modelled seconds per phase on one PE's timeline."""
        out = {p: 0.0 for p in PHASES}
        for seg in self.timeline[pe]:
            out[seg["phase"]] += seg["t1"] - seg["t0"]
        return out

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            "grid": list(self.grid), "npes": self.npes,
            "backend": self.backend, "kernel": self.kernel,
            "level": self.level, "matrix": self.matrix,
            "timeline": self.timeline, "validation": self.validation,
            "totals": self.totals,
        }
        # only the parallel backend produces tracks; omitting the key
        # otherwise keeps serialized profiles (and goldens) unchanged
        if self.worker_tracks is not None:
            out["worker_tracks"] = self.worker_tracks
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CommProfile":
        return cls(grid=tuple(data["grid"]), npes=data["npes"],
                   backend=data["backend"], matrix=data["matrix"],
                   timeline=data["timeline"],
                   validation=data["validation"], totals=data["totals"],
                   kernel=data.get("kernel"), level=data.get("level"),
                   worker_tracks=data.get("worker_tracks"))
