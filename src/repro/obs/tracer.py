"""Structured tracing and metrics for the compiler and the executor.

A :class:`Tracer` produces a forest of hierarchical :class:`Span`\\ s
(compile -> each pass -> codegen; execute -> each plan op), each carrying
wall-clock timings, free-form attributes, and named counters/gauges.
Traces export as JSONL (one event per line, see :data:`TRACE_SCHEMA`) and
round-trip back via :meth:`Tracer.from_jsonl`; :meth:`Tracer.summary`
renders a human-readable tree.

Tracing is strictly opt-in: every instrumented entry point defaults to
:data:`NULL_TRACER`, whose ``span()`` returns a shared no-op context
manager and whose ``enabled`` flag lets hot paths (the plan executor's op
loop) skip even the cost-report snapshotting that feeds span counters.
Benchmarks therefore run the exact pre-instrumentation code path.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: JSONL schema, line by line:
#:
#: * first line: ``{"type": "trace", "version": 2}``
#: * every other line: ``{"type": "span", "id": str, "parent": str|null,
#:   "name": str, "kind": str, "start": float, "end": float, "dur": float,
#:   "attrs": {...}, "counters": {...}}``
#:
#: Span ids are *stable*: ``parent-path + "/" + name + "#" + ordinal``,
#: where the ordinal counts earlier same-named siblings (e.g.
#: ``compile#0/pass:normalize#0``, ``execute#0/overlap_shift#2``).  Two
#: runs of the same program produce the same ids, so exported traces and
#: profiles diff cleanly; an id changes only when the tree around it
#: does.  Spans are emitted depth-first preorder — a parent always
#: precedes its children, so a stream consumer can rebuild the tree in
#: one pass.  Version-1 traces (integer preorder ids) are still read.
TRACE_SCHEMA = {"type": "trace", "version": 2}

#: Trace versions :meth:`Tracer.from_jsonl` understands.
_READABLE_VERSIONS = (1, 2)


@dataclass
class Span:
    """One timed region with attributes and accumulated counters."""

    name: str
    kind: str = ""
    attrs: dict[str, object] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    t_start: float = 0.0
    t_end: float = 0.0

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent inside the span."""
        return max(0.0, self.t_end - self.t_start)

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (accumulating)."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set counter ``name`` to ``value`` (last write wins)."""
        self.counters[name] = float(value)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span":
        """First descendant (or self) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        raise KeyError(f"no span named {name!r} under {self.name!r}")


class _SpanCtx:
    """Context manager opening/closing one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tr = self._tracer
        if tr._stack:
            tr._stack[-1].children.append(self._span)
        else:
            tr.roots.append(self._span)
        tr._stack.append(self._span)
        self._span.t_start = tr._clock()
        return self._span

    def __exit__(self, *exc) -> bool:
        self._span.t_end = self._tracer._clock()
        self._tracer._stack.pop()
        return False


class Tracer:
    """Collects a forest of spans; see the module docstring."""

    enabled: bool = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- recording -----------------------------------------------------------
    def span(self, name: str, kind: str = "", **attrs) -> _SpanCtx:
        """Open a child span of the current span (or a new root)."""
        return _SpanCtx(self, Span(name=name, kind=kind, attrs=attrs))

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def count(self, name: str, value: float = 1.0) -> None:
        """Accumulate onto the current span's counter (no-op at root)."""
        if self._stack:
            self._stack[-1].count(name, value)

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge on the current span (no-op at root)."""
        if self._stack:
            self._stack[-1].gauge(name, value)

    # -- queries -------------------------------------------------------------
    def spans(self) -> Iterator[Span]:
        """All recorded spans, depth-first preorder across roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Span:
        """First span with the given name anywhere in the forest."""
        for span in self.spans():
            if span.name == name:
                return span
        raise KeyError(f"no span named {name!r}")

    def totals(self) -> dict[str, float]:
        """Counters summed over every span in the forest."""
        out: dict[str, float] = {}
        for span in self.spans():
            for k, v in span.counters.items():
                out[k] = out.get(k, 0.0) + v
        return out

    # -- JSONL export / import ----------------------------------------------
    def iter_with_ids(self) -> Iterator[tuple[Span, str, "str | None"]]:
        """Depth-first ``(span, stable_id, parent_id)`` triples.

        The stable id is the parent's id plus ``/name#ordinal`` (ordinal
        = number of earlier same-named siblings), so identical trees get
        identical ids regardless of wall-clock timings.
        """
        def walk(spans: list[Span], parent_id: "str | None"):
            seen: dict[str, int] = {}
            for span in spans:
                ordinal = seen.get(span.name, 0)
                seen[span.name] = ordinal + 1
                sid = f"{span.name}#{ordinal}" if parent_id is None else \
                    f"{parent_id}/{span.name}#{ordinal}"
                yield span, sid, parent_id
                yield from walk(span.children, sid)

        yield from walk(self.roots, None)

    def events(self) -> list[dict]:
        """Flat event list: header plus one record per span."""
        out: list[dict] = [dict(TRACE_SCHEMA)]
        for span, sid, parent in self.iter_with_ids():
            out.append({
                "type": "span", "id": sid, "parent": parent,
                "name": span.name, "kind": span.kind,
                "start": span.t_start, "end": span.t_end,
                "dur": span.duration,
                "attrs": span.attrs, "counters": span.counters,
            })
        return out

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e, sort_keys=True)
                         for e in self.events()) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    @classmethod
    def from_jsonl(cls, text: str) -> "Tracer":
        """Rebuild a (closed) trace forest from JSONL text."""
        tracer = cls()
        by_id: dict[object, Span] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("type") == "trace":
                if event.get("version") not in _READABLE_VERSIONS:
                    raise ValueError(
                        f"unsupported trace version {event.get('version')}")
                continue
            if event.get("type") != "span":
                continue
            span = Span(name=event["name"], kind=event.get("kind", ""),
                        attrs=dict(event.get("attrs", {})),
                        counters={k: float(v) for k, v in
                                  event.get("counters", {}).items()},
                        t_start=float(event["start"]),
                        t_end=float(event["end"]))
            by_id[event["id"]] = span
            parent = event.get("parent")
            if parent is None:
                tracer.roots.append(span)
            else:
                by_id[parent].children.append(span)
        return tracer

    # -- rendering -----------------------------------------------------------
    def summary(self, max_counters: int = 6) -> str:
        """Human-readable tree: durations, attrs, leading counters."""
        lines: list[str] = []

        def fmt(span: Span, indent: int) -> None:
            pad = "  " * indent
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            counters = ", ".join(
                f"{k}={v:g}" for k, v in
                list(sorted(span.counters.items()))[:max_counters])
            line = f"{pad}{span.name}  [{span.duration * 1e3:.3f} ms]"
            if attrs:
                line += f"  {attrs}"
            if counters:
                line += f"  ({counters})"
            lines.append(line)
            for child in span.children:
                fmt(child, indent + 1)

        for root in self.roots:
            fmt(root, 0)
        return "\n".join(lines)


class _NullSpan:
    """Shared do-nothing span/context-manager for the disabled tracer."""

    __slots__ = ()
    name = kind = ""
    attrs: dict = {}
    counters: dict = {}
    children: tuple = ()
    t_start = t_end = 0.0
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Disabled tracer: records nothing, allocates nothing per call.

    ``span()`` hands back one shared context manager, and ``enabled`` is
    ``False`` so instrumented hot loops can skip counter bookkeeping
    entirely — the zero-overhead-by-default contract.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, kind: str = "", **attrs) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


#: Module-level disabled tracer; instrumented entry points use this when
#: the caller passes ``tracer=None``.
NULL_TRACER = NullTracer()


def coalesce(tracer: "Tracer | None") -> Tracer:
    """The given tracer, or the shared no-op tracer."""
    return tracer if tracer is not None else NULL_TRACER
