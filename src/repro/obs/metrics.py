"""Process-wide metrics registry: counters, gauges, histograms.

The obs layer's third leg next to the tracer (wall-clock spans) and the
comm profiler (modelled-time attribution): a labeled metric registry
every subsystem publishes into — compiler phase timings, plan/kernel
cache events, JIT materialization, per-backend kernel wall clock, and
the parallel backend's barrier/collective series.

Design contract (mirrors :class:`~repro.obs.tracer.NullTracer`):

* **Zero overhead when disabled.**  The process default is
  :data:`NULL_REGISTRY`, whose ``enabled`` flag is ``False`` and whose
  metric handles are one shared no-op object.  Instrumented hot paths
  check ``registry.enabled`` once (or cache a handle of ``None``) and
  skip all bookkeeping; nothing allocates, nothing locks.
* **Deterministic vs wall-clock split.**  Every metric is tagged
  ``deterministic`` (its value is a pure function of the program, not
  of the clock) and, stronger, ``invariant`` (deterministic *and*
  required to be bitwise-identical across all execution backends —
  the modelled/count series :func:`repro.testing.
  backend_equivalence_check` compares).  Wall-clock series are
  ``deterministic=False`` and never participate in equivalence.
* **Versioned export.**  :meth:`MetricsRegistry.to_dict` emits the
  :data:`METRICS_SCHEMA` JSON document; :func:`registry_from_dict` is
  its exact inverse.  The Prometheus text exposition lives in
  :mod:`repro.obs.export`.

* **Context-scoped installs.**  :func:`use_registry` and
  :func:`set_registry` scope the active registry through a
  :class:`contextvars.ContextVar`, so concurrent asyncio tasks and
  threads (the service's request handlers) each see their own
  registry and can never cross-publish series.  Contexts without an
  install fall back to the process default
  (:func:`set_process_default`; :data:`NULL_REGISTRY` unless changed).

Use :func:`use_registry` to install a live registry for a scope::

    from repro.obs import metrics
    with metrics.use_registry() as reg:
        compiled = compile_hpf(src, bindings={"N": 64}, cache=True)
        compiled.run(machine)
    print(reg.to_dict())
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

#: Header object of every metrics JSON document.
METRICS_SCHEMA = {"type": "metrics", "version": 1}

#: Versions :func:`registry_from_dict` understands.
_READABLE_METRICS_VERSIONS = (1,)

#: Default histogram buckets for wall-clock seconds (upper bounds; a
#: +Inf bucket is always implicit).
TIME_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

LabelKey = tuple[tuple[str, str], ...]


def label_key(labels: dict) -> LabelKey:
    """Canonical, hashable form of a label set (sorted name order)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_labels(key: LabelKey) -> str:
    """Prometheus-style rendering of a canonical label key."""
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in key)
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


class Metric:
    """One named metric family; per-label-set values live inside it."""

    kind = "untyped"

    def __init__(self, name: str, help: str, deterministic: bool,
                 invariant: bool, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self.deterministic = deterministic
        self.invariant = invariant
        self._lock = lock
        self._values: dict[LabelKey, object] = {}

    def samples(self) -> list[tuple[LabelKey, object]]:
        """``(label_key, value)`` pairs in sorted label order."""
        with self._lock:
            return sorted(self._values.items())

    def value(self, **labels) -> object | None:
        """The current value under one exact label set (``None`` if the
        series was never touched)."""
        with self._lock:
            return self._values.get(label_key(labels))


class Counter(Metric):
    """Monotonically increasing sum."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc {value})")
        key = label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value


class Gauge(Metric):
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        key = label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value


class Histogram(Metric):
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    ``buckets`` are finite, strictly increasing upper bounds; the
    implicit +Inf bucket catches the rest.  Values per label set are
    ``{"counts": [...], "sum": float, "count": int}`` with
    *non-cumulative* per-bucket counts (exporters cumulate).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, deterministic: bool,
                 invariant: bool, lock: threading.Lock,
                 buckets: tuple[float, ...]) -> None:
        super().__init__(name, help, deterministic, invariant, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2
                             in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name} buckets must be non-empty and "
                f"strictly increasing, got {buckets!r}")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = label_key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = {"counts": [0] * (len(self.buckets) + 1),
                         "sum": 0.0, "count": 0}
                self._values[key] = state
            idx = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            state["counts"][idx] += 1
            state["sum"] += float(value)
            state["count"] += 1


_METRIC_CLASSES = {"counter": Counter, "gauge": Gauge,
                   "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe labeled metric registry.

    Registration is idempotent: asking for an existing name returns the
    existing family (the first registration's help text and flags win),
    but a kind or bucket mismatch is a caller bug and raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    # -- registration -------------------------------------------------------
    def counter(self, name: str, help: str = "",
                deterministic: bool = True,
                invariant: bool = False) -> Counter:
        return self._register(Counter, name, help, deterministic,
                              invariant)

    def gauge(self, name: str, help: str = "",
              deterministic: bool = True,
              invariant: bool = False) -> Gauge:
        return self._register(Gauge, name, help, deterministic,
                              invariant)

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = TIME_BUCKETS,
                  help: str = "", deterministic: bool = True,
                  invariant: bool = False) -> Histogram:
        metric = self._register(Histogram, name, help, deterministic,
                                invariant, buckets=buckets)
        if metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"metric {name} re-registered with different buckets: "
                f"{metric.buckets!r} vs {tuple(buckets)!r}")
        return metric

    def _register(self, cls, name, help, deterministic, invariant,
                  **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, help, deterministic, invariant,
                         threading.Lock(), **kwargs)
            self._metrics[name] = metric
            return metric

    # -- introspection ------------------------------------------------------
    def metrics(self) -> list[Metric]:
        """Registered families sorted by name."""
        with self._lock:
            return [self._metrics[n] for n in sorted(self._metrics)]

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- export -------------------------------------------------------------
    def to_dict(self) -> dict:
        """The versioned :data:`METRICS_SCHEMA` document (plain JSON
        types only)."""
        doc = dict(METRICS_SCHEMA)
        out = []
        for metric in self.metrics():
            entry: dict = {
                "name": metric.name, "kind": metric.kind,
                "help": metric.help,
                "deterministic": metric.deterministic,
                "invariant": metric.invariant,
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            samples = []
            for key, value in metric.samples():
                sample: dict = {"labels": {k: v for k, v in key}}
                if isinstance(metric, Histogram):
                    sample["counts"] = list(value["counts"])
                    sample["sum"] = value["sum"]
                    sample["count"] = value["count"]
                else:
                    sample["value"] = value
                samples.append(sample)
            entry["samples"] = samples
            out.append(entry)
        doc["metrics"] = out
        return doc

    def invariant_snapshot(self) -> dict[str, dict[str, object]]:
        """Every backend-invariant series, keyed ``name -> rendered
        labels -> value`` — the object the equivalence suite compares
        bitwise across backends."""
        snap: dict[str, dict[str, object]] = {}
        for metric in self.metrics():
            if not metric.invariant:
                continue
            series: dict[str, object] = {}
            for key, value in metric.samples():
                if isinstance(metric, Histogram):
                    series[format_labels(key)] = (
                        tuple(value["counts"]), value["sum"],
                        value["count"])
                else:
                    series[format_labels(key)] = value
            snap[metric.name] = series
        return snap


def registry_from_dict(doc: dict) -> MetricsRegistry:
    """Rebuild a registry from its :meth:`MetricsRegistry.to_dict`
    document (exact inverse: ``rebuilt.to_dict() == doc``)."""
    if doc.get("type") != METRICS_SCHEMA["type"]:
        raise ValueError(
            f"not a metrics document: type={doc.get('type')!r}")
    if doc.get("version") not in _READABLE_METRICS_VERSIONS:
        raise ValueError(
            f"unsupported metrics version {doc.get('version')!r}")
    reg = MetricsRegistry()
    for entry in doc.get("metrics", []):
        kind = entry.get("kind")
        if kind == "histogram":
            metric = reg.histogram(entry["name"],
                                   buckets=tuple(entry["buckets"]),
                                   help=entry.get("help", ""),
                                   deterministic=entry["deterministic"],
                                   invariant=entry["invariant"])
        elif kind in _METRIC_CLASSES:
            metric = reg._register(_METRIC_CLASSES[kind], entry["name"],
                                   entry.get("help", ""),
                                   entry["deterministic"],
                                   entry["invariant"])
        else:
            raise ValueError(f"unknown metric kind {kind!r}")
        for sample in entry.get("samples", []):
            key = label_key(sample.get("labels", {}))
            if kind == "histogram":
                metric._values[key] = {
                    "counts": list(sample["counts"]),
                    "sum": sample["sum"], "count": sample["count"]}
            else:
                metric._values[key] = sample["value"]
    return reg


# ---------------------------------------------------------------------------
# the null registry (zero-overhead default)
# ---------------------------------------------------------------------------

class _NullMetric:
    """Shared do-nothing metric handle (every kind's API)."""

    __slots__ = ()

    def inc(self, value: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """Do-nothing registry installed by default.

    ``enabled`` is ``False`` so instrumented hot loops skip their
    bookkeeping entirely; every registration returns the single shared
    no-op metric, so even unconditional call sites stay allocation-free.
    """

    enabled = False

    def counter(self, name: str, help: str = "", **kwargs) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "", **kwargs) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, buckets=TIME_BUCKETS,
                  help: str = "", **kwargs) -> _NullMetric:
        return _NULL_METRIC

    def metrics(self) -> list:
        return []

    def get(self, name: str) -> None:
        return None

    def clear(self) -> None:
        pass

    def to_dict(self) -> dict:
        doc = dict(METRICS_SCHEMA)
        doc["metrics"] = []
        return doc

    def invariant_snapshot(self) -> dict:
        return {}


#: The process-default registry: metrics are opt-in.
NULL_REGISTRY = NullRegistry()

#: Process-wide fallback used when no context-local registry is
#: installed: the zero-overhead null default, replaceable for CLI-style
#: single-tenant processes via :func:`set_process_default`.
_PROCESS_DEFAULT: "MetricsRegistry | NullRegistry" = NULL_REGISTRY

#: Context-local registry scope.  A plain module global here was the
#: concurrency bug the service flushed out: ``use_registry()`` in one
#: asyncio task (or thread) swapped the registry for *every* other
#: in-flight task, cross-publishing concurrent requests' series.  A
#: ``ContextVar`` scopes the install to the current task/thread context
#: — each request's registry is invisible to its neighbours — while
#: ``None`` (the var's default) falls through to the process default,
#: so single-context CLI paths behave exactly as before.
_ACTIVE_VAR: "ContextVar[MetricsRegistry | NullRegistry | None]" = \
    ContextVar("repro_metrics_registry", default=None)


def get_registry() -> "MetricsRegistry | NullRegistry":
    """The currently installed registry (never ``None``): the
    context-local one if a scope is active, else the process default."""
    registry = _ACTIVE_VAR.get()
    return registry if registry is not None else _PROCESS_DEFAULT


def set_registry(registry) -> "MetricsRegistry | NullRegistry":
    """Install ``registry`` in the *current context* (``None`` restores
    the null default); returns the previously effective one.

    The install is context-local: concurrent asyncio tasks and threads
    keep their own registries.  Use :func:`set_process_default` to
    change the fallback every context without an install sees.
    Installing ``None`` (or :data:`NULL_REGISTRY`) clears the
    context-local slot entirely, so the process default shows through
    again rather than being shadowed by a sticky null.
    """
    previous = get_registry()
    if registry is None or registry is NULL_REGISTRY:
        _ACTIVE_VAR.set(None)
    else:
        _ACTIVE_VAR.set(registry)
    return previous


def set_process_default(registry) -> "MetricsRegistry | NullRegistry":
    """Install ``registry`` as the process-wide fallback (``None``
    restores :data:`NULL_REGISTRY`); returns the previous default.

    The fallback is what :func:`get_registry` returns in contexts with
    no :func:`use_registry`/:func:`set_registry` install — fresh
    threads, new asyncio tasks.  Single-tenant CLI processes may point
    it at a live registry so helper threads publish too; the service
    never does (each request runs under its own context-local scope).
    """
    global _PROCESS_DEFAULT
    previous = _PROCESS_DEFAULT
    _PROCESS_DEFAULT = registry if registry is not None \
        else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: "MetricsRegistry | None" = None):
    """Scoped install: a fresh :class:`MetricsRegistry` (or the given
    one) for the block, the previous registry restored after.

    The scope is context-local (:mod:`contextvars`): other asyncio
    tasks and threads never observe it, so concurrent scopes cannot
    cross-publish each other's series.
    """
    reg = registry if registry is not None else MetricsRegistry()
    token = _ACTIVE_VAR.set(reg)
    try:
        yield reg
    finally:
        _ACTIVE_VAR.reset(token)


# ---------------------------------------------------------------------------
# shared cache statistics
# ---------------------------------------------------------------------------

#: ``CacheStats.record`` event name -> counter field.
CACHE_EVENT_FIELDS = {
    "hit": "hits",
    "miss": "misses",
    "invalidation": "invalidations",
    "eviction": "evictions",
    "pruned": "pruned",
    "tmp_swept": "tmp_swept",
}


@dataclass
class CacheStats:
    """Shared counters of every cache layer (plan memory/disk, kernel
    memory/disk).

    ``label`` names the cache for the metrics registry; bumping through
    :meth:`record` both updates the local field and publishes a
    ``repro_cache_events_total{cache=...,event=...}`` increment when a
    live registry is installed.  :meth:`snapshot` is the one shared
    schema every cache exposes — identical keys everywhere.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    pruned: int = 0
    tmp_swept: int = 0
    label: str = ""

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def record(self, event: str, n: int = 1) -> None:
        """Count ``n`` occurrences of ``event`` (a
        :data:`CACHE_EVENT_FIELDS` key) and publish to the installed
        registry."""
        if not n:
            return
        field = CACHE_EVENT_FIELDS[event]
        setattr(self, field, getattr(self, field) + n)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_cache_events_total",
                help="Cache events by cache layer and event kind.",
            ).inc(n, cache=self.label or "unlabeled", event=event)

    def as_dict(self) -> dict[str, float]:
        return {"hits": float(self.hits), "misses": float(self.misses),
                "invalidations": float(self.invalidations),
                "evictions": float(self.evictions),
                "pruned": float(self.pruned),
                "tmp_swept": float(self.tmp_swept),
                "hit_rate": self.hit_rate}

    def snapshot(self) -> dict[str, object]:
        """The unified cache-stats snapshot: ``{"cache": label}`` plus
        the :meth:`as_dict` counters — same keys for every cache
        layer."""
        out: dict[str, object] = {"cache": self.label or "unlabeled"}
        out.update(self.as_dict())
        return out
