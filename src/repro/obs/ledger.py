"""Append-only JSONL run ledger keyed by ``Machine.fingerprint()``.

The persistence seam between measurement and tuning: every recorded run
appends one JSON line holding the machine fingerprint, the plan key,
the backend, the codegen factors, and a metrics snapshot (usually
:meth:`~repro.obs.metrics.MetricsRegistry.to_dict`).  The autotuner
(ROADMAP item 5) filters the ledger by the current machine's
fingerprint to recover every measured configuration; the service
(item 3) reads the tail for scraping.

Durability model:

* **Atomic appends.**  Each record is serialized to one line and
  written with a single ``os.write`` on an ``O_APPEND`` descriptor —
  POSIX guarantees the append offset is resolved atomically per write,
  so concurrent writers (worker processes, parallel experiment
  drivers) interleave whole lines, never splice partial ones.
* **Corrupt-line tolerance.**  A reader skips any line that does not
  parse as a versioned record (a writer killed mid-``write`` can leave
  at most one truncated trailing line); the skip count is surfaced on
  :attr:`RunLedger.corrupt_lines`.  An appender that finds the file
  ending without a newline (a torn tail) prepends one, so its record
  starts on a fresh line and only the torn line stays unreadable —
  the ledger self-heals on the next append.
* **Schema-versioned.**  Records carry ``{"type": "run", "version"}``;
  unknown versions are skipped (counted in
  :attr:`RunLedger.skipped_versions`), not errors, so old readers
  survive new writers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

#: Header fields of every ledger record.
LEDGER_SCHEMA = {"type": "run", "version": 1}

#: Versions :meth:`RunLedger.records` understands.
_READABLE_LEDGER_VERSIONS = (1,)


def _torn_tail(path: Path) -> bool:
    """Whether ``path`` ends without a newline (a torn last line)."""
    try:
        with open(path, "rb") as f:
            f.seek(0, os.SEEK_END)
            if f.tell() == 0:
                return False
            f.seek(-1, os.SEEK_END)
            return f.read(1) != b"\n"
    except (FileNotFoundError, OSError):
        return False


class RunLedger:
    """One JSONL ledger file of measured runs."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        #: Unparseable lines seen by the last read (torn tails, junk).
        self.corrupt_lines = 0
        #: Records with an unreadable schema version in the last read.
        self.skipped_versions = 0

    # -- writing ------------------------------------------------------------
    def append(self, *, fingerprint: str | None = None, machine=None,
               plan_key: str = "", backend: str = "",
               factors: dict | None = None,
               metrics: dict | None = None,
               extra: dict | None = None,
               timestamp: float | None = None) -> dict:
        """Append one run record; returns the record written.

        Pass either a ``fingerprint`` string or the :class:`Machine`
        the run executed on.  ``metrics`` is any JSON-serializable
        snapshot (typically ``registry.to_dict()``); ``factors`` the
        tunable knobs of the run (level, tile/unroll, jit, ...).
        """
        if machine is not None:
            fingerprint = machine.fingerprint()
        if not fingerprint:
            raise ValueError(
                "ledger record needs a machine fingerprint (pass "
                "fingerprint=... or machine=...)")
        record = dict(LEDGER_SCHEMA)
        record.update({
            "timestamp": float(time.time() if timestamp is None
                               else timestamp),
            "fingerprint": fingerprint,
            "plan_key": plan_key,
            "backend": backend,
            "factors": dict(factors or {}),
            "metrics": metrics if metrics is not None else {},
        })
        if extra:
            record["extra"] = dict(extra)
        line = json.dumps(record, sort_keys=True)
        data = (line + "\n").encode()
        if _torn_tail(self.path):
            # a writer died mid-write: start this record on a fresh
            # line (a racing healer only adds a blank line, which
            # readers skip)
            data = b"\n" + data
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One O_APPEND write per record: concurrent appenders from any
        # number of processes interleave whole lines.
        fd = os.open(self.path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        return record

    # -- reading ------------------------------------------------------------
    def records(self, fingerprint: str | None = None) -> list[dict]:
        """Every readable record, oldest first, optionally filtered to
        one machine fingerprint.  Corrupt lines and unknown schema
        versions are skipped and counted, never raised."""
        self.corrupt_lines = 0
        self.skipped_versions = 0
        try:
            text = self.path.read_text()
        except (FileNotFoundError, OSError):
            return []
        out = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.corrupt_lines += 1
                continue
            if not isinstance(record, dict) or \
                    record.get("type") != LEDGER_SCHEMA["type"]:
                self.corrupt_lines += 1
                continue
            if record.get("version") not in _READABLE_LEDGER_VERSIONS:
                self.skipped_versions += 1
                continue
            if fingerprint is not None and \
                    record.get("fingerprint") != fingerprint:
                continue
            out.append(record)
        return out

    def fingerprints(self) -> dict[str, int]:
        """Record count per machine fingerprint."""
        counts: dict[str, int] = {}
        for record in self.records():
            fp = record.get("fingerprint", "")
            counts[fp] = counts.get(fp, 0) + 1
        return counts

    def latest(self, fingerprint: str | None = None) -> dict | None:
        """The newest readable record (for one machine, if given)."""
        records = self.records(fingerprint)
        return records[-1] if records else None

    def __len__(self) -> int:
        return len(self.records())
