"""Exporters for communication profiles, traces, and metrics.

Three machine-readable formats leave the repo from here:

* **Chrome Trace Event JSON** (:func:`chrome_trace`), loadable in
  Perfetto / ``chrome://tracing``: one track (thread) per PE carrying the
  profile's modelled-time phase slices, plus a separate process track
  with the compiler's wall-clock pass spans when a
  :class:`~repro.obs.tracer.Tracer` is supplied.  Modelled time and wall
  time run on different clocks, so they live in different ``pid``
  tracks rather than sharing a timeline.  Export degrades gracefully:
  an op-less profile (zero iterations, comm-free plans) yields valid
  metadata-only tracks, missing timeline rows or worker-event fields
  are tolerated, and durations are clamped non-negative.
* **profile.json** (:func:`profile_to_json` / :func:`profile_from_json`),
  the versioned serialization of a :class:`~repro.obs.profile.CommProfile`
  (header :data:`PROFILE_SCHEMA`).  ``from(to(p))`` is an exact
  round-trip: profiles contain only ints, floats, strings, lists, and
  dicts, and ``json`` preserves all of them losslessly.
* **metrics** (:func:`metrics_to_json` / :func:`metrics_from_json` and
  :func:`prometheus_text`), the versioned JSON document of a
  :class:`~repro.obs.metrics.MetricsRegistry` and its Prometheus text
  exposition (``# HELP`` / ``# TYPE`` / sample lines, histogram
  ``_bucket``/``_sum``/``_count`` expansion with cumulative ``le``
  buckets).
"""

from __future__ import annotations

import json
import math

from repro.machine.topology import ProcessorGrid
from repro.obs.metrics import (
    Histogram, MetricsRegistry, format_labels, registry_from_dict,
)
from repro.obs.profile import CommProfile
from repro.obs.tracer import Tracer

#: Header object of every profile.json document.
PROFILE_SCHEMA = {"type": "comm_profile", "version": 1}

#: Versions :func:`profile_from_json` understands.
_READABLE_PROFILE_VERSIONS = (1,)

#: Chrome-trace process ids: compile spans (wall clock) vs execution
#: timeline (modelled clock) vs measured per-worker wall clock (present
#: only for the ``parallel`` backend).
COMPILE_PID = 0
EXEC_PID = 1
WORKERS_PID = 2


def _sec_to_us(t: float) -> float:
    return t * 1e6


def chrome_trace(profile: CommProfile,
                 tracer: "Tracer | None" = None) -> dict:
    """Chrome Trace Event representation of a profile.

    Returns the JSON-object format (``{"traceEvents": [...]}``) with
    complete (``ph: "X"``) events.  Timestamps are microseconds;
    execution events use the profile's modelled clock starting at 0,
    compile events (if ``tracer`` given) use wall clock rebased to the
    earliest span.
    """
    events: list[dict] = []
    grid = ProcessorGrid(tuple(profile.grid))

    events.append({"name": "process_name", "ph": "M", "pid": EXEC_PID,
                   "tid": 0,
                   "args": {"name": f"execution (modelled time, "
                                    f"{profile.backend} backend)"}})
    timeline = profile.timeline or []
    for pe in range(profile.npes):
        coords = "x".join(str(c) for c in grid.coords(pe))
        events.append({"name": "thread_name", "ph": "M", "pid": EXEC_PID,
                       "tid": pe, "args": {"name": f"PE {pe} ({coords})"}})
        # a deserialized or op-less profile may carry fewer timeline
        # rows than PEs; missing rows are empty tracks, not errors
        for seg in (timeline[pe] if pe < len(timeline) else []):
            events.append({
                "name": seg.get("name", "?"),
                "cat": seg.get("phase", "?"), "ph": "X",
                "pid": EXEC_PID, "tid": pe,
                "ts": _sec_to_us(seg.get("t0", 0.0)),
                "dur": _sec_to_us(max(0.0, seg.get("t1", 0.0)
                                      - seg.get("t0", 0.0))),
                "args": {"phase": seg.get("phase", "?"),
                         "op": seg.get("op", -1)},
            })

    if profile.worker_tracks:
        events.append({"name": "process_name", "ph": "M",
                       "pid": WORKERS_PID, "tid": 0,
                       "args": {"name": "workers (measured wall time)"}})
        for track in profile.worker_tracks:
            wid = track.get("worker", 0)
            pes = ",".join(str(p) for p in track.get("pes", []))
            events.append({"name": "thread_name", "ph": "M",
                           "pid": WORKERS_PID, "tid": wid,
                           "args": {"name": f"worker {wid} "
                                            f"(PEs {pes})"}})
            for ev in track.get("events", []):
                events.append({
                    "name": ev.get("name", "?"), "cat": "worker-wall",
                    "ph": "X", "pid": WORKERS_PID, "tid": wid,
                    "ts": _sec_to_us(ev.get("t0", 0.0)),
                    "dur": _sec_to_us(max(0.0, ev.get("t1", 0.0)
                                          - ev.get("t0", 0.0))),
                    "args": {"op": ev.get("op", -1),
                             "depth": ev.get("depth", 0)},
                })

    if tracer is not None and tracer.roots:
        events.append({"name": "process_name", "ph": "M",
                       "pid": COMPILE_PID, "tid": 0,
                       "args": {"name": "compiler (wall time)"}})
        events.append({"name": "thread_name", "ph": "M",
                       "pid": COMPILE_PID, "tid": 0,
                       "args": {"name": "passes"}})
        t0 = min(span.t_start for span in tracer.spans())
        for span, sid, _parent in tracer.iter_with_ids():
            args: dict[str, object] = {"id": sid}
            args.update({k: v for k, v in span.attrs.items()})
            args.update({k: v for k, v in span.counters.items()})
            events.append({
                "name": span.name, "cat": span.kind or "span", "ph": "X",
                "pid": COMPILE_PID, "tid": 0,
                "ts": _sec_to_us(span.t_start - t0),
                "dur": _sec_to_us(max(0.0, span.duration)),
                "args": args,
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro-comm-profile-chrome",
            "grid": list(profile.grid),
            "backend": profile.backend,
            "kernel": profile.kernel,
            "level": profile.level,
        },
    }


def write_chrome_trace(profile: CommProfile, path: str,
                       tracer: "Tracer | None" = None) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(profile, tracer), fh, sort_keys=True)
        fh.write("\n")


def profile_to_json(profile: CommProfile) -> str:
    """Serialize a profile to its versioned JSON document."""
    doc = dict(PROFILE_SCHEMA)
    doc["profile"] = profile.to_dict()
    return json.dumps(doc, sort_keys=True) + "\n"


def profile_from_json(text: str) -> CommProfile:
    """Parse a profile.json document (exact inverse of
    :func:`profile_to_json`)."""
    doc = json.loads(text)
    if doc.get("type") != PROFILE_SCHEMA["type"]:
        raise ValueError(f"not a comm_profile document: "
                         f"type={doc.get('type')!r}")
    if doc.get("version") not in _READABLE_PROFILE_VERSIONS:
        raise ValueError(
            f"unsupported comm_profile version {doc.get('version')!r}")
    return CommProfile.from_dict(doc["profile"])


def write_profile(profile: CommProfile, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(profile_to_json(profile))


def read_profile(path: str) -> CommProfile:
    with open(path) as fh:
        return profile_from_json(fh.read())


# ---------------------------------------------------------------------------
# metrics: versioned JSON + Prometheus text exposition
# ---------------------------------------------------------------------------

def metrics_to_json(registry) -> str:
    """Serialize a :class:`~repro.obs.metrics.MetricsRegistry` to its
    versioned JSON document."""
    return json.dumps(registry.to_dict(), sort_keys=True) + "\n"


def metrics_from_json(text: str) -> MetricsRegistry:
    """Rebuild a registry from a metrics JSON document (exact inverse
    of :func:`metrics_to_json`)."""
    return registry_from_dict(json.loads(text))


def write_metrics(registry, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(metrics_to_json(registry))


def read_metrics(path: str) -> MetricsRegistry:
    with open(path) as fh:
        return metrics_from_json(fh.read())


def _prom_value(value: float) -> str:
    """Prometheus sample-value rendering: full float precision,
    ``+Inf``/``-Inf``/``NaN`` spelled the Prometheus way."""
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _prom_escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(key, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    return format_labels(tuple(key) + tuple(extra))


def prometheus_text(registry) -> str:
    """Prometheus text exposition (format version 0.0.4) of every
    registered metric.

    Counters and gauges emit one sample line per label set; histograms
    expand to cumulative ``_bucket{le=...}`` lines plus ``_sum`` and
    ``_count``.  Non-deterministic (wall-clock) series are annotated
    with a ``# repro-nondeterministic`` comment line so scrapers and
    humans can tell the two series classes apart without parsing the
    JSON export.
    """
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} "
                         f"{_prom_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if not metric.deterministic:
            lines.append(f"# repro-nondeterministic {metric.name}")
        if isinstance(metric, Histogram):
            for key, state in metric.samples():
                cumulative = 0
                for bound, count in zip(metric.buckets,
                                        state["counts"]):
                    cumulative += count
                    labels = _prom_labels(
                        key, (("le", _prom_value(bound)),))
                    lines.append(f"{metric.name}_bucket{labels} "
                                 f"{cumulative}")
                cumulative += state["counts"][-1]
                labels = _prom_labels(key, (("le", "+Inf"),))
                lines.append(f"{metric.name}_bucket{labels} "
                             f"{cumulative}")
                base = format_labels(key)
                lines.append(f"{metric.name}_sum{base} "
                             f"{_prom_value(state['sum'])}")
                lines.append(f"{metric.name}_count{base} "
                             f"{state['count']}")
        else:
            for key, value in metric.samples():
                lines.append(f"{metric.name}{format_labels(key)} "
                             f"{_prom_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(prometheus_text(registry))
