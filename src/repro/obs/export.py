"""Exporters for communication profiles and traces.

Two machine-readable formats leave the repo from here:

* **Chrome Trace Event JSON** (:func:`chrome_trace`), loadable in
  Perfetto / ``chrome://tracing``: one track (thread) per PE carrying the
  profile's modelled-time phase slices, plus a separate process track
  with the compiler's wall-clock pass spans when a
  :class:`~repro.obs.tracer.Tracer` is supplied.  Modelled time and wall
  time run on different clocks, so they live in different ``pid``
  tracks rather than sharing a timeline.
* **profile.json** (:func:`profile_to_json` / :func:`profile_from_json`),
  the versioned serialization of a :class:`~repro.obs.profile.CommProfile`
  (header :data:`PROFILE_SCHEMA`).  ``from(to(p))`` is an exact
  round-trip: profiles contain only ints, floats, strings, lists, and
  dicts, and ``json`` preserves all of them losslessly.
"""

from __future__ import annotations

import json

from repro.machine.topology import ProcessorGrid
from repro.obs.profile import CommProfile
from repro.obs.tracer import Tracer

#: Header object of every profile.json document.
PROFILE_SCHEMA = {"type": "comm_profile", "version": 1}

#: Versions :func:`profile_from_json` understands.
_READABLE_PROFILE_VERSIONS = (1,)

#: Chrome-trace process ids: compile spans (wall clock) vs execution
#: timeline (modelled clock) vs measured per-worker wall clock (present
#: only for the ``parallel`` backend).
COMPILE_PID = 0
EXEC_PID = 1
WORKERS_PID = 2


def _sec_to_us(t: float) -> float:
    return t * 1e6


def chrome_trace(profile: CommProfile,
                 tracer: "Tracer | None" = None) -> dict:
    """Chrome Trace Event representation of a profile.

    Returns the JSON-object format (``{"traceEvents": [...]}``) with
    complete (``ph: "X"``) events.  Timestamps are microseconds;
    execution events use the profile's modelled clock starting at 0,
    compile events (if ``tracer`` given) use wall clock rebased to the
    earliest span.
    """
    events: list[dict] = []
    grid = ProcessorGrid(tuple(profile.grid))

    events.append({"name": "process_name", "ph": "M", "pid": EXEC_PID,
                   "tid": 0,
                   "args": {"name": f"execution (modelled time, "
                                    f"{profile.backend} backend)"}})
    for pe in range(profile.npes):
        coords = "x".join(str(c) for c in grid.coords(pe))
        events.append({"name": "thread_name", "ph": "M", "pid": EXEC_PID,
                       "tid": pe, "args": {"name": f"PE {pe} ({coords})"}})
        for seg in profile.timeline[pe]:
            events.append({
                "name": seg["name"], "cat": seg["phase"], "ph": "X",
                "pid": EXEC_PID, "tid": pe,
                "ts": _sec_to_us(seg["t0"]),
                "dur": _sec_to_us(seg["t1"] - seg["t0"]),
                "args": {"phase": seg["phase"], "op": seg["op"]},
            })

    if profile.worker_tracks:
        events.append({"name": "process_name", "ph": "M",
                       "pid": WORKERS_PID, "tid": 0,
                       "args": {"name": "workers (measured wall time)"}})
        for track in profile.worker_tracks:
            wid = track["worker"]
            pes = ",".join(str(p) for p in track["pes"])
            events.append({"name": "thread_name", "ph": "M",
                           "pid": WORKERS_PID, "tid": wid,
                           "args": {"name": f"worker {wid} "
                                            f"(PEs {pes})"}})
            for ev in track["events"]:
                events.append({
                    "name": ev["name"], "cat": "worker-wall", "ph": "X",
                    "pid": WORKERS_PID, "tid": wid,
                    "ts": _sec_to_us(ev["t0"]),
                    "dur": _sec_to_us(max(0.0, ev["t1"] - ev["t0"])),
                    "args": {"op": ev["op"], "depth": ev["depth"]},
                })

    if tracer is not None and tracer.roots:
        events.append({"name": "process_name", "ph": "M",
                       "pid": COMPILE_PID, "tid": 0,
                       "args": {"name": "compiler (wall time)"}})
        events.append({"name": "thread_name", "ph": "M",
                       "pid": COMPILE_PID, "tid": 0,
                       "args": {"name": "passes"}})
        t0 = min(span.t_start for span in tracer.spans())
        for span, sid, _parent in tracer.iter_with_ids():
            args: dict[str, object] = {"id": sid}
            args.update({k: v for k, v in span.attrs.items()})
            args.update({k: v for k, v in span.counters.items()})
            events.append({
                "name": span.name, "cat": span.kind or "span", "ph": "X",
                "pid": COMPILE_PID, "tid": 0,
                "ts": _sec_to_us(span.t_start - t0),
                "dur": _sec_to_us(span.duration),
                "args": args,
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro-comm-profile-chrome",
            "grid": list(profile.grid),
            "backend": profile.backend,
            "kernel": profile.kernel,
            "level": profile.level,
        },
    }


def write_chrome_trace(profile: CommProfile, path: str,
                       tracer: "Tracer | None" = None) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(profile, tracer), fh, sort_keys=True)
        fh.write("\n")


def profile_to_json(profile: CommProfile) -> str:
    """Serialize a profile to its versioned JSON document."""
    doc = dict(PROFILE_SCHEMA)
    doc["profile"] = profile.to_dict()
    return json.dumps(doc, sort_keys=True) + "\n"


def profile_from_json(text: str) -> CommProfile:
    """Parse a profile.json document (exact inverse of
    :func:`profile_to_json`)."""
    doc = json.loads(text)
    if doc.get("type") != PROFILE_SCHEMA["type"]:
        raise ValueError(f"not a comm_profile document: "
                         f"type={doc.get('type')!r}")
    if doc.get("version") not in _READABLE_PROFILE_VERSIONS:
        raise ValueError(
            f"unsupported comm_profile version {doc.get('version')!r}")
    return CommProfile.from_dict(doc["profile"])


def write_profile(profile: CommProfile, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(profile_to_json(profile))


def read_profile(path: str) -> CommProfile:
    with open(path) as fh:
        return profile_from_json(fh.read())
