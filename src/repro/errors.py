"""Exception hierarchy for the stencil-compiler reproduction.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch compiler problems without swallowing genuine Python bugs.
The hierarchy mirrors the major subsystems: frontend (lexing/parsing),
semantic analysis, the optimization pipeline, and the simulated machine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SourceError(ReproError):
    """A problem attributable to a location in the HPF source text.

    Parameters
    ----------
    message:
        Human readable description.
    line, column:
        1-based position in the original source, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            where = f"line {line}" + (f", col {column}" if column else "")
            message = f"{where}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """The lexer encountered an unrecognised character sequence."""


class ParseError(SourceError):
    """The parser could not derive a statement from the token stream."""


class SemanticError(SourceError):
    """The program is syntactically valid but semantically inconsistent
    (undeclared array, rank mismatch, conflicting distribution, ...)."""


class UnsupportedFeatureError(SemanticError):
    """A legal HPF construct that this reproduction deliberately does not
    implement (e.g. CYCLIC distributions)."""


class UnsupportedDistributionError(UnsupportedFeatureError):
    """Raised when a distribution other than BLOCK/replicated is requested."""


class PipelineError(ReproError):
    """An optimization pass produced or received inconsistent IR."""


class PlanVerificationError(PipelineError):
    """The plan verifier found a structurally or semantically invalid
    plan (uncovered offset read, use of an unallocated array, halo or
    RSD inconsistency, ...)."""


class PatternMatchError(ReproError):
    """Raised by the CM-2 style pattern-matching baseline when the input
    program is not a single-statement sum-of-products CSHIFT stencil.

    The whole point of the paper is that its strategy never raises the
    analogue of this error; the baseline raises it to reproduce the
    robustness comparison of section 6.
    """


class MachineError(ReproError):
    """Base class for errors from the simulated distributed machine."""


class SimulatedOutOfMemoryError(MachineError):
    """A processing element exceeded its configured memory capacity.

    Reproduces the Figure 11 behaviour where the single-statement 9-point
    stencil exhausts per-node memory on the SP-2.
    """

    def __init__(self, pe: int, requested: int, in_use: int,
                 capacity: int) -> None:
        self.pe = pe
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        super().__init__(
            f"PE {pe}: allocation of {requested} bytes exceeds capacity "
            f"({in_use} bytes in use of {capacity})")


class ExecutionError(MachineError):
    """A compiled plan referenced state missing from the machine."""


class UsageError(ExecutionError):
    """Invalid caller-supplied runtime configuration.

    Raised when an API or CLI argument (worker count, codegen factor,
    jit mode, ...) is out of range or inconsistent *before* any machine
    state is touched, so misconfiguration fails fast with a named error
    instead of surfacing later as modular-arithmetic garbage or a hang.

    Subclasses :class:`ExecutionError` so existing callers that guard
    backend entry points with the broader class keep working.
    """
