"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compile``   compile an HPF file and print the compilation report, the
              pass-by-pass IR trace (``--trace``), and the generated
              SPMD program (``--plan``).
``run``       compile and execute on the simulated machine with seeded
              random inputs, printing result digests and the cost
              summary.
``trace``     compile and execute a named kernel (or file) with the
              structured tracer enabled, printing a span tree and
              optionally writing the JSONL trace (``-o``).
``profile``   compile and execute with the communication profiler:
              per-PE comm matrices split by message class, per-PE phase
              timelines, and the cost-model validation table; exports
              profile.json (``-o``) and Chrome/Perfetto traces
              (``--chrome``).
``plan``      compile a named kernel (or file) and print its plan IR —
              the textual SPMD program by default, the versioned JSON
              document with ``--json``; ``-o`` writes to a file.
``metrics``   compile and execute a named kernel (or file) with the
              metrics registry live, printing a readable dump of every
              series; ``--json`` emits the versioned JSON document,
              ``--prom`` the Prometheus text exposition, ``-o`` writes
              a file (``.prom`` suffix selects the exposition format),
              and ``--ledger PATH`` appends the run to a JSONL ledger.
``serve``     start the compile-and-run HTTP service: POST /compile
              and /run job documents, GET /plan/<key>, /metrics
              (Prometheus), /healthz, POST /cache/warm and
              /cache/evict.  See README "Compile-and-run service".
``experiments``  regenerate the paper's evaluation exhibits.

``run`` and ``profile`` accept ``--metrics FILE`` to capture the same
registry during a normal run, and ``run`` accepts ``--ledger PATH``.

Every compiling command takes ``--cache-dir PATH`` to memoize plans in
an on-disk :class:`~repro.compiler.cache.PersistentPlanCache` that
survives across processes, and ``--plan-passes`` to enable the
post-codegen plan optimizations of :mod:`repro.plan.passes`.

Examples
--------
::

   python -m repro compile kernel.f90 --bind N=512 --level O4 \\
          --output T --trace --plan
   python -m repro run kernel.f90 --bind N=256 --grid 2x2 --iters 10
   python -m repro profile nine_point --grid 4x4 --opt O4 \\
          --chrome out.json
   python -m repro plan purdue9 --json -o purdue9.plan.json
   python -m repro experiments fig17
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.analysis.report import describe_plan, describe_result
from repro.compiler import compile_hpf
from repro.errors import ReproError
from repro.machine import Machine


def _parse_bindings(pairs: list[str]) -> dict[str, int]:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--bind expects NAME=VALUE, got {pair!r}")
        name, value = pair.split("=", 1)
        try:
            out[name.strip()] = int(value)
        except ValueError:
            raise SystemExit(
                f"--bind expects an integer value, got {pair!r}") from None
    return out


def _workers_arg(text: str) -> int:
    """``--workers`` parser: fail at the CLI boundary, not in the
    backend's ownership math."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer worker count, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1, got {value}")
    return value


def _codegen_context(args: argparse.Namespace):
    """Scoped codegen options for ``--backend compiled`` runs.

    Maps ``--tile``/``--unroll``/``--jit`` onto a
    :func:`repro.codegen.codegen_options` override, and points the
    kernel disk cache at ``<--cache-dir>/kernels`` so generated sources
    persist next to the plan cache.
    """
    import os
    from contextlib import nullcontext

    overrides = {}
    for field in ("tile", "unroll", "jit"):
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    if getattr(args, "cache_dir", None):
        overrides["cache_dir"] = os.path.join(args.cache_dir, "kernels")
    if not overrides:
        return nullcontext()
    from repro.codegen import codegen_options
    return codegen_options(**overrides)


def _parse_grid(text: str) -> tuple[int, ...]:
    try:
        grid = tuple(int(p) for p in text.lower().split("x"))
    except ValueError:
        raise SystemExit(
            f"--grid expects NxM (e.g. 2x2), got {text!r}") from None
    if not grid or any(g < 1 for g in grid):
        raise SystemExit(
            f"--grid extents must be positive, got {text!r}")
    return grid


def _resolve_cache(args: argparse.Namespace):
    """``--cache-dir`` wins (persistent, cross-process); ``--cache``
    selects the process-wide in-memory default; otherwise no cache."""
    if getattr(args, "cache_dir", None):
        from repro.compiler import PersistentPlanCache
        return PersistentPlanCache(args.cache_dir)
    return getattr(args, "cache", False)


def _resolve_source(name_or_file: str, args: argparse.Namespace):
    """A kernel name from the registry, or a path to HPF source.

    Returns ``(source, bindings, outputs)`` with the registry defaults
    merged under any explicit ``--bind``/``--output`` flags.
    """
    import os

    from repro import kernels

    bindings = _parse_bindings(args.bind)
    outputs = set(args.output) or None
    if os.path.exists(name_or_file):
        return open(name_or_file).read(), bindings, outputs
    spec = kernels.resolve_kernel(name_or_file)  # KeyError -> ReproError?
    return (spec.source, {**spec.default_bindings, **bindings},
            outputs or set(spec.outputs))


def _metrics_scope(args: argparse.Namespace):
    """A live registry scope when any metrics output was requested,
    else the null default (zero overhead)."""
    from contextlib import nullcontext

    from repro.obs import metrics as obs_metrics
    if getattr(args, "metrics", None) or getattr(args, "ledger", None):
        return obs_metrics.use_registry(obs_metrics.MetricsRegistry())
    return nullcontext()


def _write_metrics(registry, path: str) -> None:
    """Write ``registry`` to ``path``: Prometheus text exposition for a
    ``.prom``/``.txt`` suffix, the versioned JSON document otherwise."""
    from repro.obs import write_metrics, write_prometheus
    if path.endswith((".prom", ".txt")):
        write_prometheus(registry, path)
    else:
        write_metrics(registry, path)
    print(f"wrote metrics to {path}", file=sys.stderr)


def _plan_key(compiled) -> str:
    """Machine-independent identity of the executed plan: the sha256 of
    its canonical JSON serialization."""
    import hashlib

    from repro.plan import plan_to_json
    return hashlib.sha256(
        plan_to_json(compiled.plan).encode()).hexdigest()


def _ledger_append(args: argparse.Namespace, registry, compiled,
                   machine: Machine, backend: str) -> None:
    from repro.codegen.options import current_options
    from repro.obs import RunLedger
    metrics_doc = registry.to_dict() if registry is not None else None
    # re-enter the codegen override scope so recorded factors match
    # what the run actually executed under (--tile/--unroll/--jit)
    with _codegen_context(args):
        opts = current_options()
    ledger = RunLedger(args.ledger)
    ledger.append(
        machine=machine,
        plan_key=_plan_key(compiled),
        backend=backend,
        factors={"level": args.level, "tile": opts.tile,
                 "unroll": opts.unroll, "jit": opts.jit,
                 "codegen": opts.factor_fingerprint()},
        metrics=metrics_doc,
        extra={"grid": "x".join(map(str, machine.grid)),
               "iterations": getattr(args, "iters", 1)})
    print(f"appended run to ledger {args.ledger}", file=sys.stderr)


def _add_cache_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cache", action="store_true",
                   help="memoize compilation in the process-wide plan "
                        "cache (repeat compiles of identical "
                        "source/options hit in microseconds)")
    p.add_argument("--cache-dir", default=None, metavar="PATH",
                   help="memoize compiled plans on disk under PATH "
                        "(survives across processes; overrides --cache)")
    p.add_argument("--plan-passes", action="store_true",
                   help="run the post-codegen plan optimizations: op "
                        "scheduling, redundant-shift coalescing, dead "
                        "alloc elimination")


def _add_codegen_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--tile", type=int, default=None, metavar="T",
                   help="loop-tiling factor for --backend compiled "
                        "(0 disables; default from REPRO_COMPILED_TILE)")
    p.add_argument("--unroll", type=int, default=None, metavar="U",
                   help="unroll-and-jam factor for --backend compiled "
                        "(0 uses each nest's modelled factor; default "
                        "from REPRO_COMPILED_UNROLL)")
    p.add_argument("--jit", default=None,
                   choices=("auto", "numba", "python", "off"),
                   help="JIT mode for --backend compiled: auto "
                        "(numba when importable, else slab fallback "
                        "with a warning), numba (required), python "
                        "(generated source un-jitted), off")


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("file", help="HPF source file")
    p.add_argument("--bind", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="bind a size parameter (repeatable)")
    p.add_argument("--level", default="O4",
                   help="optimization level O0..O4 (default O4)")
    p.add_argument("--output", action="append", default=[],
                   help="array live out of the routine (repeatable)")
    p.add_argument("--cse", action="store_true",
                   help="eliminate duplicate shifts during normalization")
    _add_cache_flags(p)
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON report instead of "
                        "prose")


def cmd_compile(args: argparse.Namespace) -> int:
    source = open(args.file).read()
    compiled = compile_hpf(source, bindings=_parse_bindings(args.bind),
                           level=args.level,
                           outputs=set(args.output) or None,
                           cse=args.cse, keep_trace=args.trace,
                           plan_passes=args.plan_passes,
                           cache=_resolve_cache(args))
    r = compiled.report
    if args.json:
        print(json.dumps({
            "level": r.level,
            "overlap_shifts": r.overlap_shifts,
            "full_shifts": r.full_shifts,
            "loop_nests": r.loop_nests,
            "fused_statements": r.fused_statements,
            "temporaries": r.temporaries,
            "temp_bytes_global": r.temp_bytes_global,
            "copies_inserted": r.copies_inserted,
        }, indent=2))
        return 0
    print(f"level {r.level}: {r.overlap_shifts} overlap shifts, "
          f"{r.full_shifts} full shifts, {r.loop_nests} loop nests "
          f"({r.fused_statements} statements fused), "
          f"{r.temporaries} temporaries, "
          f"{r.copies_inserted} compensating copies")
    if args.trace and compiled.trace is not None:
        print()
        print(compiled.trace)
    if args.plan:
        print()
        print(describe_plan(compiled.plan))
    if args.fortran:
        print()
        print(compiled.emit_fortran())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    source = open(args.file).read()
    with _metrics_scope(args) as registry:
        compiled = compile_hpf(source,
                               bindings=_parse_bindings(args.bind),
                               level=args.level,
                               outputs=set(args.output) or None,
                               cse=args.cse,
                               plan_passes=args.plan_passes,
                               cache=_resolve_cache(args))
        from repro.machine.presets import by_name
        machine = Machine(grid=_parse_grid(args.grid),
                          cost_model=by_name(args.machine),
                          memory_per_pe=args.memory_mb * 1024 * 1024
                          if args.memory_mb else None)
        rng = np.random.default_rng(args.seed)
        inputs = {}
        for name, decl in compiled.plan.arrays.items():
            if name in compiled.plan.entry_arrays:
                inputs[name] = rng.standard_normal(decl.shape).astype(
                    decl.dtype)
        with _codegen_context(args):
            result = compiled.run(machine, inputs=inputs,
                                  iterations=args.iters,
                                  backend=args.backend,
                                  workers=args.workers)
    if args.metrics:
        _write_metrics(registry, args.metrics)
    if args.ledger:
        _ledger_append(args, registry, compiled, machine, args.backend)
    if args.json:
        out = result.summary()
        out["checksums"] = {
            name: float(np.abs(arr).sum())
            for name, arr in sorted(result.arrays.items())}
        print(json.dumps(out, indent=2))
        return 0
    for name, arr in sorted(result.arrays.items()):
        print(f"{name}: shape={arr.shape} mean={arr.mean():.6g} "
              f"checksum={float(np.abs(arr).sum()):.6g}")
    print()
    print(describe_result(result))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.report import describe_trace
    from repro.obs import Tracer

    try:
        source, bindings, outputs = _resolve_source(args.kernel, args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1

    tracer = Tracer()
    compiled = compile_hpf(source, bindings=bindings, level=args.level,
                           outputs=outputs, tracer=tracer,
                           plan_passes=args.plan_passes,
                           cache=_resolve_cache(args))
    from repro.machine.presets import by_name
    machine = Machine(grid=_parse_grid(args.grid),
                      cost_model=by_name(args.machine))
    rng = np.random.default_rng(args.seed)
    inputs = {}
    for name, decl in compiled.plan.arrays.items():
        if name in compiled.plan.entry_arrays:
            inputs[name] = rng.standard_normal(decl.shape).astype(
                decl.dtype)
    with _codegen_context(args):
        compiled.run(machine, inputs=inputs, iterations=args.iters,
                     tracer=tracer, backend=args.backend,
                     workers=args.workers)
    if args.out:
        tracer.write_jsonl(args.out)
        print(f"wrote {sum(1 for _ in tracer.spans())} spans to "
              f"{args.out}", file=sys.stderr)
    if args.json:
        sys.stdout.write(tracer.to_jsonl())
    else:
        print(describe_trace(tracer))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.analysis.report import describe_profile
    from repro.obs import Tracer, write_chrome_trace, write_profile

    level = args.opt or args.level
    kernel_name = args.kernel
    try:
        source, bindings, outputs = _resolve_source(args.kernel, args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1

    # tracer feeds the Chrome trace's compile-passes track
    tracer = Tracer() if args.chrome else None
    with _metrics_scope(args) as registry:
        compiled = compile_hpf(source, bindings=bindings, level=level,
                               outputs=outputs, tracer=tracer,
                               plan_passes=args.plan_passes,
                               cache=_resolve_cache(args))
        from repro.machine.presets import by_name
        machine = Machine(grid=_parse_grid(args.grid),
                          cost_model=by_name(args.machine),
                          keep_message_log=True)
        rng = np.random.default_rng(args.seed)
        inputs = {}
        for name, decl in compiled.plan.arrays.items():
            if name in compiled.plan.entry_arrays:
                inputs[name] = rng.standard_normal(decl.shape).astype(
                    decl.dtype)
        with _codegen_context(args):
            result = compiled.run(machine, inputs=inputs,
                                  iterations=args.iters,
                                  backend=args.backend, profile=True,
                                  workers=args.workers)
    if args.metrics:
        _write_metrics(registry, args.metrics)
    profile = result.profile
    assert profile is not None
    profile.kernel = kernel_name
    profile.level = level
    if args.out:
        write_profile(profile, args.out)
        print(f"wrote profile to {args.out}", file=sys.stderr)
    if args.chrome:
        write_chrome_trace(profile, args.chrome, tracer=tracer)
        print(f"wrote Chrome trace to {args.chrome}", file=sys.stderr)
    if args.json:
        from repro.obs import profile_to_json
        sys.stdout.write(profile_to_json(profile))
    else:
        print(describe_profile(profile))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.analysis.report import describe_metrics
    from repro.obs import metrics as obs_metrics
    from repro.obs import metrics_to_json, prometheus_text

    try:
        source, bindings, outputs = _resolve_source(args.kernel, args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    with obs_metrics.use_registry() as registry:
        compiled = compile_hpf(source, bindings=bindings,
                               level=args.level, outputs=outputs,
                               plan_passes=args.plan_passes,
                               cache=_resolve_cache(args))
        from repro.machine.presets import by_name
        machine = Machine(grid=_parse_grid(args.grid),
                          cost_model=by_name(args.machine))
        rng = np.random.default_rng(args.seed)
        inputs = {}
        for name, decl in compiled.plan.arrays.items():
            if name in compiled.plan.entry_arrays:
                inputs[name] = rng.standard_normal(decl.shape).astype(
                    decl.dtype)
        with _codegen_context(args):
            compiled.run(machine, inputs=inputs,
                         iterations=args.iters, backend=args.backend,
                         workers=args.workers)
    if args.out:
        _write_metrics(registry, args.out)
    if args.ledger:
        _ledger_append(args, registry, compiled, machine, args.backend)
    if args.json:
        sys.stdout.write(metrics_to_json(registry))
    elif args.prom:
        sys.stdout.write(prometheus_text(registry))
    elif not args.out:
        print(describe_metrics(registry))
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    try:
        source, bindings, outputs = _resolve_source(args.kernel, args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    compiled = compile_hpf(source, bindings=bindings, level=args.level,
                           outputs=outputs,
                           plan_passes=args.plan_passes,
                           cache=_resolve_cache(args))
    if args.json:
        from repro.plan import plan_to_json
        text = plan_to_json(compiled.plan)
    else:
        from repro.plan import plan_to_text
        text = plan_to_text(compiled.plan)
        if not text.endswith("\n"):
            text += "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"wrote plan to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve
    return serve(host=args.host, port=args.port,
                 cache_dir=args.cache_dir, ledger_path=args.ledger,
                 pool_workers=args.pool_workers,
                 max_pending=args.max_pending)


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import (ablations, fig11, fig17, fig18,
                                   messages, robustness, scaling,
                                   sensitivity, storage)
    mains = {
        "fig11": fig11.main, "fig17": fig17.main, "fig18": fig18.main,
        "messages": messages.main, "storage": storage.main,
        "ablations": ablations.main, "scaling": scaling.main,
        "sensitivity": sensitivity.main, "robustness": robustness.main,
    }
    names = list(mains) if args.name == "all" else [args.name]
    for name in names:
        print(f"##### {name} #####")
        mains[name]()
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="HPF stencil compiler reproduction (Roth et al., "
                    "SC'97)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile and report")
    _add_common(p)
    p.add_argument("--trace", action="store_true",
                   help="print the IR after every pass (Figures 12-15)")
    p.add_argument("--plan", action="store_true",
                   help="print the generated SPMD program (Figure 16)")
    p.add_argument("--fortran", action="store_true",
                   help="emit the Fortran77+MPI node program")
    p.set_defaults(fn=cmd_compile)

    from repro.runtime.backends import available_backends
    backends = available_backends()

    p = sub.add_parser("run", help="compile and execute")
    _add_common(p)
    p.add_argument("--backend", default="perpe", choices=backends,
                   help="execution backend: per-PE interpretation "
                        "(default), whole-array vectorized slabs, "
                        "parallel worker processes over shared memory, "
                        "or compiled native loop nests "
                        "(all identical results and cost reports)")
    p.add_argument("--workers", type=_workers_arg, default=None,
                   help="worker-process count for --backend parallel "
                        "(default: cpu count, capped at the PE count)")
    _add_codegen_flags(p)
    p.add_argument("--grid", default="2x2",
                   help="processor grid, e.g. 2x2 (default)")
    p.add_argument("--iters", type=int, default=1,
                   help="repeat the program this many times")
    p.add_argument("--seed", type=int, default=0,
                   help="random seed for input arrays")
    p.add_argument("--memory-mb", type=int, default=None,
                   help="per-PE memory capacity in MB")
    p.add_argument("--machine", default="sp2",
                   help="cost-model preset: sp2 (default), ethernet, "
                        "t3e, modern-node, modern-cluster")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="run with the metrics registry live and write "
                        "it to FILE (.prom/.txt: Prometheus text "
                        "exposition; otherwise versioned JSON)")
    p.add_argument("--ledger", default=None, metavar="PATH",
                   help="append this run (machine fingerprint, plan "
                        "key, backend, factors, metrics) to the JSONL "
                        "run ledger at PATH")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "trace",
        help="compile+run a kernel with structured tracing enabled")
    p.add_argument("kernel",
                   help="kernel name (e.g. purdue9, five_point, "
                        "box27_3d) or an HPF source file")
    p.add_argument("--bind", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="bind a size parameter (default N=64 for named "
                        "kernels)")
    p.add_argument("--level", default="O4",
                   help="optimization level O0..O4 (default O4)")
    p.add_argument("--output", action="append", default=[],
                   help="array live out of the routine (repeatable)")
    p.add_argument("--backend", default="perpe", choices=backends,
                   help="execution backend: per-PE interpretation "
                        "(default), whole-array vectorized slabs, "
                        "parallel worker processes, or compiled "
                        "native loop nests")
    p.add_argument("--workers", type=_workers_arg, default=None,
                   help="worker-process count for --backend parallel "
                        "(default: cpu count, capped at the PE count)")
    _add_codegen_flags(p)
    _add_cache_flags(p)
    p.add_argument("--grid", default="2x2",
                   help="processor grid, e.g. 2x2 (default)")
    p.add_argument("--iters", type=int, default=1,
                   help="repeat the program this many times")
    p.add_argument("--seed", type=int, default=0,
                   help="random seed for input arrays")
    p.add_argument("--machine", default="sp2",
                   help="cost-model preset: sp2 (default), ethernet, "
                        "t3e, modern-node, modern-cluster")
    p.add_argument("-o", "--out", default=None, metavar="FILE",
                   help="write the trace as JSONL to FILE")
    p.add_argument("--json", action="store_true",
                   help="print the JSONL trace to stdout instead of "
                        "the tree summary")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="compile+run a kernel with the communication profiler")
    p.add_argument("kernel",
                   help="kernel name (e.g. purdue9, five_point, "
                        "box27_3d) or an HPF source file")
    p.add_argument("--bind", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="bind a size parameter (default N=64 for named "
                        "kernels)")
    p.add_argument("--level", default="O4",
                   help="optimization level O0..O4 (default O4)")
    p.add_argument("--opt", default=None,
                   help="alias for --level")
    p.add_argument("--output", action="append", default=[],
                   help="array live out of the routine (repeatable)")
    p.add_argument("--backend", default="perpe", choices=backends,
                   help="execution backend; all produce identical "
                        "communication profiles (parallel adds "
                        "measured per-worker wall-clock tracks)")
    p.add_argument("--workers", type=_workers_arg, default=None,
                   help="worker-process count for --backend parallel "
                        "(default: cpu count, capped at the PE count)")
    _add_codegen_flags(p)
    _add_cache_flags(p)
    p.add_argument("--grid", default="2x2",
                   help="processor grid, e.g. 2x2 (default)")
    p.add_argument("--iters", type=int, default=1,
                   help="repeat the program this many times")
    p.add_argument("--seed", type=int, default=0,
                   help="random seed for input arrays")
    p.add_argument("--machine", default="sp2",
                   help="cost-model preset: sp2 (default), ethernet, "
                        "t3e, modern-node, modern-cluster")
    p.add_argument("-o", "--out", default=None, metavar="FILE",
                   help="write the versioned profile.json to FILE")
    p.add_argument("--chrome", default=None, metavar="FILE",
                   help="write a Chrome/Perfetto trace (one track per "
                        "PE plus the compile-passes track) to FILE")
    p.add_argument("--json", action="store_true",
                   help="print profile.json to stdout instead of the "
                        "text report")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="run with the metrics registry live and write "
                        "it to FILE (.prom/.txt: Prometheus text "
                        "exposition; otherwise versioned JSON)")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "metrics",
        help="compile+run a kernel with the metrics registry live")
    p.add_argument("kernel",
                   help="kernel name (e.g. purdue9, five_point, "
                        "box27_3d) or an HPF source file")
    p.add_argument("--bind", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="bind a size parameter (default N=64 for named "
                        "kernels)")
    p.add_argument("--level", default="O4",
                   help="optimization level O0..O4 (default O4)")
    p.add_argument("--output", action="append", default=[],
                   help="array live out of the routine (repeatable)")
    p.add_argument("--backend", default="perpe", choices=backends,
                   help="execution backend to instrument")
    p.add_argument("--workers", type=_workers_arg, default=None,
                   help="worker-process count for --backend parallel "
                        "(default: cpu count, capped at the PE count)")
    _add_codegen_flags(p)
    _add_cache_flags(p)
    p.add_argument("--grid", default="2x2",
                   help="processor grid, e.g. 2x2 (default)")
    p.add_argument("--iters", type=int, default=1,
                   help="repeat the program this many times")
    p.add_argument("--seed", type=int, default=0,
                   help="random seed for input arrays")
    p.add_argument("--machine", default="sp2",
                   help="cost-model preset: sp2 (default), ethernet, "
                        "t3e, modern-node, modern-cluster")
    p.add_argument("--json", action="store_true",
                   help="print the versioned metrics JSON document")
    p.add_argument("--prom", action="store_true",
                   help="print the Prometheus text exposition")
    p.add_argument("-o", "--out", default=None, metavar="FILE",
                   help="write metrics to FILE (.prom/.txt: Prometheus "
                        "text; otherwise JSON)")
    p.add_argument("--ledger", default=None, metavar="PATH",
                   help="append this run (machine fingerprint, plan "
                        "key, backend, factors, metrics) to the JSONL "
                        "run ledger at PATH")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "plan",
        help="compile a kernel and print its plan IR (text or JSON)")
    p.add_argument("kernel",
                   help="kernel name (e.g. purdue9, five_point, "
                        "box27_3d) or an HPF source file")
    p.add_argument("--bind", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="bind a size parameter (default N=64 for named "
                        "kernels)")
    p.add_argument("--level", default="O4",
                   help="optimization level O0..O4 (default O4)")
    p.add_argument("--output", action="append", default=[],
                   help="array live out of the routine (repeatable)")
    _add_cache_flags(p)
    p.add_argument("--json", action="store_true",
                   help="print the versioned JSON plan document "
                        "(repro.plan.serialize schema) instead of the "
                        "textual SPMD program")
    p.add_argument("--text", action="store_true",
                   help="print the textual SPMD program (the default)")
    p.add_argument("-o", "--out", default=None, metavar="FILE",
                   help="write the plan to FILE instead of stdout")
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser(
        "serve",
        help="start the compile-and-run HTTP service")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080,
                   help="bind port; 0 picks an ephemeral port "
                        "(default 8080)")
    p.add_argument("--cache-dir", default=None, metavar="PATH",
                   help="persist compiled plans under PATH/plans and "
                        "generated kernels under PATH/kernels")
    p.add_argument("--ledger", default=None, metavar="PATH",
                   help="append every job to the JSONL run ledger at "
                        "PATH")
    p.add_argument("--pool-workers", type=_workers_arg, default=None,
                   metavar="N",
                   help="worker threads executing jobs (default: cpu "
                        "count capped at 4)")
    p.add_argument("--max-pending", type=int, default=None,
                   metavar="N",
                   help="jobs admitted before shedding load with 429 "
                        "(default: 4x pool workers)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("experiments",
                       help="regenerate the paper's exhibits")
    p.add_argument("name", choices=["fig11", "fig17", "fig18", "messages",
                                    "storage", "ablations", "scaling",
                                    "sensitivity", "robustness", "all"])
    p.set_defaults(fn=cmd_experiments)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
