"""The xlhpf-like naive backend.

Models what the paper measured from IBM's xlhpf (and what CM Fortran
emitted, Figure 4):

* every ``CSHIFT``/``EOSHIFT`` intrinsic is translated into a temporary
  array plus *both* components of the shift data movement — the
  interprocessor slab exchange and a whole-subgrid intraprocessor copy;
* one subgrid loop per array statement, no fusion, no communication
  unioning;
* interpretive node code: subgrid loops pay the cost model's
  ``hpf_overhead_factor`` (calibrated from the paper's measured ~10x gap
  between xlhpf and hand-written Fortran77+MPI).

Exception reproducing Figure 18: early HPF compilers scalarized pure
*array-syntax* statements directly, moving only off-processor data (the
MasPar strategy of section 6), and handed the resulting single loop nest
to a capable node compiler (xlf -O).  For a program with no explicit
SHIFT intrinsics the baseline therefore compiles at full optimization
minus unroll-and-jam (``unroll_jam=1``) and without the interpretive
overhead factor.  This is why the paper's array-syntax 9-point stencil
"tracked our best performance numbers for all problem sizes except the
largest, where we had a 10% advantage" — the residual gap is exactly
the unroll-and-jam (multi-stencil-swath) term.
"""

from __future__ import annotations

from repro.compiler.driver import HpfCompiler
from repro.compiler.options import CompilerOptions, OptLevel
from repro.plan import CompiledProgram
from repro.frontend.parser import parse_program
from repro.ir.nodes import ArrayAssign, CShift, EOShift
from repro.ir.program import Program


def _uses_shift_intrinsics(program: Program) -> bool:
    for stmt in program.leaf_statements():
        if isinstance(stmt, ArrayAssign):
            for node in stmt.rhs.walk():
                if isinstance(node, (CShift, EOShift)):
                    return True
    return False


class XlhpfLikeCompiler:
    """Early-HPF-compiler model with the per-input behaviour above."""

    def __init__(self, outputs: set[str] | None = None) -> None:
        self.outputs = outputs

    def compile(self, source: "str | Program",
                bindings: dict[str, int] | None = None) -> CompiledProgram:
        if isinstance(source, Program):
            program = source
        else:
            program = parse_program(source, bindings=bindings)
        if _uses_shift_intrinsics(program):
            # temporaries + full shift movement + interpretive node code
            options = CompilerOptions.make(
                OptLevel.O0, outputs=self.outputs, hpf_overhead=True)
        else:
            # the good path: direct scalarization of array syntax with
            # overlap communication and xlf-quality node code, but no
            # unroll-and-jam
            options = CompilerOptions.make(
                OptLevel.O4, outputs=self.outputs, unroll_jam=1)
        compiled = HpfCompiler(options).compile(program)
        compiled.report.pass_stats["baseline"] = "xlhpf-like"
        return compiled


def compile_xlhpf_like(source: "str | Program",
                       bindings: dict[str, int] | None = None,
                       outputs: set[str] | None = None) -> CompiledProgram:
    """One-call xlhpf-like compilation (see :class:`XlhpfLikeCompiler`)."""
    return XlhpfLikeCompiler(outputs=outputs).compile(source, bindings)
