"""A CM-2-stencil-compiler-style pattern matcher.

The CM-2 "convolution compiler" (paper section 6, [4,5,6]) recognised
exactly one shape: a *single* array assignment whose right-hand side is a
sum of terms, each a coefficient multiplying a (possibly nested) CSHIFT
expression of one common source array.  Anything else was rejected —
"they avoid the general problem by restricting the domain of
applicability".

This module reproduces that baseline so the robustness experiments can
show where pattern-driven stencil compilation fails while the paper's
strategy succeeds:

* multi-statement stencils (Problem 9) — rejected;
* array-syntax stencils (Figures 1/18) — rejected (no CSHIFTs);
* stencils with any structural variation (nested sums, divisions,
  shifted coefficients) — rejected.

On an accepted program the "hand-optimized microcode" is modelled by
compiling at full optimization, which is fair to the baseline: the paper
reports the CM-2 compiler produced excellent code *when it applied*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PatternMatchError
from repro.compiler.driver import compile_hpf
from repro.plan import CompiledProgram
from repro.frontend.parser import parse_program
from repro.ir.nodes import (
    ArrayAssign, ArrayRef, BinOp, Const, CShift, Expr, ScalarRef, Stmt,
    UnaryOp,
)
from repro.ir.program import Program


@dataclass
class StencilPattern:
    """A matched stencil: source array, destination, and taps."""

    source: str
    destination: str
    taps: list[tuple[tuple[int, ...], Expr | None]] = field(
        default_factory=list)  # (offset vector, coefficient or None)

    @property
    def points(self) -> int:
        return len(self.taps)


def _flatten_sum(expr: Expr, terms: list[Expr], negate: bool = False) -> None:
    if isinstance(expr, BinOp) and expr.op in "+-":
        _flatten_sum(expr.left, terms, negate)
        _flatten_sum(expr.right, terms,
                     negate ^ (expr.op == "-"))
    else:
        terms.append(UnaryOp("-", expr) if negate else expr)


def _shift_chain(expr: Expr, rank: int) -> tuple[str, tuple[int, ...]] | None:
    """Resolve nested CSHIFTs down to (array, offsets); None if not one."""
    offsets = [0] * rank
    node = expr
    while isinstance(node, CShift):
        d = node.dim - 1
        if d >= rank:
            return None
        offsets[d] += node.shift
        node = node.array
    if isinstance(node, ArrayRef) and node.section is None:
        return node.name, tuple(offsets)
    return None


def match_stencil(program: Program) -> StencilPattern:
    """Match the CM-2 pattern; raises :class:`PatternMatchError` with the
    reason on any deviation."""
    stmts: list[Stmt] = [s for s in program.leaf_statements()]
    assigns = [s for s in stmts if isinstance(s, ArrayAssign)]
    if len(assigns) != 1 or len(stmts) != len(assigns):
        raise PatternMatchError(
            f"stencil must be a single array assignment; found "
            f"{len(stmts)} statements (the strategy of Roth et al. "
            f"handles multi-statement stencils; this baseline does not)")
    stmt = assigns[0]
    if stmt.mask is not None:
        raise PatternMatchError(
            "masked (WHERE) assignments are not in the recognised "
            "pattern")
    if stmt.lhs.section is not None:
        raise PatternMatchError(
            "destination must be a whole array; sectioned assignments "
            "(array-syntax stencils) are not in the recognised pattern")
    rank = program.symbols.array(stmt.lhs.name).type.rank

    terms: list[Expr] = []
    _flatten_sum(stmt.rhs, terms)
    pattern = StencilPattern(source="", destination=stmt.lhs.name)
    for term in terms:
        coeff: Expr | None = None
        body = term
        if isinstance(body, UnaryOp):
            raise PatternMatchError(
                "negated terms are not in the recognised pattern")
        if isinstance(body, BinOp) and body.op == "*":
            if isinstance(body.left, (Const, ScalarRef)):
                coeff, body = body.left, body.right
            elif isinstance(body.right, (Const, ScalarRef)):
                coeff, body = body.right, body.left
            else:
                raise PatternMatchError(
                    f"term {term} is not coefficient * shift-expression")
        elif isinstance(body, BinOp):
            raise PatternMatchError(
                f"term {term} uses operator {body.op!r}; only sums of "
                f"products are recognised")
        chain = _shift_chain(body, rank)
        if chain is None:
            raise PatternMatchError(
                f"term {term} is not a CSHIFT chain over a whole array "
                f"(array-syntax operands are not accepted)")
        name, offsets = chain
        if not pattern.source:
            pattern.source = name
        elif pattern.source != name:
            raise PatternMatchError(
                f"all shifts must read one source array; found both "
                f"{pattern.source} and {name}")
        pattern.taps.append((offsets, coeff))
    if not pattern.taps:
        raise PatternMatchError("no stencil taps found")
    return pattern


class PatternStencilCompiler:
    """Compile only what the pattern recogniser accepts."""

    def __init__(self, outputs: set[str] | None = None) -> None:
        self.outputs = outputs

    def compile(self, source: "str | Program",
                bindings: dict[str, int] | None = None) -> CompiledProgram:
        """Raises :class:`PatternMatchError` unless the program is a
        single-statement sum-of-products CSHIFT stencil."""
        if isinstance(source, Program):
            program = source
        else:
            program = parse_program(source, bindings=bindings)
        pattern = match_stencil(program)
        compiled = compile_hpf(program, level="O4",
                               outputs=self.outputs or
                               {pattern.destination})
        compiled.report.pass_stats["baseline"] = "cm2-pattern"
        compiled.report.pass_stats["pattern"] = pattern
        return compiled
