"""Baseline compilers the paper compares against.

* :mod:`repro.baselines.naive` — the xlhpf/CM-Fortran-style backend:
  every shift intrinsic becomes a temporary plus full data movement, one
  loop per statement, interpretive node code (paper Figures 4, 11, 18).
* :mod:`repro.baselines.pattern` — a CM-2-convolution-compiler-style
  pattern matcher that only accepts single-statement sum-of-products
  CSHIFT stencils, reproducing the robustness comparison of section 6.
"""

from repro.baselines.naive import XlhpfLikeCompiler, compile_xlhpf_like  # noqa: F401
from repro.baselines.pattern import (  # noqa: F401
    PatternStencilCompiler, StencilPattern, match_stencil,
)
