"""The Plan IR: typed executable ops, the compiler's lowest-level output.

A :class:`Plan` is an ordered list of plan operations over named
distributed arrays — communication calls, full shifts, and subgrid loop
nests (already scalarized, fused, and annotated with the per-point
memory profile the cost model prices).  The
:mod:`repro.runtime.executor` runs plans on a
:class:`~repro.machine.Machine`.

Every op exposes a uniform structural interface: :meth:`PlanOp.children`
returns the op's nested blocks (tuples of op lists) and
:meth:`PlanOp.rebuild` reconstructs the op with replacement blocks.
Generic traversals (:func:`walk`) and bottom-up rewrites
(:func:`map_blocks`) are built on this pair, so the verifier, the plan
passes, the printer, the serializer, and both execution backends never
need per-op-kind recursion of their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.errors import PipelineError
from repro.ir.linexpr import LinExpr
from repro.ir.nodes import Expr
from repro.ir.rsd import RSD
from repro.ir.types import Distribution
from repro.machine.cost_model import LoopStats

#: Symbolic iteration box: per-dimension 1-based inclusive bounds.
Box = tuple[tuple[LinExpr, LinExpr], ...]

#: The nested blocks of one op, as returned by :meth:`PlanOp.children`.
Blocks = tuple[list["PlanOp"], ...]


class PlanOp:
    """Base class of plan operations.

    Subclasses with nested op blocks override :meth:`children` and
    :meth:`rebuild`; leaf ops inherit the empty defaults.
    """

    def children(self) -> Blocks:
        """Nested blocks of this op, outermost-first.

        The default (leaf) implementation returns no blocks.  Container
        ops return one tuple entry per block; the same order must be
        accepted by :meth:`rebuild`.
        """
        return ()

    def rebuild(self, *blocks: list["PlanOp"]) -> "PlanOp":
        """A copy of this op with its nested blocks replaced.

        ``blocks`` must match :meth:`children` in arity.  Leaf ops accept
        zero blocks and return themselves (they are immutable in
        practice, so sharing is safe).
        """
        if blocks:
            raise PipelineError(
                f"{type(self).__name__} has no nested blocks "
                f"(got {len(blocks)})")
        return self


@dataclass
class ArrayDecl:
    """Declaration of one distributed array materialised at run time."""

    name: str
    shape: tuple[int, ...]
    distribution: Distribution
    dtype: np.dtype
    halo: tuple[tuple[int, int], ...]
    is_temporary: bool = False


@dataclass
class AllocOp(PlanOp):
    """Materialise arrays (ALLOCATE); charges per-PE memory."""

    names: tuple[str, ...]


@dataclass
class FreeOp(PlanOp):
    """Release arrays (DEALLOCATE)."""

    names: tuple[str, ...]


@dataclass
class OverlapShiftOp(PlanOp):
    """Interprocessor slab exchange into an overlap area."""

    array: str
    shift: int
    dim: int  # 1-based
    rsd: RSD | None = None
    base_offsets: tuple[int, ...] | None = None
    boundary: float | None = None


@dataclass
class SwapOp(PlanOp):
    """Exchange the buffers bound to two array names (pointer swap).

    The plan-level residue of the double-buffer idiom: after
    ``A(full) = expr(B); B(full) = A(full)`` is recognized by the
    ping-pong elimination pass, the whole-array copy becomes this op.
    Executors swap their name→storage bindings only — the underlying
    buffers keep their birth identity (shared-memory segment names,
    memory-accounting keys, and message tags all stay keyed by the
    buffer's birth name, identically in every backend).  A swap moves
    no data and is modelled as free.

    Both names must be declared with identical shape, dtype,
    distribution, and halo (the ping-pong pass max-merges the halos to
    guarantee this).
    """

    a: str
    b: str


@dataclass
class FullShiftOp(PlanOp):
    """Complete CSHIFT/EOSHIFT: slab exchange plus whole-subgrid copy.

    The naive (O0 / xlhpf-like) translation of every shift intrinsic.
    """

    dst: str
    src: str
    shift: int
    dim: int
    boundary: float | None = None  # None = circular


@dataclass
class NestStmt:
    """One scalarized assignment inside a loop nest.

    ``rhs`` references arrays only through aligned/offset references;
    evaluation context supplies the iteration point.  ``mask`` makes the
    store elementwise-conditional (WHERE body statement).
    """

    lhs: str
    rhs: Expr
    mask: Expr | None = None

    def __str__(self) -> str:
        if self.mask is not None:
            return f"WHERE ({self.mask}) {self.lhs} = {self.rhs}"
        return f"{self.lhs} = {self.rhs}"


@dataclass
class LoopNestOp(PlanOp):
    """A fused subgrid loop nest over a global iteration box.

    ``space`` bounds are 1-based inclusive, symbolic over size params.
    ``stats`` is the per-point memory profile after the (optional)
    memory-optimization analysis; ``stats_per_statement`` carries the
    unfused equivalents for reporting.
    """

    statements: list[NestStmt]
    space: Box
    stats: LoopStats
    fused: bool = False
    memopt: bool = False
    unroll_jam: int = 1
    label: str = ""


@dataclass
class ScalarAssignOp(PlanOp):
    """Replicated scalar assignment."""

    name: str
    rhs: Expr


@dataclass
class SeqLoopOp(PlanOp):
    """Serial host DO loop (time stepping)."""

    var: str
    lo: LinExpr
    hi: LinExpr
    body: list[PlanOp]

    def children(self) -> Blocks:
        return (self.body,)

    def rebuild(self, *blocks: list[PlanOp]) -> "SeqLoopOp":
        (body,) = blocks
        return replace(self, body=body)


@dataclass
class WhileOp(PlanOp):
    """Serial host DO WHILE loop on a replicated scalar condition."""

    cond: Expr
    body: list[PlanOp]

    def children(self) -> Blocks:
        return (self.body,)

    def rebuild(self, *blocks: list[PlanOp]) -> "WhileOp":
        (body,) = blocks
        return replace(self, body=body)


@dataclass
class OverlappedOp(PlanOp):
    """Communication overlapped with interior computation.

    The classic successor optimization to the paper's pipeline: while
    the overlap-shift messages are in flight, each PE computes the
    *interior* of its block — the points whose stencil reads touch no
    overlap cell — and only the boundary strips wait for the halos.
    Modelled time becomes ``max(comm, interior) + boundary`` instead of
    ``comm + interior + boundary``.

    The executor still moves data before computing (the simulator is
    sequential); the saving is applied to the per-PE timeline, which is
    exactly what the cost model represents.
    """

    comm_ops: list[PlanOp]   # OverlapShiftOps
    nest: "LoopNestOp"

    def children(self) -> Blocks:
        return (self.comm_ops, [self.nest])

    def rebuild(self, *blocks: list[PlanOp]) -> "OverlappedOp":
        comm_ops, nest_block = blocks
        if len(nest_block) != 1 or \
                not isinstance(nest_block[0], LoopNestOp):
            raise PipelineError(
                "OverlappedOp.rebuild needs exactly one LoopNestOp in "
                "its nest block")
        return replace(self, comm_ops=comm_ops, nest=nest_block[0])


@dataclass
class CondOp(PlanOp):
    """Host IF on a replicated scalar condition."""

    cond: Expr
    then_ops: list[PlanOp]
    else_ops: list[PlanOp]

    def children(self) -> Blocks:
        return (self.then_ops, self.else_ops)

    def rebuild(self, *blocks: list[PlanOp]) -> "CondOp":
        then_ops, else_ops = blocks
        return replace(self, then_ops=then_ops, else_ops=else_ops)


def walk(ops: Iterable[PlanOp]) -> Iterator[PlanOp]:
    """Every op in ``ops``, pre-order, through all nested blocks."""
    for op in ops:
        yield op
        for block in op.children():
            yield from walk(block)


def map_blocks(ops: list[PlanOp],
               fn: Callable[[list[PlanOp]], list[PlanOp]]) -> list[PlanOp]:
    """Bottom-up block rewrite: apply ``fn`` to every nested block (in
    post-order), then to the top-level list; returns the new list."""
    out: list[PlanOp] = []
    for op in ops:
        blocks = op.children()
        if blocks:
            op = op.rebuild(*(map_blocks(list(b), fn) for b in blocks))
        out.append(op)
    return fn(out)


@dataclass(frozen=True)
class Region:
    """Structural context of one nested block during a region rewrite.

    ``kind`` is one of ``"top"``, ``"loop-body"`` (:class:`SeqLoopOp`),
    ``"while-body"``, ``"cond-then"``, ``"cond-else"``, ``"comm"``
    (:class:`OverlappedOp` communication block), or ``"nest"`` (the
    single-nest block of an :class:`OverlappedOp`).  ``parent`` is the
    container op (``None`` at top level) as it was *before* its blocks
    were rewritten.
    """

    kind: str
    parent: PlanOp | None = None


def _region_kinds(op: PlanOp) -> tuple[str, ...]:
    """Region kind of each child block of ``op``, in children() order."""
    if isinstance(op, SeqLoopOp):
        return ("loop-body",)
    if isinstance(op, WhileOp):
        return ("while-body",)
    if isinstance(op, CondOp):
        return ("cond-then", "cond-else")
    if isinstance(op, OverlappedOp):
        return ("comm", "nest")
    return tuple("block" for _ in op.children())


def map_regions(
        ops: list[PlanOp],
        fn: Callable[[list[PlanOp], Region], list[PlanOp]]) -> list[PlanOp]:
    """Bottom-up region rewrite: like :func:`map_blocks`, but ``fn``
    also receives each block's :class:`Region` context, so passes can
    treat loop bodies, conditional arms, and communication blocks
    differently (the loop-aware passes are built on this)."""

    def rewrite(block: list[PlanOp], region: Region) -> list[PlanOp]:
        out: list[PlanOp] = []
        for op in block:
            blocks = op.children()
            if blocks:
                kinds = _region_kinds(op)
                op = op.rebuild(*(rewrite(list(b), Region(k, op))
                                  for b, k in zip(blocks, kinds)))
            out.append(op)
        return fn(out, region)

    return rewrite(ops, Region("top"))


def op_label(op: PlanOp) -> tuple[str, dict[str, object]]:
    """Span name and attributes for one plan op (tracer/profiler key)."""
    if isinstance(op, OverlapShiftOp):
        return "overlap_shift", {"array": op.array, "shift": op.shift,
                                 "dim": op.dim}
    if isinstance(op, FullShiftOp):
        kind = "eoshift" if op.boundary is not None else "cshift"
        return f"full_{kind}", {"dst": op.dst, "src": op.src,
                                "shift": op.shift, "dim": op.dim}
    if isinstance(op, SwapOp):
        return "swap", {"a": op.a, "b": op.b}
    if isinstance(op, LoopNestOp):
        return "loop_nest", {"statements": len(op.statements),
                             "fused": op.fused}
    if isinstance(op, AllocOp):
        return "alloc", {"names": list(op.names)}
    if isinstance(op, FreeOp):
        return "free", {"names": list(op.names)}
    if isinstance(op, ScalarAssignOp):
        return "scalar_assign", {"name": op.name}
    if isinstance(op, SeqLoopOp):
        return "seq_loop", {"var": op.var}
    if isinstance(op, WhileOp):
        return "while", {}
    if isinstance(op, CondOp):
        return "cond", {}
    if isinstance(op, OverlappedOp):
        return "overlapped", {}
    return type(op).__name__, {}


@dataclass
class Plan:
    """The full executable program."""

    arrays: dict[str, ArrayDecl]
    params: dict[str, int]
    scalar_names: tuple[str, ...]
    ops: list[PlanOp]
    entry_arrays: tuple[str, ...] = ()  # materialised before op 0
    #: declared !HPF$ PROCESSORS arrangement, if any
    processors: tuple[int, ...] | None = None
    #: arrays observable after execution (sorted).  ``None`` means the
    #: caller declared no output set, so every non-temporary array is
    #: conservatively observable; loop passes that sacrifice a scratch
    #: array (ping-pong elimination) only fire on named non-outputs.
    outputs: tuple[str, ...] | None = None

    def walk_ops(self) -> Iterator[PlanOp]:
        yield from walk(self.ops)

    def count_ops(self, kind: type) -> int:
        return sum(1 for op in self.walk_ops() if isinstance(op, kind))


@dataclass
class CompileReport:
    """Static facts about the compiled plan, for experiments/tests."""

    level: str = "O4"
    shift_statements: int = 0
    overlap_shifts: int = 0
    full_shifts: int = 0
    loop_nests: int = 0
    fused_statements: int = 0
    temporaries: int = 0
    temp_bytes_global: int = 0
    copies_inserted: int = 0
    pass_stats: dict[str, object] = field(default_factory=dict)


@dataclass
class CompiledProgram:
    """Plan plus metadata; the object returned by ``compile_hpf``."""

    plan: Plan
    report: CompileReport
    source_name: str = "MAIN"
    trace: object | None = None  # PassTrace when requested

    def run(self, machine, inputs=None, scalars=None, iterations: int = 1,
            tracer=None, backend: str = "perpe", profile: bool = False,
            workers: int | None = None):
        """Execute on a machine; see :func:`repro.runtime.executor.execute`."""
        from repro.runtime.executor import execute
        return execute(self.plan, machine, inputs=inputs, scalars=scalars,
                       iterations=iterations,
                       hpf_overhead=self.report.pass_stats.get(
                           "hpf_overhead", False),
                       tracer=tracer, backend=backend, profile=profile,
                       workers=workers)

    def emit_fortran(self, name: str = "NODE_PROGRAM") -> str:
        """Render the plan as a Fortran77+MPI node-program listing (the
        code shape the paper's backend emitted)."""
        from repro.compiler.femit import emit_fortran
        return emit_fortran(self.plan, name)
