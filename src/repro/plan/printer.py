"""Textual rendering of plans (the ``repro plan --text`` format).

Prints the generated SPMD program the way the paper's Figure 16
presents its final code: communication calls first-class, fused subgrid
loop nests with their statements and memory profile.  The format is
stable line-oriented text meant for humans and golden-output diffs; the
JSON serializer (:mod:`repro.plan.serialize`) is the machine format.
"""

from __future__ import annotations

from repro.plan.ops import (
    AllocOp, CondOp, FreeOp, FullShiftOp, LoopNestOp, OverlappedOp,
    OverlapShiftOp, Plan, PlanOp, ScalarAssignOp, SeqLoopOp, SwapOp,
    WhileOp,
)


def format_op(op: PlanOp, indent: int) -> list[str]:
    """Render one op (recursively) as indented text lines."""
    pad = "  " * indent
    if isinstance(op, OverlapShiftOp):
        rsd = f", rsd={op.rsd}" if op.rsd is not None and \
            not op.rsd.is_trivial else ""
        eos = f", boundary={op.boundary:g}" if op.boundary is not None \
            else ""
        base = ""
        if op.base_offsets and any(op.base_offsets):
            base = f"<{','.join(f'{o:+d}' for o in op.base_offsets)}>"
        return [f"{pad}overlap_shift {op.array}{base} "
                f"shift={op.shift:+d} dim={op.dim}{rsd}{eos}"]
    if isinstance(op, FullShiftOp):
        kind = "eoshift" if op.boundary is not None else "cshift"
        return [f"{pad}full_{kind} {op.dst} <- {op.src} "
                f"shift={op.shift:+d} dim={op.dim} "
                f"(buffered copy, both movement components)"]
    if isinstance(op, LoopNestOp):
        space = " x ".join(f"{lo}:{hi}" for lo, hi in op.space)
        tag = "fused " if op.fused else ""
        head = (f"{pad}{tag}subgrid loop nest over [{space}], "
                f"{len(op.statements)} statement(s)")
        lines = [head]
        for s in op.statements:
            lines.append(f"{pad}  {s}")
        st = op.stats
        lines.append(
            f"{pad}  per-point: {st.mem_loads:g} memory loads, "
            f"{st.cached_loads:g} cached, {st.stores:g} stores, "
            f"{st.flops:g} flops"
            + (f" (unroll-and-jam x{op.unroll_jam})" if op.memopt else ""))
        return lines
    if isinstance(op, AllocOp):
        return [f"{pad}allocate {', '.join(op.names)}"]
    if isinstance(op, FreeOp):
        return [f"{pad}deallocate {', '.join(op.names)}"]
    if isinstance(op, ScalarAssignOp):
        return [f"{pad}scalar {op.name} = {op.rhs}"]
    if isinstance(op, SwapOp):
        return [f"{pad}swap {op.a} <-> {op.b} (buffer exchange, no data "
                f"movement)"]
    if isinstance(op, SeqLoopOp):
        lines = [f"{pad}do {op.var} = {op.lo}, {op.hi}"]
        for inner in op.body:
            lines += format_op(inner, indent + 1)
        lines.append(f"{pad}end do")
        return lines
    if isinstance(op, WhileOp):
        lines = [f"{pad}do while ({op.cond})"]
        for inner in op.body:
            lines += format_op(inner, indent + 1)
        lines.append(f"{pad}end do")
        return lines
    if isinstance(op, OverlappedOp):
        lines = [f"{pad}overlap communication with interior computation:"]
        for inner in op.comm_ops:
            lines += format_op(inner, indent + 1)
        lines += format_op(op.nest, indent + 1)
        lines.append(f"{pad}  (interior computes while messages fly; "
                     f"boundary strips wait)")
        return lines
    if isinstance(op, CondOp):
        lines = [f"{pad}if ({op.cond})"]
        for inner in op.then_ops:
            lines += format_op(inner, indent + 1)
        if op.else_ops:
            lines.append(f"{pad}else")
            for inner in op.else_ops:
                lines += format_op(inner, indent + 1)
        lines.append(f"{pad}end if")
        return lines
    return [f"{pad}{type(op).__name__}"]


def plan_to_text(plan: Plan) -> str:
    """The generated SPMD program, annotated (Figure 16 style)."""
    lines = ["arrays:"]
    for decl in plan.arrays.values():
        halo = "x".join(f"({lo},{hi})" for lo, hi in decl.halo)
        tag = " [temporary]" if decl.is_temporary else ""
        lines.append(
            f"  {decl.name}: {'x'.join(map(str, decl.shape))} "
            f"{decl.dtype.name} dist{decl.distribution} "
            f"overlap={halo}{tag}")
    if plan.params:
        lines.append("parameters: " + ", ".join(
            f"{k}={v}" for k, v in plan.params.items()))
    if plan.outputs is not None:
        lines.append("outputs: " + ", ".join(plan.outputs))
    lines.append("program:")
    for op in plan.ops:
        lines += format_op(op, 1)
    return "\n".join(lines)
