"""The plan verifier: structural and paper-semantic invariants.

Runs over a :class:`~repro.plan.ops.Plan` (the lowest-level IR) after
codegen and after every plan pass.  It is the plan-level twin of
:mod:`repro.analysis.verify_offsets`, which checks the same §3.1/§3.3
overlap-coverage discipline at the statement-IR level; this one also
checks what only exists after lowering — allocation lifetimes, declared
halo widths, RSD extents, and op-structure well-formedness.

Checks, grouped by the ``check`` code on each problem:

``structure``
    Declared-array references, dimension numbers in range, RSD/offset
    rank agreement, ``OverlappedOp`` bodies holding only overlap shifts,
    scalar references resolvable.
``alloc``
    Alloc-before-use, no double allocation, no free of unallocated
    arrays, no use-after-free; conditional branches must agree on the
    allocation state and loop bodies must preserve it.
``halo``
    Every ``OverlapShiftOp`` depth, RSD extension, and base offset fits
    inside the ``ArrayDecl`` halo, and every offset read stays within
    the declared overlap area.
``coverage``
    Every offset read is covered by prior overlap shifts of sufficient
    depth with the matching fill kind, including corner pickup through
    residency-clamped orthogonal extensions (Figures 9/10) — mirroring
    the AST-level verifier's region model exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations

from repro.errors import PlanVerificationError
from repro.ir.nodes import Expr, OffsetRef, Reduction, ScalarRef
from repro.plan.ops import (
    AllocOp, ArrayDecl, CondOp, FreeOp, FullShiftOp, LoopNestOp,
    OverlappedOp, OverlapShiftOp, Plan, PlanOp, ScalarAssignOp,
    SeqLoopOp, SwapOp, WhileOp, walk,
)

Fill = float | None


@dataclass(frozen=True)
class RegionCover:
    """What one (array, dim, sign) overlap region currently holds.

    Shared between this plan-level verifier and the AST-level
    :mod:`repro.analysis.verify_offsets` checker (which re-exports it):
    both model residency with the same clamped-pickup transfer function,
    so accepting/rejecting is consistent across the two IR levels.
    """

    amount: int                    # filled depth along the shifted dim
    ortho: tuple[tuple[int, int], ...]  # (lo, hi) coverage per other dim
    fill: Fill

    def meet(self, other: "RegionCover") -> "RegionCover | None":
        if self.fill != other.fill:
            return None
        ortho = tuple((min(a[0], b[0]), min(a[1], b[1]))
                      for a, b in zip(self.ortho, other.ortho))
        return RegionCover(min(self.amount, other.amount), ortho,
                           self.fill)


State = dict[tuple[str, int, int], RegionCover]


@dataclass
class PlanProblem:
    """One verifier finding, with enough context to act on it."""

    check: str      # "structure" | "alloc" | "halo" | "coverage"
    where: str      # op description, e.g. "overlap_shift A +1 dim 1"
    reason: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.where}: {self.reason}"


def _describe(op: PlanOp) -> str:
    if isinstance(op, OverlapShiftOp):
        return f"overlap_shift {op.array} {op.shift:+d} dim {op.dim}"
    if isinstance(op, FullShiftOp):
        return f"full_shift {op.dst} <- {op.src} {op.shift:+d} dim {op.dim}"
    if isinstance(op, LoopNestOp):
        return f"loop_nest [{'; '.join(str(s) for s in op.statements)}]"
    if isinstance(op, AllocOp):
        return f"alloc {', '.join(op.names)}"
    if isinstance(op, FreeOp):
        return f"free {', '.join(op.names)}"
    if isinstance(op, ScalarAssignOp):
        return f"scalar {op.name} = ..."
    if isinstance(op, SwapOp):
        return f"swap {op.a} <-> {op.b}"
    return type(op).__name__.removesuffix("Op").lower()


@dataclass
class _PlanVerifier:
    plan: Plan
    problems: list[PlanProblem] = field(default_factory=list)

    def _add(self, check: str, op: PlanOp | None, reason: str) -> None:
        where = _describe(op) if op is not None else "plan"
        self.problems.append(PlanProblem(check, where, reason))

    # -- declarations --------------------------------------------------------
    def _decl(self, op: PlanOp, name: str) -> ArrayDecl | None:
        decl = self.plan.arrays.get(name)
        if decl is None:
            self._add("structure", op,
                      f"references undeclared array {name}")
        return decl

    def _check_entry(self) -> None:
        for name in self.plan.entry_arrays:
            if name not in self.plan.arrays:
                self._add("structure", None,
                          f"entry array {name} has no ArrayDecl")
        for name in self.plan.outputs or ():
            if name not in self.plan.arrays:
                self._add("structure", None,
                          f"output array {name} has no ArrayDecl")

    # -- allocation state ----------------------------------------------------
    def _use(self, op: PlanOp, name: str, allocated: set[str],
             ever: set[str]) -> None:
        if name in allocated:
            return
        if name in ever:
            self._add("alloc", op, f"array {name} used after free")
        else:
            self._add("alloc", op,
                      f"array {name} used before allocation")

    # -- halo / bounds -------------------------------------------------------
    def _check_shift_bounds(self, op: OverlapShiftOp,
                            decl: ArrayDecl) -> None:
        rank = len(decl.shape)
        if not 1 <= op.dim <= rank:
            self._add("structure", op,
                      f"dim {op.dim} out of range for rank-{rank} "
                      f"array {op.array}")
            return
        if op.shift == 0:
            self._add("structure", op, "zero shift moves no data")
            return
        d = op.dim - 1
        side = 1 if op.shift > 0 else 0
        if abs(op.shift) > decl.halo[d][side]:
            self._add("halo", op,
                      f"shift depth {abs(op.shift)} exceeds declared "
                      f"halo {decl.halo[d]} of {op.array} on dim "
                      f"{op.dim}; widen the overlap area or shrink "
                      f"the shift")
        if op.rsd is not None:
            if len(op.rsd.dims) != rank:
                self._add("structure", op,
                          f"RSD rank {len(op.rsd.dims)} != array rank "
                          f"{rank}")
                return
            for k, rd in enumerate(op.rsd.dims):
                if rd is None or k == d:
                    continue
                if rd.lo < 0 or rd.hi < 0:
                    self._add("structure", op,
                              f"negative RSD extension {rd} on dim "
                              f"{k + 1}")
                if rd.lo > decl.halo[k][0] or rd.hi > decl.halo[k][1]:
                    self._add("halo", op,
                              f"RSD extension ({rd.lo},{rd.hi}) on dim "
                              f"{k + 1} exceeds declared halo "
                              f"{decl.halo[k]} of {op.array}")
        if op.base_offsets is not None:
            if len(op.base_offsets) != rank:
                self._add("structure", op,
                          f"base_offsets rank {len(op.base_offsets)} != "
                          f"array rank {rank}")
                return
            for k, o in enumerate(op.base_offsets):
                if k == d or o == 0:
                    continue
                hside = 1 if o > 0 else 0
                if abs(o) > decl.halo[k][hside]:
                    self._add("halo", op,
                              f"base offset {o:+d} on dim {k + 1} "
                              f"escapes declared halo {decl.halo[k]} "
                              f"of {op.array}")

    def _check_offset_halo(self, op: PlanOp, ref: OffsetRef) -> None:
        decl = self._decl(op, ref.name)
        if decl is None:
            return
        rank = len(decl.shape)
        if len(ref.offsets) != rank:
            self._add("structure", op,
                      f"offset reference {ref} has {len(ref.offsets)} "
                      f"offsets for rank-{rank} array")
            return
        for k, o in enumerate(ref.offsets):
            if o == 0:
                continue
            side = 1 if o > 0 else 0
            if abs(o) > decl.halo[k][side]:
                self._add("halo", op,
                          f"offset {o:+d} on dim {k + 1} reads outside "
                          f"the declared halo {decl.halo[k]} of "
                          f"{ref.name}")

    # -- coverage (mirrors analysis.verify_offsets at plan level) -----------
    def _resident_depth(self, state: State, name: str, dim: int,
                        sign: int) -> int:
        cover = state.get((name, dim, sign))
        return 0 if cover is None else cover.amount

    def _apply_shift(self, state: State, op: OverlapShiftOp) -> None:
        decl = self.plan.arrays.get(op.array)
        if decl is None or not 1 <= op.dim <= len(decl.shape) or \
                op.shift == 0:
            return
        rank = len(decl.shape)
        d = op.dim - 1
        sign = 1 if op.shift > 0 else -1
        ortho = []
        for k in range(rank):
            if k == d:
                ortho.append((0, 0))
                continue
            lo = hi = 0
            if op.rsd is not None and len(op.rsd.dims) == rank and \
                    op.rsd.dims[k] is not None:
                lo = op.rsd.dims[k].lo
                hi = op.rsd.dims[k].hi
            if op.base_offsets and len(op.base_offsets) == rank:
                o = op.base_offsets[k]
                lo = max(lo, -o if o < 0 else 0)
                hi = max(hi, o if o > 0 else 0)
            # pickup is only as deep as the sender's dim-k residency at
            # the moment this shift executes (Figures 9/10)
            lo = min(lo, self._resident_depth(state, op.array, k, -1))
            hi = min(hi, self._resident_depth(state, op.array, k, +1))
            ortho.append((lo, hi))
        key = (op.array, d, sign)
        cover = RegionCover(abs(op.shift), tuple(ortho), op.boundary)
        prev = state.get(key)
        if prev is not None and prev.fill == cover.fill:
            ortho2 = tuple((max(a[0], b[0]), max(a[1], b[1]))
                           for a, b in zip(prev.ortho, cover.ortho))
            cover = RegionCover(max(prev.amount, cover.amount), ortho2,
                                cover.fill)
        state[key] = cover

    def _kill(self, state: State, name: str) -> None:
        for key in list(state):
            if key[0] == name:
                del state[key]

    def _check_ref_coverage(self, state: State, op: PlanOp,
                            ref: OffsetRef) -> None:
        offs = ref.offsets
        clean = True
        for k, o in enumerate(offs):
            if o == 0:
                continue
            sign = 1 if o > 0 else -1
            cover = state.get((ref.name, k, sign))
            if cover is None:
                self._add("coverage", op,
                          f"{ref}: no prior overlap_shift fills dim "
                          f"{k + 1} direction "
                          f"{'+' if sign > 0 else '-'}")
                clean = False
                continue
            if cover.fill != ref.boundary:
                self._add("coverage", op,
                          f"{ref}: fill kind mismatch on dim {k + 1}: "
                          f"region holds {cover.fill}, reference needs "
                          f"{ref.boundary}")
                clean = False
                continue
            if cover.amount < abs(o):
                self._add("coverage", op,
                          f"{ref}: overlap depth {cover.amount} < "
                          f"|{o}| on dim {k + 1}")
                clean = False
        active = [k for k, o in enumerate(offs) if o != 0]
        if clean and len(active) > 1 and not self._corner_covered(
                state, ref, offs, active):
            self._add("coverage", op,
                      f"{ref}: corner cells not carried — no shift "
                      f"order covers offset {offs}")

    def _corner_covered(self, state: State, ref: OffsetRef,
                        offs: tuple[int, ...],
                        active: list[int]) -> bool:
        def covers(k: int, earlier: tuple[int, ...]) -> bool:
            cover = state[(ref.name, k, 1 if offs[k] > 0 else -1)]
            for j in earlier:
                oj = offs[j]
                lo, hi = cover.ortho[j]
                if (oj < 0 and lo < -oj) or (oj > 0 and hi < oj):
                    return False
            return True

        return any(
            all(covers(k, perm[:i]) for i, k in enumerate(perm) if i)
            for perm in permutations(active))

    # -- expression references ----------------------------------------------
    def _check_expr(self, op: PlanOp, expr: Expr, state: State,
                    allocated: set[str], ever: set[str],
                    scalars: set[str]) -> None:
        for node in expr.walk():
            if isinstance(node, OffsetRef):
                self._use(op, node.name, allocated, ever)
                self._check_offset_halo(op, node)
                if node.name in allocated:
                    self._check_ref_coverage(state, op, node)
            elif isinstance(node, ScalarRef):
                if node.name not in scalars and \
                        node.name not in self.plan.params:
                    self._add("structure", op,
                              f"unbound scalar {node.name}")
            elif isinstance(node, Reduction):
                pass  # its argument is walked by expr.walk()

    def _written_in(self, ops: list[PlanOp]) -> set[str]:
        written: set[str] = set()
        for op in walk(ops):
            if isinstance(op, LoopNestOp):
                written.update(s.lhs for s in op.statements)
            elif isinstance(op, FullShiftOp):
                written.add(op.dst)
            elif isinstance(op, SwapOp):
                written.update((op.a, op.b))
            elif isinstance(op, (AllocOp, FreeOp)):
                written.update(op.names)
        return written

    # -- structured walk -----------------------------------------------------
    def _walk(self, ops: list[PlanOp], state: State,
              allocated: set[str], ever: set[str],
              scalars: set[str]) -> None:
        for op in ops:
            if isinstance(op, AllocOp):
                for name in op.names:
                    if self._decl(op, name) is None:
                        continue
                    if name in allocated:
                        self._add("alloc", op,
                                  f"array {name} allocated while "
                                  f"already live (missing free?)")
                    allocated.add(name)
                    ever.add(name)
                    self._kill(state, name)
            elif isinstance(op, FreeOp):
                for name in op.names:
                    if name not in allocated:
                        self._add("alloc", op,
                                  f"free of unallocated array {name} "
                                  f"(alloc/free mismatch)")
                    allocated.discard(name)
                    ever.add(name)
                    self._kill(state, name)
            elif isinstance(op, OverlapShiftOp):
                decl = self._decl(op, op.array)
                self._use(op, op.array, allocated, ever)
                if decl is not None:
                    self._check_shift_bounds(op, decl)
                self._apply_shift(state, op)
            elif isinstance(op, FullShiftOp):
                src = self._decl(op, op.src)
                dst = self._decl(op, op.dst)
                self._use(op, op.src, allocated, ever)
                self._use(op, op.dst, allocated, ever)
                if src is not None and dst is not None and \
                        src.shape != dst.shape:
                    self._add("structure", op,
                              f"shape mismatch: {op.src}{src.shape} -> "
                              f"{op.dst}{dst.shape}")
                self._kill(state, op.dst)
            elif isinstance(op, LoopNestOp):
                if not op.statements:
                    self._add("structure", op, "empty loop nest")
                    continue
                for stmt in op.statements:
                    decl = self._decl(op, stmt.lhs)
                    self._use(op, stmt.lhs, allocated, ever)
                    if decl is not None and \
                            len(op.space) != len(decl.shape):
                        self._add("structure", op,
                                  f"iteration space rank "
                                  f"{len(op.space)} != rank of "
                                  f"{stmt.lhs}")
                    self._check_expr(op, stmt.rhs, state, allocated,
                                     ever, scalars)
                    if stmt.mask is not None:
                        self._check_expr(op, stmt.mask, state,
                                         allocated, ever, scalars)
                    self._kill(state, stmt.lhs)
            elif isinstance(op, SwapOp):
                da = self._decl(op, op.a)
                db = self._decl(op, op.b)
                self._use(op, op.a, allocated, ever)
                self._use(op, op.b, allocated, ever)
                if op.a == op.b:
                    self._add("structure", op,
                              "swap of an array with itself")
                elif da is not None and db is not None:
                    if da.shape != db.shape or da.dtype != db.dtype \
                            or da.distribution != db.distribution \
                            or da.halo != db.halo:
                        self._add(
                            "structure", op,
                            f"swapped arrays must agree on shape/"
                            f"dtype/distribution/halo: "
                            f"{op.a}({da.shape},{da.dtype},{da.halo}) "
                            f"vs {op.b}({db.shape},{db.dtype},"
                            f"{db.halo})")
                    # halo residency travels with the buffers
                    sa = {k: v for k, v in state.items()
                          if k[0] == op.a}
                    sb = {k: v for k, v in state.items()
                          if k[0] == op.b}
                    self._kill(state, op.a)
                    self._kill(state, op.b)
                    for (_, d, s), c in sa.items():
                        state[(op.b, d, s)] = c
                    for (_, d, s), c in sb.items():
                        state[(op.a, d, s)] = c
            elif isinstance(op, ScalarAssignOp):
                self._check_expr(op, op.rhs, state, allocated, ever,
                                 scalars)
                scalars.add(op.name)
            elif isinstance(op, SeqLoopOp):
                scalars.add(op.var)
                self._enter_loop(op, op.body, state, allocated, ever,
                                 scalars)
            elif isinstance(op, WhileOp):
                self._check_expr(op, op.cond, state, allocated, ever,
                                 scalars)
                self._enter_loop(op, op.body, state, allocated, ever,
                                 scalars)
            elif isinstance(op, CondOp):
                self._check_expr(op, op.cond, state, allocated, ever,
                                 scalars)
                s_then, s_else = dict(state), dict(state)
                a_then, a_else = set(allocated), set(allocated)
                self._walk(op.then_ops, s_then, a_then, ever, scalars)
                self._walk(op.else_ops, s_else, a_else, ever, scalars)
                if a_then != a_else:
                    self._add("alloc", op,
                              f"branches disagree on allocation state: "
                              f"then={sorted(a_then)} "
                              f"else={sorted(a_else)}")
                allocated.clear()
                allocated.update(a_then & a_else)
                state.clear()
                for key in set(s_then) & set(s_else):
                    met = s_then[key].meet(s_else[key])
                    if met is not None:
                        state[key] = met
            elif isinstance(op, OverlappedOp):
                for comm in op.comm_ops:
                    if not isinstance(comm, OverlapShiftOp):
                        self._add("structure", op,
                                  f"comm block holds "
                                  f"{type(comm).__name__}, only "
                                  f"OverlapShiftOp may overlap")
                self._walk(list(op.comm_ops), state, allocated, ever,
                           scalars)
                self._walk([op.nest], state, allocated, ever, scalars)
            else:
                self._add("structure", op,
                          f"unknown plan op {type(op).__name__}")

    def _enter_loop(self, op: PlanOp, body: list[PlanOp], state: State,
                    allocated: set[str], ever: set[str],
                    scalars: set[str]) -> None:
        # conservative around the back edge: residency of anything the
        # body redefines is unavailable on entry to any iteration
        for name in self._written_in(body):
            self._kill(state, name)
        entry = set(allocated)
        self._walk(body, state, allocated, ever, scalars)
        if allocated != entry:
            gained = sorted(allocated - entry)
            lost = sorted(entry - allocated)
            detail = "; ".join(
                p for p in (f"leaks {gained}" if gained else "",
                            f"frees {lost}" if lost else "") if p)
            self._add("alloc", op,
                      f"loop body changes allocation state across "
                      f"iterations: {detail}")

    def run(self) -> list[PlanProblem]:
        self._check_entry()
        allocated = {n for n in self.plan.entry_arrays
                     if n in self.plan.arrays}
        self._walk(self.plan.ops, {}, allocated, set(allocated),
                   set(self.plan.scalar_names))
        return self.problems


def verify_plan(plan: Plan) -> list[PlanProblem]:
    """Check every plan invariant; returns the (empty when sound)
    problem list."""
    return _PlanVerifier(plan).run()


def assert_plan_valid(plan: Plan, phase: str = "codegen") -> None:
    """Raise :class:`PlanVerificationError` if the plan is invalid."""
    problems = verify_plan(plan)
    if problems:
        shown = "\n  ".join(str(p) for p in problems[:8])
        more = len(problems) - 8
        tail = f"\n  ... and {more} more" if more > 0 else ""
        raise PlanVerificationError(
            f"invalid plan after {phase}: {len(problems)} problem(s)\n"
            f"  {shown}{tail}")
