"""The Plan IR package: typed ops, verifier, passes, printer, serializer.

The plan is the compiler's lowest-level IR — the executable SPMD
program.  This package gives it the infrastructure of a real IR:

- :mod:`repro.plan.ops` — the op dataclasses with a uniform
  ``children()``/``rebuild()`` walker (:func:`walk`, :func:`map_blocks`)
- :mod:`repro.plan.verify` — structural + paper-semantic invariants,
  run after codegen and after every plan pass
- :mod:`repro.plan.passes` — post-codegen optimizations (scheduling,
  shift coalescing, dead alloc elimination)
- :mod:`repro.plan.printer` — the stable textual format
- :mod:`repro.plan.serialize` — versioned JSON for golden tests and
  the persistent plan cache

``repro.compiler.plan`` re-exports the op types for backwards
compatibility.
"""

from repro.plan.ops import (
    AllocOp, ArrayDecl, Blocks, Box, CompiledProgram, CompileReport,
    CondOp, FreeOp, FullShiftOp, LoopNestOp, NestStmt, OverlappedOp,
    OverlapShiftOp, Plan, PlanOp, Region, ScalarAssignOp, SeqLoopOp,
    SwapOp, WhileOp, map_blocks, map_regions, op_label, walk,
)
from repro.plan.printer import format_op, plan_to_text
from repro.plan.passes import (
    CoalesceShiftsPass, DeadAllocElimPass, HoistInvariantShiftsPass,
    PingPongElimPass, PlanPass, PlanPassManager, SchedulePass,
    default_plan_passes,
)
from repro.plan.serialize import (
    PLAN_SCHEMA_VERSION, plan_from_dict, plan_from_json, plan_to_dict,
    plan_to_json, program_from_dict, program_from_json, program_to_dict,
    program_to_json,
)
from repro.plan.verify import PlanProblem, assert_plan_valid, verify_plan

__all__ = [
    "AllocOp", "ArrayDecl", "Blocks", "Box", "CoalesceShiftsPass",
    "CompileReport", "CompiledProgram", "CondOp", "DeadAllocElimPass",
    "FreeOp", "FullShiftOp", "HoistInvariantShiftsPass", "LoopNestOp",
    "NestStmt", "OverlappedOp", "OverlapShiftOp",
    "PLAN_SCHEMA_VERSION", "PingPongElimPass", "Plan", "PlanOp",
    "PlanPass", "PlanPassManager", "PlanProblem", "Region",
    "ScalarAssignOp", "SchedulePass", "SeqLoopOp", "SwapOp", "WhileOp",
    "assert_plan_valid", "default_plan_passes", "format_op",
    "map_blocks", "map_regions", "op_label", "plan_from_dict",
    "plan_from_json", "plan_to_dict", "plan_to_json", "plan_to_text",
    "program_from_dict", "program_from_json", "program_to_dict",
    "program_to_json", "verify_plan", "walk",
]
