"""Versioned JSON (de)serialization of plans and compiled programs.

The wire format is deterministic — dict keys are emitted sorted and the
encoder is pure — so ``serialize(load(serialize(x)))`` is byte-identical
to ``serialize(x)``; golden-plan tests and the persistent plan cache
both rely on this.  ``PLAN_SCHEMA_VERSION`` gates compatibility: any
change to the op set, an op's fields, or the expression encoding must
bump it, and loaders reject documents from a different version (the
cache treats that as a miss, CI treats a golden-plan diff without a
bump as a failure).
"""

from __future__ import annotations

import dataclasses
import importlib
import json

import numpy as np

from repro.errors import PipelineError
from repro.ir.linexpr import LinExpr
from repro.ir.nodes import (
    BinOp, Compare, Const, Expr, Intrinsic, OffsetRef, Reduction,
    ScalarRef, UnaryOp,
)
from repro.ir.rsd import RSD, RSDim
from repro.ir.types import DistKind, Distribution
from repro.machine.cost_model import LoopStats
from repro.plan.ops import (
    AllocOp, ArrayDecl, CompiledProgram, CompileReport, CondOp, FreeOp,
    FullShiftOp, LoopNestOp, NestStmt, OverlappedOp, OverlapShiftOp,
    Plan, PlanOp, ScalarAssignOp, SeqLoopOp, SwapOp, WhileOp,
)

#: Bump on ANY change to the serialized shape of a plan.
#: v2: ``SwapOp`` ("swap") joined the op set and plans carry an
#: ``outputs`` field (loop-aware plan optimization).
PLAN_SCHEMA_VERSION = 2


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------

def _lin_to(e: LinExpr) -> dict:
    return {"const": int(e.const),
            "coeffs": [[n, int(c)] for n, c in e.coeffs]}


def _lin_from(d: dict) -> LinExpr:
    return LinExpr(d["const"], tuple((n, c) for n, c in d["coeffs"]))


def _rsd_to(rsd: RSD | None) -> list | None:
    if rsd is None:
        return None
    return [None if d is None else [d.lo, d.hi] for d in rsd.dims]


def _rsd_from(doc: list | None) -> RSD | None:
    if doc is None:
        return None
    return RSD(tuple(None if d is None else RSDim(d[0], d[1])
                     for d in doc))


def _dist_to(dist: Distribution) -> list[str]:
    return [k.value for k in dist.dims]


def _dist_from(doc: list[str]) -> Distribution:
    return Distribution(tuple(DistKind(v) for v in doc))


def _stats_to(st: LoopStats) -> dict:
    return {f.name: float(getattr(st, f.name))
            for f in dataclasses.fields(LoopStats)}


def _stats_from(doc: dict) -> LoopStats:
    return LoopStats(**doc)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

def _expr_to(e: Expr) -> dict:
    if isinstance(e, Const):
        return {"k": "const", "value": float(e.value)}
    if isinstance(e, ScalarRef):
        return {"k": "scalar", "name": e.name}
    if isinstance(e, OffsetRef):
        return {"k": "offset", "name": e.name,
                "offsets": [int(o) for o in e.offsets],
                "boundary": e.boundary}
    if isinstance(e, BinOp):
        return {"k": "bin", "o": e.op, "l": _expr_to(e.left),
                "r": _expr_to(e.right)}
    if isinstance(e, UnaryOp):
        return {"k": "un", "o": e.op, "x": _expr_to(e.operand)}
    if isinstance(e, Compare):
        return {"k": "cmp", "o": e.op, "l": _expr_to(e.left),
                "r": _expr_to(e.right)}
    if isinstance(e, Intrinsic):
        return {"k": "intr", "name": e.name,
                "args": [_expr_to(a) for a in e.args]}
    if isinstance(e, Reduction):
        return {"k": "red", "o": e.op, "x": _expr_to(e.arg)}
    raise PipelineError(
        f"cannot serialize expression node {type(e).__name__}")


def _expr_from(d: dict) -> Expr:
    k = d["k"]
    if k == "const":
        return Const(d["value"])
    if k == "scalar":
        return ScalarRef(d["name"])
    if k == "offset":
        return OffsetRef(d["name"], tuple(d["offsets"]), d["boundary"])
    if k == "bin":
        return BinOp(d["o"], _expr_from(d["l"]), _expr_from(d["r"]))
    if k == "un":
        return UnaryOp(d["o"], _expr_from(d["x"]))
    if k == "cmp":
        return Compare(d["o"], _expr_from(d["l"]), _expr_from(d["r"]))
    if k == "intr":
        return Intrinsic(d["name"],
                         tuple(_expr_from(a) for a in d["args"]))
    if k == "red":
        return Reduction(d["o"], _expr_from(d["x"]))
    raise PipelineError(f"unknown expression tag {k!r}")


# ---------------------------------------------------------------------------
# ops
# ---------------------------------------------------------------------------

def _op_to(op: PlanOp) -> dict:
    if isinstance(op, AllocOp):
        return {"op": "alloc", "names": list(op.names)}
    if isinstance(op, FreeOp):
        return {"op": "free", "names": list(op.names)}
    if isinstance(op, OverlapShiftOp):
        return {"op": "overlap_shift", "array": op.array,
                "shift": int(op.shift), "dim": int(op.dim),
                "rsd": _rsd_to(op.rsd),
                "base_offsets": (None if op.base_offsets is None
                                 else [int(o) for o in op.base_offsets]),
                "boundary": op.boundary}
    if isinstance(op, FullShiftOp):
        return {"op": "full_shift", "dst": op.dst, "src": op.src,
                "shift": int(op.shift), "dim": int(op.dim),
                "boundary": op.boundary}
    if isinstance(op, LoopNestOp):
        return {"op": "loop_nest",
                "statements": [
                    {"lhs": s.lhs, "rhs": _expr_to(s.rhs),
                     "mask": None if s.mask is None else _expr_to(s.mask)}
                    for s in op.statements],
                "space": [[_lin_to(lo), _lin_to(hi)]
                          for lo, hi in op.space],
                "stats": _stats_to(op.stats),
                "fused": op.fused, "memopt": op.memopt,
                "unroll_jam": int(op.unroll_jam), "label": op.label}
    if isinstance(op, ScalarAssignOp):
        return {"op": "scalar_assign", "name": op.name,
                "rhs": _expr_to(op.rhs)}
    if isinstance(op, SwapOp):
        return {"op": "swap", "a": op.a, "b": op.b}
    if isinstance(op, SeqLoopOp):
        return {"op": "seq_loop", "var": op.var, "lo": _lin_to(op.lo),
                "hi": _lin_to(op.hi),
                "body": [_op_to(o) for o in op.body]}
    if isinstance(op, WhileOp):
        return {"op": "while", "cond": _expr_to(op.cond),
                "body": [_op_to(o) for o in op.body]}
    if isinstance(op, CondOp):
        return {"op": "cond", "cond": _expr_to(op.cond),
                "then": [_op_to(o) for o in op.then_ops],
                "else": [_op_to(o) for o in op.else_ops]}
    if isinstance(op, OverlappedOp):
        return {"op": "overlapped",
                "comm": [_op_to(o) for o in op.comm_ops],
                "nest": _op_to(op.nest)}
    raise PipelineError(f"cannot serialize plan op {type(op).__name__}")


def _op_from(d: dict) -> PlanOp:
    kind = d["op"]
    if kind == "alloc":
        return AllocOp(tuple(d["names"]))
    if kind == "free":
        return FreeOp(tuple(d["names"]))
    if kind == "overlap_shift":
        return OverlapShiftOp(
            d["array"], d["shift"], d["dim"], rsd=_rsd_from(d["rsd"]),
            base_offsets=(None if d["base_offsets"] is None
                          else tuple(d["base_offsets"])),
            boundary=d["boundary"])
    if kind == "full_shift":
        return FullShiftOp(d["dst"], d["src"], d["shift"], d["dim"],
                           boundary=d["boundary"])
    if kind == "loop_nest":
        return LoopNestOp(
            statements=[NestStmt(s["lhs"], _expr_from(s["rhs"]),
                                 None if s["mask"] is None
                                 else _expr_from(s["mask"]))
                        for s in d["statements"]],
            space=tuple((_lin_from(lo), _lin_from(hi))
                        for lo, hi in d["space"]),
            stats=_stats_from(d["stats"]),
            fused=d["fused"], memopt=d["memopt"],
            unroll_jam=d["unroll_jam"], label=d["label"])
    if kind == "scalar_assign":
        return ScalarAssignOp(d["name"], _expr_from(d["rhs"]))
    if kind == "swap":
        return SwapOp(d["a"], d["b"])
    if kind == "seq_loop":
        return SeqLoopOp(d["var"], _lin_from(d["lo"]),
                         _lin_from(d["hi"]),
                         [_op_from(o) for o in d["body"]])
    if kind == "while":
        return WhileOp(_expr_from(d["cond"]),
                       [_op_from(o) for o in d["body"]])
    if kind == "cond":
        return CondOp(_expr_from(d["cond"]),
                      [_op_from(o) for o in d["then"]],
                      [_op_from(o) for o in d["else"]])
    if kind == "overlapped":
        nest = _op_from(d["nest"])
        assert isinstance(nest, LoopNestOp)
        return OverlappedOp([_op_from(o) for o in d["comm"]], nest)
    raise PipelineError(f"unknown plan op tag {kind!r}")


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------

def _decl_to(decl: ArrayDecl) -> dict:
    return {"name": decl.name, "shape": [int(s) for s in decl.shape],
            "distribution": _dist_to(decl.distribution),
            "dtype": str(decl.dtype),
            "halo": [[int(a), int(b)] for a, b in decl.halo],
            "is_temporary": decl.is_temporary}


def _decl_from(d: dict) -> ArrayDecl:
    return ArrayDecl(d["name"], tuple(d["shape"]),
                     _dist_from(d["distribution"]),
                     np.dtype(d["dtype"]),
                     tuple((a, b) for a, b in d["halo"]),
                     is_temporary=d["is_temporary"])


def plan_to_dict(plan: Plan) -> dict:
    """Pure-JSON document for one plan (schema-stamped)."""
    return {
        "schema": PLAN_SCHEMA_VERSION,
        # a list, not a mapping: declaration order is program order
        "arrays": [_decl_to(plan.arrays[n]) for n in plan.arrays],
        "params": {k: int(v) for k, v in plan.params.items()},
        "scalar_names": list(plan.scalar_names),
        "entry_arrays": list(plan.entry_arrays),
        "processors": (None if plan.processors is None
                       else list(plan.processors)),
        "outputs": (None if plan.outputs is None
                    else list(plan.outputs)),
        "ops": [_op_to(op) for op in plan.ops],
    }


def _check_schema(doc: dict, what: str) -> None:
    found = doc.get("schema")
    if found != PLAN_SCHEMA_VERSION:
        raise PipelineError(
            f"{what} has schema version {found!r}; this build reads "
            f"version {PLAN_SCHEMA_VERSION}")


def plan_from_dict(doc: dict) -> Plan:
    _check_schema(doc, "plan document")
    decls = [_decl_from(d) for d in doc["arrays"]]
    return Plan(
        arrays={d.name: d for d in decls},
        params=dict(doc["params"]),
        scalar_names=tuple(doc["scalar_names"]),
        ops=[_op_from(o) for o in doc["ops"]],
        entry_arrays=tuple(doc["entry_arrays"]),
        processors=(None if doc["processors"] is None
                    else tuple(doc["processors"])),
        outputs=(None if doc["outputs"] is None
                 else tuple(doc["outputs"])),
    )


def _dumps(doc: dict) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def plan_to_json(plan: Plan) -> str:
    return _dumps(plan_to_dict(plan))


def plan_from_json(text: str) -> Plan:
    return plan_from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# compiled programs (plan + report), for the persistent cache
# ---------------------------------------------------------------------------

def _pass_stat_to(value: object) -> object:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {"__dataclass__": f"{cls.__module__}:{cls.__qualname__}",
                "fields": dataclasses.asdict(value)}
    return value


def _pass_stat_from(value: object) -> object:
    if isinstance(value, dict) and "__dataclass__" in value:
        path = value["__dataclass__"]
        try:
            mod_name, qualname = path.split(":")
            if not mod_name.startswith("repro."):
                raise ValueError(path)
            cls = getattr(importlib.import_module(mod_name), qualname)
            return cls(**value["fields"])
        except Exception:
            return dict(value["fields"])
    return value


def program_to_dict(program: CompiledProgram) -> dict:
    report = {f.name: getattr(program.report, f.name)
              for f in dataclasses.fields(CompileReport)
              if f.name != "pass_stats"}
    report["pass_stats"] = {
        k: _pass_stat_to(v)
        for k, v in program.report.pass_stats.items()}
    return {
        "schema": PLAN_SCHEMA_VERSION,
        "plan": plan_to_dict(program.plan),
        "report": report,
        "source_name": program.source_name,
    }


def program_from_dict(doc: dict) -> CompiledProgram:
    _check_schema(doc, "program document")
    rep = dict(doc["report"])
    rep["pass_stats"] = {k: _pass_stat_from(v)
                         for k, v in rep["pass_stats"].items()}
    return CompiledProgram(
        plan=plan_from_dict(doc["plan"]),
        report=CompileReport(**rep),
        source_name=doc["source_name"],
    )


def program_to_json(program: CompiledProgram) -> str:
    return _dumps(program_to_dict(program))


def program_from_json(text: str) -> CompiledProgram:
    return program_from_dict(json.loads(text))
