"""Plan-level optimization passes.

These run *after* codegen, on the lowest-level IR — the layer the
AST-level pipeline (offset arrays, communication unioning, fusion)
cannot see.  Codegen can re-introduce redundancy the statement passes
already eliminated once (e.g. an ``OverlapShiftOp`` subsumed by an
earlier one in the same straight-line block after fusion regrouping),
and only the plan knows the final alloc/free placement and the loop
structure of iterative solvers.

All passes are built on the recursive region framework
(:func:`repro.plan.ops.map_regions`): every rewrite sees each block
together with its structural context (top level, ``DO`` body,
``DO WHILE`` body, conditional arm, overlapped-communication block), so
the same pass logic fires inside loop and conditional bodies as at the
top level, and loop-aware passes can reason across region boundaries.

Five passes ship, run in this order by :func:`default_plan_passes`:

``schedule``
    Stable topological list scheduling within every region: hoists
    communication ops as early as their dependences allow (so later
    coalescing sees congruent comms adjacent) and sinks frees to their
    last legal position.  Dependences are computed from each op's
    read/write effect sets; ties preserve original order, so the
    schedule is deterministic.
``hoist-invariant-shifts``
    Loop-invariant communication motion: an ``OverlapShiftOp`` in a
    ``DO`` body whose array is never assigned inside the body is
    re-sending bitwise-identical halos every iteration.  When the trip
    count is provably at least one, all shifts of such arrays move (in
    order) to the loop preheader and execute once.  Applies bottom-up,
    so invariant shifts cascade out of nested loops in a single run.
``pingpong-elim``
    Double-buffer copy elimination: the solver idiom
    ``A = expr(B); B = A`` (a whole-array copy closing each iteration)
    becomes a :class:`~repro.plan.ops.SwapOp` exchanging the two array
    bindings, plus one whole-array copy in the preheader that seeds the
    scratch buffer.  Legal only when the scratch array is not in
    ``plan.outputs`` and is referenced nowhere outside the idiom; the
    two declarations get their halos max-merged so the buffers are
    structurally interchangeable.
``coalesce-shifts``
    Removes an ``OverlapShiftOp`` whose effect is subsumed by an
    earlier shift: same array/dimension/direction/fill, at least the
    depth, an effective RSD that contains the later one, and no
    intervening write to the array.  A non-trivial RSD is only
    coalesced against the *immediately preceding* shift of that array —
    orthogonal pickup depends on the array's residency at execution
    time, which other interleaved shifts of the same array change.
    Subsumption state threads *across* region boundaries: into
    overlapped-communication blocks, and from a loop preheader into the
    loop body for arrays the body never writes — so a body shift
    subsumed by a preheader shift (e.g. one the hoist pass just moved)
    is removed.
``dead-alloc``
    Deletes alloc/free pairs (and the declarations) of arrays nothing
    reads or writes, a situation AST-level passes cannot create or see
    because temporaries are only named during codegen.

Every pass is verified by :mod:`repro.plan.verify` after it runs (the
:class:`PlanPassManager` enforces this), so a miscompiling pass fails
loudly at compile time instead of corrupting results.  The loop-aware
passes never change observable arrays (``plan.outputs``), scalars, or
the cross-backend equivalence contract — they only reduce modelled
communication and copying (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import PlanVerificationError
from repro.ir.nodes import OffsetRef, ScalarRef
from repro.ir.rsd import RSD
from repro.plan.ops import (
    AllocOp, CondOp, FreeOp, FullShiftOp, LoopNestOp, NestStmt,
    OverlappedOp, OverlapShiftOp, Plan, PlanOp, Region, ScalarAssignOp,
    SeqLoopOp, SwapOp, WhileOp, map_regions, walk,
)
from repro.plan.verify import verify_plan


class PlanPass:
    """Base class: a plan-to-plan rewrite with integer stats."""

    name = "plan-pass"

    def run(self, plan: Plan) -> tuple[Plan, dict[str, int]]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# effect sets (shared by scheduling and coalescing)
# ---------------------------------------------------------------------------

@dataclass
class _Effects:
    reads: set[str]
    writes: set[str]
    sreads: set[str]
    swrites: set[str]


def _expr_refs(expr) -> tuple[set[str], set[str]]:
    arrays, scalars = set(), set()
    for node in expr.walk():
        if isinstance(node, OffsetRef):
            arrays.add(node.name)
        elif isinstance(node, ScalarRef):
            scalars.add(node.name)
    return arrays, scalars


def _op_effects(op: PlanOp) -> _Effects:
    """What one op (including everything nested inside it) reads and
    writes.  Overlap shifts both read and write their array; frees are
    modelled as writes so uses order before them and reallocations
    after."""
    eff = _Effects(set(), set(), set(), set())

    def leaf(o: PlanOp) -> None:
        if isinstance(o, OverlapShiftOp):
            eff.reads.add(o.array)
            eff.writes.add(o.array)
        elif isinstance(o, FullShiftOp):
            eff.reads.add(o.src)
            eff.writes.add(o.dst)
        elif isinstance(o, (AllocOp, FreeOp)):
            if isinstance(o, FreeOp):
                eff.reads.update(o.names)
            eff.writes.update(o.names)
        elif isinstance(o, LoopNestOp):
            for stmt in o.statements:
                eff.writes.add(stmt.lhs)
                for e in ([stmt.rhs] +
                          ([stmt.mask] if stmt.mask is not None else [])):
                    a, s = _expr_refs(e)
                    eff.reads.update(a)
                    eff.sreads.update(s)
            for lo, hi in o.space:
                eff.sreads.update(lo.symbols())
                eff.sreads.update(hi.symbols())
        elif isinstance(o, ScalarAssignOp):
            a, s = _expr_refs(o.rhs)
            eff.reads.update(a)
            eff.sreads.update(s)
            eff.swrites.add(o.name)
        elif isinstance(o, SeqLoopOp):
            eff.swrites.add(o.var)
            eff.sreads.update(o.lo.symbols())
            eff.sreads.update(o.hi.symbols())
        elif isinstance(o, SwapOp):
            eff.reads.update((o.a, o.b))
            eff.writes.update((o.a, o.b))
        elif isinstance(o, (WhileOp, CondOp)):
            a, s = _expr_refs(o.cond)
            eff.reads.update(a)
            eff.sreads.update(s)

    for inner in walk([op]):
        leaf(inner)
    return eff


def _owned_writes(ops: list[PlanOp]) -> set[str]:
    """Arrays whose *owned* cells some op in ``ops`` (recursively) may
    assign.  Overlap shifts are excluded: they only write halo cells,
    which is exactly why shifts of an otherwise-unwritten array are
    loop-invariant."""
    written: set[str] = set()
    for op in walk(ops):
        if isinstance(op, LoopNestOp):
            written.update(s.lhs for s in op.statements)
        elif isinstance(op, FullShiftOp):
            written.add(op.dst)
        elif isinstance(op, SwapOp):
            written.update((op.a, op.b))
        elif isinstance(op, (AllocOp, FreeOp)):
            written.update(op.names)
    return written


def _conflicts(a: _Effects, b: _Effects) -> bool:
    return bool((a.writes & (b.reads | b.writes))
                or (a.reads & b.writes)
                or (a.swrites & (b.sreads | b.swrites))
                or (a.sreads & b.swrites))


# ---------------------------------------------------------------------------
# schedule
# ---------------------------------------------------------------------------

class SchedulePass(PlanPass):
    """Stable topological list scheduling of every block."""

    name = "schedule"

    def run(self, plan: Plan) -> tuple[Plan, dict[str, int]]:
        moved = 0

        def rank(op: PlanOp) -> int:
            if isinstance(op, (OverlapShiftOp, OverlappedOp)):
                return 0
            if isinstance(op, FreeOp):
                return 2
            return 1

        def schedule(block: list[PlanOp],
                     region: Region) -> list[PlanOp]:
            nonlocal moved
            n = len(block)
            if n < 2:
                return block
            effects = [_op_effects(op) for op in block]
            succs: list[list[int]] = [[] for _ in range(n)]
            npreds = [0] * n
            for i in range(n):
                for j in range(i + 1, n):
                    if _conflicts(effects[i], effects[j]):
                        succs[i].append(j)
                        npreds[j] += 1
            ready = sorted(i for i in range(n) if npreds[i] == 0)
            order: list[int] = []
            while ready:
                i = min(ready, key=lambda k: (rank(block[k]), k))
                ready.remove(i)
                order.append(i)
                for j in succs[i]:
                    npreds[j] -= 1
                    if npreds[j] == 0:
                        ready.append(j)
            moved += sum(1 for pos, i in enumerate(order) if pos != i)
            return [block[i] for i in order]

        new_ops = map_regions(plan.ops, schedule)
        return replace(plan, ops=new_ops), {"moved_ops": moved}


# ---------------------------------------------------------------------------
# loop-invariant communication motion
# ---------------------------------------------------------------------------

class HoistInvariantShiftsPass(PlanPass):
    """Hoist loop-invariant overlap shifts out of ``DO`` bodies.

    An ``OverlapShiftOp`` whose array's owned cells are never assigned
    inside the loop body transports bitwise-identical data every
    iteration; executing it once in the preheader leaves every covered
    halo cell with exactly the values the in-loop sends produced, while
    the per-iteration message count drops by the number of hoisted
    shifts.  Hoisting preserves the relative order of a given array's
    shifts (orthogonal corner pickup depends on it) and moves *all*
    shifts of an invariant array together.

    Only ``DO`` loops with a trip count provably at least one (bounds
    evaluable over the plan's size parameters) are transformed; a
    zero-trip loop never communicates, so hoisting would add messages.
    ``DO WHILE`` bodies are skipped for the same reason.  Shifts nested
    inside conditional arms within the body stay put (they may not
    execute every iteration); shifts inside overlapped-communication
    blocks at the body's top level are hoisted and the
    ``OverlappedOp`` degrades to its bare nest when its communication
    block empties.  Bottom-up application cascades invariant shifts out
    of nested loop towers in one run.
    """

    name = "hoist-invariant-shifts"

    def run(self, plan: Plan) -> tuple[Plan, dict[str, int]]:
        hoisted = 0

        def trip_at_least_one(op: SeqLoopOp) -> bool:
            try:
                lo = op.lo.evaluate(dict(plan.params))
                hi = op.hi.evaluate(dict(plan.params))
            except Exception:
                return False  # bounds depend on runtime scalars
            return hi >= lo

        def split_body(body: list[PlanOp], invariant: set[str]
                       ) -> tuple[list[PlanOp], list[PlanOp]]:
            """Partition a loop body into (hoisted shifts, rest)."""
            nonlocal hoisted
            pre: list[PlanOp] = []
            rest: list[PlanOp] = []
            for op in body:
                if isinstance(op, OverlapShiftOp) and \
                        op.array in invariant:
                    pre.append(op)
                    hoisted += 1
                elif isinstance(op, OverlappedOp):
                    keep = [c for c in op.comm_ops
                            if not (isinstance(c, OverlapShiftOp)
                                    and c.array in invariant)]
                    moved = [c for c in op.comm_ops
                             if isinstance(c, OverlapShiftOp)
                             and c.array in invariant]
                    pre.extend(moved)
                    hoisted += len(moved)
                    if not keep:
                        rest.append(op.nest)
                    elif len(keep) != len(op.comm_ops):
                        rest.append(replace(op, comm_ops=keep))
                    else:
                        rest.append(op)
                else:
                    rest.append(op)
            return pre, rest

        def rewrite(block: list[PlanOp],
                    region: Region) -> list[PlanOp]:
            out: list[PlanOp] = []
            for op in block:
                if isinstance(op, SeqLoopOp) and trip_at_least_one(op):
                    shifted = {c.array for c in op.body
                               if isinstance(c, OverlapShiftOp)}
                    shifted |= {c.array for o in op.body
                                if isinstance(o, OverlappedOp)
                                for c in o.comm_ops
                                if isinstance(c, OverlapShiftOp)}
                    invariant = shifted - _owned_writes(op.body)
                    if invariant:
                        pre, body = split_body(op.body, invariant)
                        out.extend(pre)
                        out.append(op.rebuild(body))
                        continue
                out.append(op)
            return out

        new_ops = map_regions(plan.ops, rewrite)
        return replace(plan, ops=new_ops), {"hoisted_shifts": hoisted}


# ---------------------------------------------------------------------------
# ping-pong (double-buffer) copy elimination
# ---------------------------------------------------------------------------

def _is_copy_nest(op: PlanOp) -> tuple[str, str] | None:
    """``(dst, src)`` when ``op`` is a plain unmasked whole-statement
    copy nest ``dst = src<0,...,0>``, else ``None``."""
    if not isinstance(op, LoopNestOp) or len(op.statements) != 1:
        return None
    stmt = op.statements[0]
    if stmt.mask is not None:
        return None
    rhs = stmt.rhs
    if not isinstance(rhs, OffsetRef) or any(rhs.offsets) or \
            rhs.boundary is not None or rhs.name == stmt.lhs:
        return None
    return stmt.lhs, rhs.name


class PingPongElimPass(PlanPass):
    """Rewrite the double-buffer solver idiom into a pointer swap.

    A ``DO`` body computing ``A(full) = expr(B, ...)`` and closing the
    iteration with the whole-array copy ``B = A`` pays one owned-cell
    copy per point per iteration for data that a buffer exchange makes
    free.  The copy nest becomes a :class:`~repro.plan.ops.SwapOp`
    exchanging the two bindings, and a single whole-array copy
    ``A = B`` lands in the preheader so the scratch buffer's frame
    (boundary rows the loop never writes) carries ``B``'s values before
    the first exchange — keeping ``B`` bitwise identical at every
    iteration boundary, including after trip count zero.

    Legality (all checked; the pass is otherwise a no-op):

    * the plan declares an output set and the scratch ``A`` is not in
      it (``B``'s observable values never change, ``A``'s do);
    * outside the idiom, ``A`` is referenced by no op in the whole plan
      other than allocation/free;
    * inside the body, ``B``'s owned cells are written only by the
      eliminated copy, and the copy covers the full array box;
    * ``A`` and ``B`` agree on shape, dtype, and distribution, and
      neither is allocated or freed inside the body.

    The two declarations' halos are max-merged so the buffers are
    structurally interchangeable under every later shift.
    """

    name = "pingpong-elim"

    def run(self, plan: Plan) -> tuple[Plan, dict[str, int]]:
        if plan.outputs is None:
            return plan, {"pingpong_swaps": 0}
        observable = set(plan.outputs)
        arrays = dict(plan.arrays)
        swaps = 0

        def full_box(nest: LoopNestOp, name: str) -> bool:
            decl = arrays.get(name)
            if decl is None or len(nest.space) != len(decl.shape):
                return False
            try:
                params = dict(plan.params)
                return all(lo.evaluate(params) == 1
                           and hi.evaluate(params) == extent
                           for (lo, hi), extent in zip(nest.space,
                                                       decl.shape))
            except Exception:
                return False

        def refs_outside_idiom(scratch: str, loop: SeqLoopOp,
                               copy_nest: LoopNestOp) -> bool:
            """Is ``scratch`` referenced anywhere but as a nest lhs
            inside ``loop``'s body, the copy rhs, or alloc/free?"""
            body_ids = {id(o) for o in walk(loop.body)}
            for op in walk(plan.ops):
                if isinstance(op, (AllocOp, FreeOp)):
                    continue
                if isinstance(op, (SeqLoopOp, WhileOp, CondOp,
                                   OverlappedOp)):
                    # container control exprs never reference arrays'
                    # owned cells except through _expr_refs below
                    eff_exprs = []
                    if isinstance(op, (WhileOp, CondOp)):
                        eff_exprs.append(op.cond)
                    if any(scratch in _expr_refs(e)[0]
                           for e in eff_exprs):
                        return True
                    continue
                eff = _op_effects(op)
                if scratch not in (eff.reads | eff.writes):
                    continue
                if op is copy_nest:
                    continue  # the sanctioned read
                if isinstance(op, LoopNestOp) and id(op) in body_ids:
                    # writes via lhs are the producer statements; any
                    # *read* of the scratch elsewhere in the body
                    # disqualifies
                    if any(scratch in _expr_refs(s.rhs)[0]
                           or (s.mask is not None and
                               scratch in _expr_refs(s.mask)[0])
                           for s in op.statements):
                        return True
                    continue
                return True
            return False

        def alloc_in(ops: list[PlanOp], names: set[str]) -> bool:
            return any(isinstance(op, (AllocOp, FreeOp))
                       and names & set(op.names) for op in walk(ops))

        def try_rewrite(loop: SeqLoopOp) -> tuple[PlanOp, PlanOp] | None:
            """On match: (preheader copy nest, rewritten loop)."""
            for i, op in enumerate(loop.body):
                pair = _is_copy_nest(op)
                if pair is None:
                    continue
                dst, src = pair  # the idiom's  B = A
                scratch, kept = src, dst
                assert isinstance(op, LoopNestOp)
                if scratch in observable or kept == scratch:
                    continue
                da, db = arrays.get(scratch), arrays.get(kept)
                if da is None or db is None:
                    continue
                if da.shape != db.shape or da.dtype != db.dtype or \
                        da.distribution != db.distribution:
                    continue
                if not full_box(op, kept):
                    continue
                # B's owned cells written only by the eliminated copy
                others = [o for o in loop.body if o is not op]
                if kept in _owned_writes(others):
                    continue
                if alloc_in(loop.body, {scratch, kept}):
                    continue
                if refs_outside_idiom(scratch, loop, op):
                    continue
                # every iteration must refresh ALL of A's owned cells
                # before the copy — otherwise the copy transports stale
                # A values that the swapped-in buffer would not hold:
                # an unconditional unmasked full-box nest assigning A
                # must precede the copy at the body's top level
                def produces_fully(o: PlanOp) -> bool:
                    if isinstance(o, OverlappedOp):
                        o = o.nest
                    return (isinstance(o, LoopNestOp)
                            and full_box(o, scratch)
                            and any(s.lhs == scratch and s.mask is None
                                    for s in o.statements))
                if not any(produces_fully(o) for o in loop.body[:i]):
                    continue
                halo = tuple((max(a[0], b[0]), max(a[1], b[1]))
                             for a, b in zip(da.halo, db.halo))
                arrays[scratch] = replace(da, halo=halo)
                arrays[kept] = replace(db, halo=halo)
                seed = replace(
                    op,
                    statements=[NestStmt(
                        lhs=scratch,
                        rhs=OffsetRef(kept,
                                      (0,) * len(op.space), None))],
                    label="pingpong-seed")
                body = list(loop.body)
                body[i] = SwapOp(scratch, kept)
                return seed, loop.rebuild(body)
            return None

        def rewrite(block: list[PlanOp],
                    region: Region) -> list[PlanOp]:
            nonlocal swaps
            out: list[PlanOp] = []
            for op in block:
                if isinstance(op, SeqLoopOp):
                    hit = try_rewrite(op)
                    if hit is not None:
                        seed, op = hit
                        out.append(seed)
                        swaps += 1
                out.append(op)
            return out

        new_ops = map_regions(plan.ops, rewrite)
        return (replace(plan, ops=new_ops, arrays=arrays),
                {"pingpong_swaps": swaps})


# ---------------------------------------------------------------------------
# coalesce shifts
# ---------------------------------------------------------------------------

def _effective_rsd(op: OverlapShiftOp, rank: int) -> RSD:
    if op.rsd is not None:
        return op.rsd
    if op.base_offsets and any(op.base_offsets):
        return RSD.from_offsets(op.base_offsets, op.dim - 1)
    return RSD.trivial(rank, op.dim - 1)


class CoalesceShiftsPass(PlanPass):
    """Remove overlap shifts subsumed by earlier ones.

    Subsumption state threads across region boundaries (the loop-aware
    refactor): into ``OverlappedOp`` communication blocks, which execute
    inline, and from a loop preheader into ``DO``/``DO WHILE`` bodies
    for arrays the body never writes — a shift already performed before
    the loop proves every re-send of an unwritten array's halo
    redundant, in every iteration.  Conditional arms inherit the entry
    state but contribute nothing back (either arm may not execute).
    """

    name = "coalesce-shifts"

    def run(self, plan: Plan) -> tuple[Plan, dict[str, int]]:
        removed = 0

        def subsumes(a: OverlapShiftOp, b: OverlapShiftOp,
                     rank: int) -> bool:
            if a.dim != b.dim or a.boundary != b.boundary:
                return False
            if (a.shift > 0) != (b.shift > 0):
                return False
            if abs(a.shift) < abs(b.shift):
                return False
            try:
                return _effective_rsd(a, rank).contains(
                    _effective_rsd(b, rank))
            except ValueError:
                return False

        Active = dict[str, list[OverlapShiftOp]]

        def kill_writes(op: PlanOp, active: Active) -> None:
            for name in _op_effects(op).writes:
                active.pop(name, None)

        def coalesce(block: list[PlanOp], active: Active) -> list[PlanOp]:
            nonlocal removed
            out: list[PlanOp] = []
            # active: per-array shifts valid at this point (program
            # order, so [-1] is the most recent); inherited from the
            # enclosing region where sound
            for op in block:
                if isinstance(op, OverlapShiftOp):
                    decl = plan.arrays.get(op.array)
                    if decl is None:
                        out.append(op)
                        continue
                    rank = len(decl.shape)
                    prior = active.setdefault(op.array, [])
                    trivial = _effective_rsd(op, rank).is_trivial
                    # a trivial transfer picks up nothing orthogonal,
                    # so any prior subsumer proves redundancy; a
                    # non-trivial one reads the array's own residency,
                    # which only the immediately preceding shift of
                    # this array leaves unchanged
                    candidates = prior if trivial else prior[-1:]
                    if any(subsumes(a, op, rank) for a in candidates):
                        removed += 1
                        continue
                    prior.append(op)
                    out.append(op)
                elif isinstance(op, OverlappedOp):
                    # the comm block executes inline at this point
                    comm = coalesce(list(op.comm_ops), active)
                    kill_writes(op.nest, active)
                    out.append(replace(op, comm_ops=comm))
                elif isinstance(op, (SeqLoopOp, WhileOp)):
                    # loop entry state = meet of preheader and back
                    # edge: only arrays whose owned cells the body never
                    # assigns keep their preheader shifts (body shifts
                    # of such arrays rewrite bitwise-identical halos,
                    # so they do not invalidate the inherited state)
                    owned = _owned_writes(op.body)
                    inner = {k: list(v) for k, v in active.items()
                             if k not in owned}
                    body = coalesce(list(op.body), inner)
                    out.append(op.rebuild(body))
                    # after the loop (trip count may be zero), any
                    # array the body touched — written or re-shifted —
                    # has unreliable residency history
                    for name in _op_effects(op).writes:
                        active.pop(name, None)
                elif isinstance(op, CondOp):
                    then_ops = coalesce(
                        list(op.then_ops),
                        {k: list(v) for k, v in active.items()})
                    else_ops = coalesce(
                        list(op.else_ops),
                        {k: list(v) for k, v in active.items()})
                    out.append(op.rebuild(then_ops, else_ops))
                    kill_writes(op, active)
                else:
                    kill_writes(op, active)
                    out.append(op)
            return out

        new_ops = coalesce(list(plan.ops), {})
        return replace(plan, ops=new_ops), {"coalesced_shifts": removed}


# ---------------------------------------------------------------------------
# dead alloc elimination
# ---------------------------------------------------------------------------

class DeadAllocElimPass(PlanPass):
    """Delete alloc/free of arrays no op ever reads or writes."""

    name = "dead-alloc"

    def run(self, plan: Plan) -> tuple[Plan, dict[str, int]]:
        live: set[str] = set(plan.entry_arrays)
        live |= set(plan.outputs or ())
        for op in walk(plan.ops):
            if isinstance(op, (AllocOp, FreeOp)):
                continue
            eff = _op_effects(op)
            live |= eff.reads | eff.writes
        removed_allocs = 0

        def prune(block: list[PlanOp], region: Region) -> list[PlanOp]:
            nonlocal removed_allocs
            out = []
            for op in block:
                if isinstance(op, (AllocOp, FreeOp)):
                    names = tuple(n for n in op.names if n in live)
                    if isinstance(op, AllocOp):
                        removed_allocs += len(op.names) - len(names)
                    if not names:
                        continue
                    if names != op.names:
                        op = replace(op, names=names)
                out.append(op)
            return out

        new_ops = map_regions(plan.ops, prune)
        dead_decls = sorted(n for n in plan.arrays if n not in live)
        arrays = {n: d for n, d in plan.arrays.items() if n in live}
        return (replace(plan, ops=new_ops, arrays=arrays),
                {"dead_allocs": removed_allocs,
                 "dead_decls": len(dead_decls)})


# ---------------------------------------------------------------------------
# manager
# ---------------------------------------------------------------------------

def default_plan_passes() -> list[PlanPass]:
    return [SchedulePass(), HoistInvariantShiftsPass(),
            PingPongElimPass(), CoalesceShiftsPass(),
            DeadAllocElimPass()]


class PlanPassManager:
    """Runs plan passes in order, verifying the plan after each one."""

    def __init__(self, passes: list[PlanPass] | None = None,
                 verify: bool = True, tracer=None) -> None:
        self.passes = default_plan_passes() if passes is None else passes
        self.verify = verify
        self.tracer = tracer

    def run(self, plan: Plan) -> tuple[Plan, dict[str, dict[str, int]]]:
        from repro.obs.tracer import coalesce
        tracer = coalesce(self.tracer)
        stats: dict[str, dict[str, int]] = {}
        for p in self.passes:
            with tracer.span(f"plan-pass:{p.name}", kind="plan-pass") \
                    as span:
                plan, pstats = p.run(plan)
                stats[p.name] = pstats
                if tracer.enabled:
                    for k, v in pstats.items():
                        span.count(k, v)
            if self.verify:
                problems = verify_plan(plan)
                if problems:
                    shown = "\n  ".join(str(pr) for pr in problems[:8])
                    raise PlanVerificationError(
                        f"plan pass {p.name!r} broke the plan: "
                        f"{len(problems)} problem(s)\n  {shown}")
        return plan, stats
