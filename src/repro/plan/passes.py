"""Plan-level optimization passes.

These run *after* codegen, on the lowest-level IR — the layer the
AST-level pipeline (offset arrays, communication unioning, fusion)
cannot see.  Codegen can re-introduce redundancy the statement passes
already eliminated once (e.g. an ``OverlapShiftOp`` subsumed by an
earlier one in the same straight-line block after fusion regrouping),
and only the plan knows the final alloc/free placement.

Three passes ship, run in this order by :func:`default_plan_passes`:

``schedule``
    Stable topological list scheduling within every block: hoists
    communication ops as early as their dependences allow (so later
    coalescing sees congruent comms adjacent) and sinks frees to their
    last legal position.  Dependences are computed from each op's
    read/write effect sets; ties preserve original order, so the
    schedule is deterministic.
``coalesce-shifts``
    Removes an ``OverlapShiftOp`` whose effect is subsumed by an earlier
    shift in the same block: same array/dimension/direction/fill, at
    least the depth, an effective RSD that contains the later one, and
    no intervening write to the array.  A non-trivial RSD is only
    coalesced against the *immediately preceding* shift of that array —
    orthogonal pickup depends on the array's residency at execution
    time, which other interleaved shifts of the same array change.
``dead-alloc``
    Deletes alloc/free pairs (and the declarations) of arrays nothing
    reads or writes, a situation AST-level passes cannot create or see
    because temporaries are only named during codegen.

Every pass is verified by :mod:`repro.plan.verify` after it runs (the
:class:`PlanPassManager` enforces this), so a miscompiling pass fails
loudly at compile time instead of corrupting results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import PlanVerificationError
from repro.ir.nodes import OffsetRef, ScalarRef
from repro.ir.rsd import RSD
from repro.plan.ops import (
    AllocOp, CondOp, FreeOp, FullShiftOp, LoopNestOp, OverlappedOp,
    OverlapShiftOp, Plan, PlanOp, ScalarAssignOp, SeqLoopOp, WhileOp,
    map_blocks, walk,
)
from repro.plan.verify import verify_plan


class PlanPass:
    """Base class: a plan-to-plan rewrite with integer stats."""

    name = "plan-pass"

    def run(self, plan: Plan) -> tuple[Plan, dict[str, int]]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# effect sets (shared by scheduling and coalescing)
# ---------------------------------------------------------------------------

@dataclass
class _Effects:
    reads: set[str]
    writes: set[str]
    sreads: set[str]
    swrites: set[str]


def _expr_refs(expr) -> tuple[set[str], set[str]]:
    arrays, scalars = set(), set()
    for node in expr.walk():
        if isinstance(node, OffsetRef):
            arrays.add(node.name)
        elif isinstance(node, ScalarRef):
            scalars.add(node.name)
    return arrays, scalars


def _op_effects(op: PlanOp) -> _Effects:
    """What one op (including everything nested inside it) reads and
    writes.  Overlap shifts both read and write their array; frees are
    modelled as writes so uses order before them and reallocations
    after."""
    eff = _Effects(set(), set(), set(), set())

    def leaf(o: PlanOp) -> None:
        if isinstance(o, OverlapShiftOp):
            eff.reads.add(o.array)
            eff.writes.add(o.array)
        elif isinstance(o, FullShiftOp):
            eff.reads.add(o.src)
            eff.writes.add(o.dst)
        elif isinstance(o, (AllocOp, FreeOp)):
            if isinstance(o, FreeOp):
                eff.reads.update(o.names)
            eff.writes.update(o.names)
        elif isinstance(o, LoopNestOp):
            for stmt in o.statements:
                eff.writes.add(stmt.lhs)
                for e in ([stmt.rhs] +
                          ([stmt.mask] if stmt.mask is not None else [])):
                    a, s = _expr_refs(e)
                    eff.reads.update(a)
                    eff.sreads.update(s)
            for lo, hi in o.space:
                eff.sreads.update(lo.symbols())
                eff.sreads.update(hi.symbols())
        elif isinstance(o, ScalarAssignOp):
            a, s = _expr_refs(o.rhs)
            eff.reads.update(a)
            eff.sreads.update(s)
            eff.swrites.add(o.name)
        elif isinstance(o, SeqLoopOp):
            eff.swrites.add(o.var)
            eff.sreads.update(o.lo.symbols())
            eff.sreads.update(o.hi.symbols())
        elif isinstance(o, (WhileOp, CondOp)):
            a, s = _expr_refs(o.cond)
            eff.reads.update(a)
            eff.sreads.update(s)

    for inner in walk([op]):
        leaf(inner)
    return eff


def _conflicts(a: _Effects, b: _Effects) -> bool:
    return bool((a.writes & (b.reads | b.writes))
                or (a.reads & b.writes)
                or (a.swrites & (b.sreads | b.swrites))
                or (a.sreads & b.swrites))


# ---------------------------------------------------------------------------
# schedule
# ---------------------------------------------------------------------------

class SchedulePass(PlanPass):
    """Stable topological list scheduling of every block."""

    name = "schedule"

    def run(self, plan: Plan) -> tuple[Plan, dict[str, int]]:
        moved = 0

        def rank(op: PlanOp) -> int:
            if isinstance(op, (OverlapShiftOp, OverlappedOp)):
                return 0
            if isinstance(op, FreeOp):
                return 2
            return 1

        def schedule(block: list[PlanOp]) -> list[PlanOp]:
            nonlocal moved
            n = len(block)
            if n < 2:
                return block
            effects = [_op_effects(op) for op in block]
            succs: list[list[int]] = [[] for _ in range(n)]
            npreds = [0] * n
            for i in range(n):
                for j in range(i + 1, n):
                    if _conflicts(effects[i], effects[j]):
                        succs[i].append(j)
                        npreds[j] += 1
            ready = sorted(i for i in range(n) if npreds[i] == 0)
            order: list[int] = []
            while ready:
                i = min(ready, key=lambda k: (rank(block[k]), k))
                ready.remove(i)
                order.append(i)
                for j in succs[i]:
                    npreds[j] -= 1
                    if npreds[j] == 0:
                        ready.append(j)
            moved += sum(1 for pos, i in enumerate(order) if pos != i)
            return [block[i] for i in order]

        new_ops = map_blocks(plan.ops, schedule)
        return replace(plan, ops=new_ops), {"moved_ops": moved}


# ---------------------------------------------------------------------------
# coalesce shifts
# ---------------------------------------------------------------------------

def _effective_rsd(op: OverlapShiftOp, rank: int) -> RSD:
    if op.rsd is not None:
        return op.rsd
    if op.base_offsets and any(op.base_offsets):
        return RSD.from_offsets(op.base_offsets, op.dim - 1)
    return RSD.trivial(rank, op.dim - 1)


class CoalesceShiftsPass(PlanPass):
    """Remove overlap shifts subsumed by earlier ones in their block."""

    name = "coalesce-shifts"

    def run(self, plan: Plan) -> tuple[Plan, dict[str, int]]:
        removed = 0

        def subsumes(a: OverlapShiftOp, b: OverlapShiftOp,
                     rank: int) -> bool:
            if a.dim != b.dim or a.boundary != b.boundary:
                return False
            if (a.shift > 0) != (b.shift > 0):
                return False
            if abs(a.shift) < abs(b.shift):
                return False
            try:
                return _effective_rsd(a, rank).contains(
                    _effective_rsd(b, rank))
            except ValueError:
                return False

        def coalesce(block: list[PlanOp]) -> list[PlanOp]:
            nonlocal removed
            out: list[PlanOp] = []
            # per-array shifts since the array was last written; the
            # list is in program order, so [-1] is the most recent
            active: dict[str, list[OverlapShiftOp]] = {}
            for op in block:
                if isinstance(op, OverlapShiftOp):
                    decl = plan.arrays.get(op.array)
                    if decl is None:
                        out.append(op)
                        continue
                    rank = len(decl.shape)
                    prior = active.setdefault(op.array, [])
                    trivial = _effective_rsd(op, rank).is_trivial
                    # a trivial transfer picks up nothing orthogonal,
                    # so any prior subsumer proves redundancy; a
                    # non-trivial one reads the array's own residency,
                    # which only the immediately preceding shift of
                    # this array leaves unchanged
                    candidates = prior if trivial else prior[-1:]
                    if any(subsumes(a, op, rank) for a in candidates):
                        removed += 1
                        continue
                    prior.append(op)
                    out.append(op)
                    continue
                eff = _op_effects(op)
                for name in eff.writes:
                    active.pop(name, None)
                out.append(op)
            return out

        new_ops = map_blocks(plan.ops, coalesce)
        return replace(plan, ops=new_ops), {"coalesced_shifts": removed}


# ---------------------------------------------------------------------------
# dead alloc elimination
# ---------------------------------------------------------------------------

class DeadAllocElimPass(PlanPass):
    """Delete alloc/free of arrays no op ever reads or writes."""

    name = "dead-alloc"

    def run(self, plan: Plan) -> tuple[Plan, dict[str, int]]:
        live: set[str] = set(plan.entry_arrays)
        for op in walk(plan.ops):
            if isinstance(op, (AllocOp, FreeOp)):
                continue
            eff = _op_effects(op)
            live |= eff.reads | eff.writes
        removed_allocs = 0

        def prune(block: list[PlanOp]) -> list[PlanOp]:
            nonlocal removed_allocs
            out = []
            for op in block:
                if isinstance(op, (AllocOp, FreeOp)):
                    names = tuple(n for n in op.names if n in live)
                    if isinstance(op, AllocOp):
                        removed_allocs += len(op.names) - len(names)
                    if not names:
                        continue
                    if names != op.names:
                        op = replace(op, names=names)
                out.append(op)
            return out

        new_ops = map_blocks(plan.ops, prune)
        dead_decls = sorted(n for n in plan.arrays if n not in live)
        arrays = {n: d for n, d in plan.arrays.items() if n in live}
        return (replace(plan, ops=new_ops, arrays=arrays),
                {"dead_allocs": removed_allocs,
                 "dead_decls": len(dead_decls)})


# ---------------------------------------------------------------------------
# manager
# ---------------------------------------------------------------------------

def default_plan_passes() -> list[PlanPass]:
    return [SchedulePass(), CoalesceShiftsPass(), DeadAllocElimPass()]


class PlanPassManager:
    """Runs plan passes in order, verifying the plan after each one."""

    def __init__(self, passes: list[PlanPass] | None = None,
                 verify: bool = True, tracer=None) -> None:
        self.passes = default_plan_passes() if passes is None else passes
        self.verify = verify
        self.tracer = tracer

    def run(self, plan: Plan) -> tuple[Plan, dict[str, dict[str, int]]]:
        from repro.obs.tracer import coalesce
        tracer = coalesce(self.tracer)
        stats: dict[str, dict[str, int]] = {}
        for p in self.passes:
            with tracer.span(f"plan-pass:{p.name}", kind="plan-pass") \
                    as span:
                plan, pstats = p.run(plan)
                stats[p.name] = pstats
                if tracer.enabled:
                    for k, v in pstats.items():
                        span.count(k, v)
            if self.verify:
                problems = verify_plan(plan)
                if problems:
                    shown = "\n  ".join(str(pr) for pr in problems[:8])
                    raise PlanVerificationError(
                        f"plan pass {p.name!r} broke the plan: "
                        f"{len(problems)} problem(s)\n  {shown}")
        return plan, stats
