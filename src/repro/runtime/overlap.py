"""``OVERLAP_SHIFT``: the interprocessor component of a circular shift.

``overlap_shift(machine, U, shift=s, dim=d)`` fills the overlap area of
``U`` on the ``sign(s)`` side of dimension ``d`` with the values a
``CSHIFT(U, s, d)`` destination would have needed from the neighboring
PE — and nothing else.  No intraprocessor data moves; downstream code
reads through offset references (paper section 3.1).

The optional RSD widens the transferred slab in the non-shifted
dimensions so the message also carries overlap cells filled by earlier
(lower-dimension) shifts — the corner pickup of Figures 9/10.  When the
shift's *source* is itself an offset array (``OVERLAP_CSHIFT(U<+1,0>,
SHIFT=-1, DIM=2)`` in Figure 13), the equivalent slab widening is derived
from the base offsets.

The per-receiver loop separates *charging* (cost-model accounting,
message logging) from *moving* (the NumPy slab writes): slab extents
come from the layout, never from the data, so a caller can replay the
exact charge sequence while moving data for only a subset of PEs.  The
process-parallel backend uses this through the ``move`` predicate —
each worker writes only the blocks it owns — while charge *gating*
happens inside the machine (:meth:`Machine.set_ownership`): the walk
here still visits every PE in rank order, the machine skips charges
for non-owned PEs, and the network's sequence counter keeps ticking so
worker message logs splice back into the serial order.

Degenerate zero-width slabs (possible only through hand-built layouts
today — BLOCK layouts reject empty blocks at construction — but
legitimately producible by future distribution kinds) are elided here
at the call site: :meth:`Network.send`/:meth:`Network.record` reject
zero-size messages by contract.
"""

from __future__ import annotations

from math import prod

import numpy as np

from repro.errors import ExecutionError
from repro.ir.rsd import RSD
from repro.machine.machine import Machine
from repro.machine.network import comm_tag
from repro.runtime.darray import DArray


def _effective_rsd(da: DArray, dim0: int, rsd: RSD | None,
                   base_offsets: tuple[int, ...] | None) -> RSD:
    if rsd is not None:
        return rsd
    if base_offsets is not None:
        return RSD.from_offsets(base_offsets, dim0)
    return RSD.trivial(da.rank, dim0)


def _ortho_slice(da: DArray, pe: int, k: int, ext_lo: int,
                 ext_hi: int) -> slice:
    """Padded-coordinate slice of dim ``k``: interior extended by
    ``ext_lo``/``ext_hi`` overlap cells.

    Extents come from the layout (not the padded block) so the slice can
    be computed without touching — or even holding — PE data.
    """
    halo_lo, halo_hi = da.halo[k]
    if ext_lo > halo_lo or ext_hi > halo_hi:
        raise ExecutionError(
            f"{da.name}: RSD extension ({ext_lo},{ext_hi}) exceeds halo "
            f"({halo_lo},{halo_hi}) in dim {k + 1}")
    n_local = da.layout.local_shape(pe)[k]
    return slice(halo_lo - ext_lo, halo_lo + n_local + ext_hi)


def _slab_elems(idx: list[slice]) -> int:
    return prod(sl.stop - sl.start for sl in idx)


def overlap_shift(machine: Machine, da: DArray, shift: int, dim: int,
                  rsd: RSD | None = None,
                  base_offsets: tuple[int, ...] | None = None,
                  boundary: float | None = None,
                  move=None) -> None:
    """Fill overlap areas of ``da`` for a shift of ``shift`` along the
    1-based dimension ``dim``.

    ``boundary`` switches from circular (CSHIFT) to end-off (EOSHIFT)
    semantics: overlap cells beyond the global array edge are filled with
    the boundary value instead of wrapped data.

    A positive ``shift`` serves reads ``U(i + shift)`` and therefore fills
    the *high*-side overlap area; negative fills the low side.  One
    message per PE is sent (self-messages on 1-wide grid dimensions are
    priced as local copies by the network).

    ``move`` (``pe -> bool``, default: always) gates the data movement
    per receiving PE while the walk itself covers every PE — the hook
    the process-parallel backend's workers use to split data movement;
    cost charging on non-owned PEs is skipped by the machine's
    ownership gate, not here.
    """
    if shift == 0:
        raise ExecutionError("overlap_shift with zero shift")
    d = dim - 1
    if not (0 <= d < da.rank):
        raise ExecutionError(
            f"{da.name}: shift dim {dim} out of range (rank {da.rank})")
    s = abs(shift)
    sign = 1 if shift > 0 else -1
    halo_lo, halo_hi = da.halo[d]
    if (sign > 0 and halo_hi < s) or (sign < 0 and halo_lo < s):
        raise ExecutionError(
            f"{da.name}: overlap area too small for shift {shift:+d} along "
            f"dim {dim} (halo={da.halo[d]})")
    eff = _effective_rsd(da, d, rsd, base_offsets)
    if eff.rank != da.rank or eff.shift_dim != d:
        raise ExecutionError(
            f"{da.name}: RSD {eff} incompatible with shift dim {dim}")

    layout = da.layout
    n_global = layout.shape[d]
    tag = comm_tag(da.name, dim, shift, widened=not eff.is_trivial)
    itemsize = np.dtype(da.dtype).itemsize
    if move is None:
        move = _move_always

    for pe in layout.grid.ranks():
        n_local = layout.local_shape(pe)[d]
        # destination: the halo slab on the sign side
        dst_idx: list[slice] = []
        for k in range(da.rank):
            if k == d:
                if sign > 0:
                    dst_idx.append(slice(halo_lo + n_local,
                                         halo_lo + n_local + s))
                else:
                    dst_idx.append(slice(halo_lo - s, halo_lo))
            else:
                rd = eff.dims[k]
                assert rd is not None
                dst_idx.append(_ortho_slice(da, pe, k, rd.lo, rd.hi))

        if not layout.is_distributed(d):
            # collapsed dimension: the "interprocessor" component is a
            # purely local circular wrap of the slab
            nelems = _slab_elems(dst_idx)
            if nelems == 0:
                continue  # degenerate empty slab: nothing moves
            if move(pe):
                padded = da.padded(pe)
                src_idx = list(dst_idx)
                if sign > 0:
                    src_idx[d] = slice(halo_lo, halo_lo + s)
                else:
                    src_idx[d] = slice(halo_lo + n_local - s,
                                       halo_lo + n_local)
                slab = padded[tuple(src_idx)]
                if boundary is not None:
                    slab = np.full_like(slab, boundary)
                padded[tuple(dst_idx)] = slab
            machine.charge_copy(pe, nelems, itemsize)
            continue

        # boundary (EOSHIFT) handling: a PE at the global edge fills its
        # slab with the boundary value, no message needed
        box_lo, box_hi = layout.owned_box(pe)[d]
        at_edge = (box_hi == n_global) if sign > 0 else (box_lo == 1)
        if boundary is not None and at_edge:
            if move(pe):
                padded = da.padded(pe)
                shape = tuple(sl.stop - sl.start for sl in dst_idx)
                padded[tuple(dst_idx)] = np.full(shape, boundary,
                                                 dtype=padded.dtype)
            continue

        sender = layout.neighbor(pe, d, sign)
        sender_n = layout.local_shape(sender)[d]
        src_idx = []
        for k in range(da.rank):
            if k == d:
                if sign > 0:
                    src_idx.append(slice(halo_lo, halo_lo + s))
                else:
                    src_idx.append(slice(halo_lo + sender_n - s,
                                         halo_lo + sender_n))
            else:
                rd = eff.dims[k]
                assert rd is not None
                src_idx.append(_ortho_slice(da, sender, k, rd.lo, rd.hi))
        nelems = _slab_elems(src_idx)
        if nelems == 0:
            continue  # empty slab: the network rejects zero-size sends
        if move(pe):
            payload = da.padded(sender)[tuple(src_idx)]
            received = machine.network.send(sender, pe, payload, tag=tag)
            da.padded(pe)[tuple(dst_idx)] = received
        else:
            machine.network.record(sender, pe, nelems, itemsize, tag=tag)


def _move_always(pe: int) -> bool:
    return True
