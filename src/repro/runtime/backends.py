"""Execution-backend registry.

Both executors (:mod:`repro.runtime.executor`'s per-PE reference
implementation and :mod:`repro.runtime.vectorized`'s whole-array
strategy) register themselves here by name; ``execute``,
``CompiledProgram.run``, ``run_kernel``, and the CLI resolve backends
through :func:`get_backend` instead of string-comparing names, so a new
backend only has to call :func:`register_backend` to appear everywhere
(including ``--backend`` choices).

Registration is lazy for the built-ins: the registry knows their module
paths and imports on first lookup, so importing this module costs
nothing and either backend can be used without importing the other.
"""

from __future__ import annotations

import importlib

from repro.errors import ExecutionError

#: built-in backends resolved on first use: name -> (module, attribute)
_BUILTIN: dict[str, tuple[str, str]] = {
    "perpe": ("repro.runtime.executor", "_Exec"),
    "vectorized": ("repro.runtime.vectorized", "VectorizedExec"),
    "parallel": ("repro.runtime.parallel", "ParallelExec"),
    "compiled": ("repro.runtime.compiled", "CompiledExec"),
}

_REGISTRY: dict[str, type] = {}


def register_backend(name: str, cls: type) -> None:
    """Register (or replace) an execution backend under ``name``."""
    _REGISTRY[name] = cls


def get_backend(name: str) -> type:
    """Resolve a backend name to its executor class."""
    cls = _REGISTRY.get(name)
    if cls is not None:
        return cls
    builtin = _BUILTIN.get(name)
    if builtin is not None:
        module, attr = builtin
        cls = getattr(importlib.import_module(module), attr)
        _REGISTRY.setdefault(name, cls)
        return _REGISTRY[name]
    raise ExecutionError(
        f"unknown execution backend {name!r}; available: "
        f"{', '.join(available_backends())}")


def available_backends() -> list[str]:
    """Sorted names of every registered or built-in backend."""
    return sorted(set(_REGISTRY) | set(_BUILTIN))
