"""Full ``CSHIFT``/``EOSHIFT``: both data-movement components.

This is what a naive backend (CM Fortran / xlhpf style, paper Figure 4)
executes for every shift intrinsic: the interprocessor slab exchange
*plus* an intraprocessor copy of the entire local subgrid into the
destination array.  The offset-array optimization exists to delete the
second component; keeping this routine lets the O0 baseline and the
ablation experiments execute the unoptimized program faithfully.

The exchange goes through a private per-PE communication buffer (a
padded copy of the local block), never through the source array's
overlap area: a runtime shift must not clobber overlap data that offset
references elsewhere still read (and the naive path's source arrays
need no overlap areas at all).  The buffer's extra copy is charged to
the cost model — it is part of what made library CSHIFTs expensive.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.machine.machine import Machine
from repro.runtime.darray import DArray
from repro.runtime.distribution import Layout
from repro.runtime.overlap import overlap_shift


def _scratch_like(machine: Machine, src: DArray, shift: int,
                  dim0: int) -> DArray:
    """A transient padded copy of ``src`` with just enough overlap for
    the shift; models the runtime's communication buffer."""
    s = abs(shift)
    halo = tuple((0, 0) if k != dim0 else
                 ((0, s) if shift > 0 else (s, 0))
                 for k in range(src.rank))
    scratch = DArray.create(machine, f"__shiftbuf_{src.name}__",
                            src.layout, src.dtype, halo)
    for pe in src.layout.grid.ranks():
        block = src.interior(pe)
        scratch.interior(pe)[...] = block
        machine.charge_copy(pe, int(block.size), block.itemsize)
    return scratch


def _shifted_interior(buf: DArray, pe: int, shift: int,
                      dim0: int) -> np.ndarray:
    """View of ``buf``'s padded block displaced by ``shift`` along
    ``dim0`` — the source values of ``dst(i) = src(i + shift)``."""
    padded = buf.padded(pe)
    idx = []
    for k in range(buf.rank):
        lo, hi = buf.halo[k]
        n_local = padded.shape[k] - lo - hi
        if k == dim0:
            start = lo + shift
            stop = lo + n_local + shift
            if start < 0 or stop > padded.shape[k]:
                raise ExecutionError(
                    f"{buf.name}: buffer too small for shift {shift:+d} "
                    f"along dim {dim0 + 1}")
            idx.append(slice(start, stop))
        else:
            idx.append(slice(lo, lo + n_local))
    return padded[tuple(idx)]


def _full_shift(machine: Machine, dst: DArray, src: DArray, shift: int,
                dim: int, boundary: float | None) -> None:
    if dst.layout.shape != src.layout.shape:
        raise ExecutionError(
            f"shift shape mismatch: {dst.name} vs {src.name}")
    d = dim - 1
    scratch = _scratch_like(machine, src, shift, d)
    try:
        overlap_shift(machine, scratch, shift, dim, boundary=boundary)
        for pe in src.layout.grid.ranks():
            block = _shifted_interior(scratch, pe, shift, d)
            dst.interior(pe)[...] = block
            machine.charge_copy(pe, int(block.size), block.itemsize)
    finally:
        scratch.free(machine)


def full_cshift(machine: Machine, dst: DArray, src: DArray, shift: int,
                dim: int) -> None:
    """``dst = CSHIFT(src, shift, dim)`` with explicit buffering and
    intraprocessor copying — the costs the offset-array optimization
    eliminates."""
    _full_shift(machine, dst, src, shift, dim, boundary=None)


def full_eoshift(machine: Machine, dst: DArray, src: DArray, shift: int,
                 dim: int, boundary: float = 0.0) -> None:
    """``dst = EOSHIFT(src, shift, dim, boundary)`` (end-off shift)."""
    _full_shift(machine, dst, src, shift, dim, boundary=boundary)
