"""Full ``CSHIFT``/``EOSHIFT``: both data-movement components.

This is what a naive backend (CM Fortran / xlhpf style, paper Figure 4)
executes for every shift intrinsic: the interprocessor slab exchange
*plus* an intraprocessor copy of the entire local subgrid into the
destination array.  The offset-array optimization exists to delete the
second component; keeping this routine lets the O0 baseline and the
ablation experiments execute the unoptimized program faithfully.

The exchange goes through a private per-PE communication buffer (a
padded copy of the local block), never through the source array's
overlap area: a runtime shift must not clobber overlap data that offset
references elsewhere still read (and the naive path's source arrays
need no overlap areas at all).  The buffer's extra copy is charged to
the cost model — it is part of what made library CSHIFTs expensive.

Like :mod:`repro.runtime.overlap`, the copy loops separate charging
from moving so the process-parallel backend can run the shared code
unchanged while each worker moves only its own PEs' blocks:

* ``scratch_factory`` substitutes the scratch buffer's allocator (the
  parallel backend allocates it in shared memory);
* ``move`` gates the per-PE copies; the charge calls still run for
  every PE, and the machine's ownership gate
  (:meth:`Machine.set_ownership`) decides whether each one charges;
* ``sync`` is invoked at the phase boundaries where cross-PE reads
  begin or end (after copy-in, after the exchange, before the scratch
  buffer is freed) — the parallel backend plugs its worker barrier in
  here, other backends leave it as a no-op.
"""

from __future__ import annotations

from math import prod

import numpy as np

from repro.errors import ExecutionError
from repro.machine.machine import Machine
from repro.runtime.darray import DArray
from repro.runtime.distribution import Layout
from repro.runtime.overlap import overlap_shift


def _noop_sync() -> None:
    return None


def _scratch_like(machine: Machine, src: DArray, shift: int,
                  dim0: int, *, scratch_factory=None,
                  move=None) -> DArray:
    """A transient padded copy of ``src`` with just enough overlap for
    the shift; models the runtime's communication buffer."""
    s = abs(shift)
    halo = tuple((0, 0) if k != dim0 else
                 ((0, s) if shift > 0 else (s, 0))
                 for k in range(src.rank))
    create = scratch_factory or DArray.create
    scratch = create(machine, f"__shiftbuf_{src.name}__",
                     src.layout, src.dtype, halo)
    itemsize = np.dtype(src.dtype).itemsize
    for pe in src.layout.grid.ranks():
        nelems = prod(src.layout.local_shape(pe))
        if nelems == 0:
            continue
        if move is None or move(pe):
            scratch.interior(pe)[...] = src.interior(pe)
        machine.charge_copy(pe, nelems, itemsize)
    return scratch


def _shifted_interior(buf: DArray, pe: int, shift: int,
                      dim0: int) -> np.ndarray:
    """View of ``buf``'s padded block displaced by ``shift`` along
    ``dim0`` — the source values of ``dst(i) = src(i + shift)``."""
    padded = buf.padded(pe)
    idx = []
    for k in range(buf.rank):
        lo, hi = buf.halo[k]
        n_local = padded.shape[k] - lo - hi
        if k == dim0:
            start = lo + shift
            stop = lo + n_local + shift
            if start < 0 or stop > padded.shape[k]:
                raise ExecutionError(
                    f"{buf.name}: buffer too small for shift {shift:+d} "
                    f"along dim {dim0 + 1}")
            idx.append(slice(start, stop))
        else:
            idx.append(slice(lo, lo + n_local))
    return padded[tuple(idx)]


def _full_shift(machine: Machine, dst: DArray, src: DArray, shift: int,
                dim: int, boundary: float | None, *,
                scratch_factory=None, move=None, sync=None) -> None:
    if dst.layout.shape != src.layout.shape:
        raise ExecutionError(
            f"shift shape mismatch: {dst.name} vs {src.name}")
    d = dim - 1
    sync = sync or _noop_sync
    scratch = _scratch_like(machine, src, shift, d,
                            scratch_factory=scratch_factory, move=move)
    try:
        sync()  # copy-in done everywhere before neighbors read the buffer
        overlap_shift(machine, scratch, shift, dim, boundary=boundary,
                      move=move)
        sync()  # exchange done; copy-out reads only this PE's buffer
        itemsize = np.dtype(src.dtype).itemsize
        for pe in src.layout.grid.ranks():
            nelems = prod(src.layout.local_shape(pe))
            if nelems == 0:
                continue
            if move is None or move(pe):
                block = _shifted_interior(scratch, pe, shift, d)
                dst.interior(pe)[...] = block
            machine.charge_copy(pe, nelems, itemsize)
    finally:
        sync()  # nobody may still be reading the buffer when it dies
        scratch.free(machine)


def full_cshift(machine: Machine, dst: DArray, src: DArray, shift: int,
                dim: int, *, scratch_factory=None, move=None,
                sync=None) -> None:
    """``dst = CSHIFT(src, shift, dim)`` with explicit buffering and
    intraprocessor copying — the costs the offset-array optimization
    eliminates."""
    _full_shift(machine, dst, src, shift, dim, boundary=None,
                scratch_factory=scratch_factory, move=move, sync=sync)


def full_eoshift(machine: Machine, dst: DArray, src: DArray, shift: int,
                 dim: int, boundary: float = 0.0, *,
                 scratch_factory=None, move=None, sync=None) -> None:
    """``dst = EOSHIFT(src, shift, dim, boundary)`` (end-off shift)."""
    _full_shift(machine, dst, src, shift, dim, boundary=boundary,
                scratch_factory=scratch_factory, move=move, sync=sync)
