"""Process-parallel execution backend over shared-memory blocks.

One OS process per worker, ``W = min(workers, npes)`` workers (default
``os.cpu_count()``), PEs mapped round-robin: worker ``w`` *owns* PEs
``{pe : pe % W == w}``.  Every (array, PE) padded local block lives in a
:mod:`multiprocessing.shared_memory` segment, so an ``OVERLAP_SHIFT``
halo exchange is a cross-block slab copy performed concurrently by the
receiving PE's owner, synchronized by per-plan-op barriers.

**Equivalence contract.**  The backend must produce bitwise-identical
arrays/scalars and an identical *modelled* :class:`CostReport`, message
log, and comm profile to ``perpe``/``vectorized``.  It gets this by
construction: every worker replays the **full deterministic charge
walk** over all PEs — the same code paths as the reference executor,
via the ``move`` predicate of :func:`repro.runtime.overlap.overlap_shift`
and :func:`repro.runtime.cshift.full_cshift` — but performs NumPy data
movement only for the PEs it owns.  The coordinator verifies that all
workers' replica reports/logs/scalars agree and installs the merged
state (each PE's time rows taken from its owner, in PE-rank order).
Replication also makes control flow (``DO WHILE`` guards, ``IF``
conditions, reduction results) identical in every worker, which is what
lets a fixed barrier schedule work at all.

**Synchronization.**  Writes are owner-local by construction (a worker
only ever writes blocks of PEs it owns); the races are reads of a
neighbor's block.  Barriers therefore bracket exactly the cross-block
phases: around each ``OVERLAP_SHIFT``, at the three phase boundaries of
a buffered full shift (after copy-in, after the exchange, before the
scratch buffer dies), around distributed reductions (which read every
PE's block), after mid-plan allocations (all blocks must exist before
any worker touches them), and before frees (no attach-after-unlink).
The deterministic replicated walk guarantees every worker reaches the
same barrier points in the same order; a generous timeout plus
``Barrier.abort()`` on worker error turns a hang into a diagnosable
failure instead of a deadlock.

**Shared-memory lifecycle.**  Segment names are
``{run_id}-{array}-g{gen}-p{pe}`` where ``gen`` is a per-array-name
generation counter every process advances identically (entry arrays in
``plan.entry_arrays`` order, then plan allocations in execution order),
so free-then-reallocate never aliases a stale segment.  The parent
creates entry-array blocks; workers create blocks for the PEs they own
on mid-plan allocations and attach lazily to everything else.  Unlink
responsibility is disjoint (each worker unlinks its owned PEs' blocks,
the parent unlinks arrays that survive to the end), double-unlink is
tolerated, and every attach is unregistered from the
``resource_tracker`` so lifetimes stay fully manual.

**Measured time.**  Besides the modelled report, each worker measures
real wall-clock per op (including barrier waits).  The coordinator
installs worker 0's samples into the parent profiler — so
``repro profile --backend parallel`` emits a modelled-vs-*measured*
validation table — and attaches one wall-clock track per worker
(``CommProfile.worker_tracks``) that the Chrome-trace exporter renders
as a real concurrency timeline.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue
import traceback
import uuid
from math import prod
from typing import Mapping

import numpy as np
from multiprocessing import resource_tracker, shared_memory

from repro.errors import ExecutionError, MachineError
from repro.machine.cost_model import CostReport
from repro.machine.machine import Machine
from repro.plan import FullShiftOp, OverlapShiftOp, Plan
from repro.runtime.cshift import full_cshift, full_eoshift
from repro.runtime.darray import DArray, Halo
from repro.runtime.distribution import Layout, cached_layout
from repro.runtime.executor import _Exec
from repro.runtime.overlap import overlap_shift

#: Safety net for hung barriers (a worker died without aborting): waits
#: raise BrokenBarrierError after this instead of deadlocking the run.
BARRIER_TIMEOUT_S = 120.0

#: How long the coordinator waits for one worker reply before declaring
#: the pool wedged (longer than the barrier timeout so worker-side
#: timeouts surface as worker errors, not coordinator timeouts).
REPLY_TIMEOUT_S = BARRIER_TIMEOUT_S + 60.0


try:  # POSIX only; the fallback path covers other platforms
    import _posixshmem
except ImportError:  # pragma: no cover
    _posixshmem = None


def _untrack(seg: shared_memory.SharedMemory) -> None:
    """Remove ``seg`` from this process's resource tracker.

    ``SharedMemory`` registers segments on *attach* as well as create
    (fixed only in newer CPythons via ``track=False``), so without this
    every attaching process would try to unlink the segment at exit.
    Lifetimes here are fully manual: creators/owners unlink explicitly
    and double-unlinks are tolerated.
    """
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


def _unlink_segment(name: str) -> None:
    """Destroy one named segment without touching the resource tracker.

    ``SharedMemory.unlink`` unconditionally unregisters the name, which
    errors in the (process-shared) tracker because :func:`_untrack`
    already removed it — so go straight to ``shm_unlink``.  Raises
    ``FileNotFoundError`` if the segment is already gone.
    """
    if _posixshmem is not None:
        _posixshmem.shm_unlink("/" + name)
        return
    seg = shared_memory.SharedMemory(name=name)  # pragma: no cover
    try:
        resource_tracker.register(seg._name, "shared_memory")
    except Exception:
        pass
    seg.unlink()
    seg.close()


class ShmDArray(DArray):
    """A :class:`DArray` whose per-PE padded blocks live in shared memory.

    ``owned_pes`` is the set of PEs whose segments this *instance* is
    responsible for destroying (workers: their round-robin share; the
    parent: every PE).  Blocks are attached lazily on first
    :meth:`padded` access, so a worker maps only the blocks it actually
    reads or writes.
    """

    def __init__(self, name: str, layout: Layout, dtype: np.dtype,
                 halo: Halo, *, run_id: str, gen: int,
                 shapes: list[tuple[int, ...]],
                 owned_pes: frozenset[int]) -> None:
        DArray.__init__(self, name, layout, np.dtype(dtype), halo, [])
        self.run_id = run_id
        self.gen = gen
        self.owned_pes = frozenset(owned_pes)
        self._shapes = shapes
        self._segs: dict[int, shared_memory.SharedMemory] = {}
        self._views: dict[int, np.ndarray] = {}

    # -- construction ------------------------------------------------------
    @staticmethod
    def build(machine: Machine, name: str, layout: Layout,
              dtype: np.dtype, halo: Halo | None, *, run_id: str,
              gen: int, create_pes, owned_pes,
              charge: bool) -> "ShmDArray":
        """Validate + (optionally) charge exactly like
        :meth:`DArray.create`, then create segments for ``create_pes``.

        Workers pass ``charge=True`` (they replicate the reference
        allocation charges); the parent passes ``charge=False`` (its
        memory accounting comes from the merged worker peaks).
        """
        rank = len(layout.shape)
        halo = halo or tuple((0, 0) for _ in range(rank))
        if len(halo) != rank:
            raise MachineError(f"halo rank mismatch for {name}")
        for d, (lo, hi) in enumerate(halo):
            limit = layout.max_shift(d)
            if max(lo, hi) > limit:
                raise MachineError(
                    f"{name}: halo {max(lo, hi)} along dim {d + 1} exceeds "
                    f"the minimum local extent {limit}; use a smaller shift "
                    f"or fewer processors")
        dtype = np.dtype(dtype)
        shapes = []
        for pe in layout.grid.ranks():
            local = layout.local_shape(pe)
            shapes.append(tuple(n + lo + hi
                                for n, (lo, hi) in zip(local, halo)))
        if charge:
            nbytes = [prod(s) * dtype.itemsize for s in shapes]
            machine.memory.allocate_all(name, nbytes)
        da = ShmDArray(name, layout, dtype, halo, run_id=run_id, gen=gen,
                       shapes=shapes, owned_pes=frozenset(owned_pes))
        for pe in create_pes:
            da._attach(pe, create=True)
        return da

    def seg_name(self, pe: int) -> str:
        return f"{self.run_id}-{self.name}-g{self.gen}-p{pe}"

    def _attach(self, pe: int, create: bool = False) -> np.ndarray:
        shape = self._shapes[pe]
        if create:
            nbytes = prod(shape) * self.dtype.itemsize
            seg = shared_memory.SharedMemory(name=self.seg_name(pe),
                                             create=True, size=nbytes)
        else:
            seg = shared_memory.SharedMemory(name=self.seg_name(pe))
        _untrack(seg)
        view = np.ndarray(shape, dtype=self.dtype, buffer=seg.buf)
        if create:
            view.fill(0)
        self._segs[pe] = seg
        self._views[pe] = view
        return view

    # -- views -------------------------------------------------------------
    def padded(self, pe: int) -> np.ndarray:
        view = self._views.get(pe)
        if view is None:
            view = self._attach(pe)
        return view

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mappings (segments stay alive)."""
        self._views.clear()
        segs, self._segs = self._segs, {}
        for seg in segs.values():
            try:
                seg.close()
            except BufferError:
                pass  # a live external view pins the mapping; leave it

    def unlink_owned(self) -> None:
        """Destroy the segments this instance is responsible for.

        ``FileNotFoundError`` is swallowed: on Linux unlink-while-mapped
        is safe and another responsible party may legitimately have
        unlinked first (the parent's error-path sweep).
        """
        for pe in self.owned_pes:
            try:
                _unlink_segment(self.seg_name(pe))
            except FileNotFoundError:
                pass

    def free(self, machine: Machine) -> None:
        machine.memory.free_all(self.name)
        self.unlink_owned()
        self.close()


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

class _WorkerExec(_Exec):
    """The executor a worker process runs: full charge walk, owned moves."""

    def __init__(self, plan: Plan, machine: Machine,
                 scalars: Mapping[str, float] | None, hpf_overhead: bool,
                 *, wid: int, nworkers: int, run_id: str,
                 barrier) -> None:
        super().__init__(plan, machine, scalars, hpf_overhead)
        self.wid = wid
        self.nworkers = nworkers
        self.run_id = run_id
        self.barrier = barrier
        self.owned = frozenset(range(wid, machine.npes, nworkers))
        self._move = self.owned.__contains__
        self._gen: dict[str, int] = {}

    def _next_gen(self, name: str) -> int:
        gen = self._gen.get(name, 0) + 1
        self._gen[name] = gen
        return gen

    def _bwait(self) -> None:
        self.barrier.wait(BARRIER_TIMEOUT_S)

    # -- array lifecycle ---------------------------------------------------
    def setup_entry_arrays(self) -> None:
        """Attach the parent-created entry arrays, replicating the
        reference executor's allocation charges in ``entry_arrays``
        order (the order ``execute`` materializes them)."""
        for name in self.plan.entry_arrays:
            decl = self.plan.arrays[name]
            layout = cached_layout(decl.shape, decl.distribution,
                                   self.machine.topology)
            da = ShmDArray.build(
                self.machine, name, layout, decl.dtype, decl.halo,
                run_id=self.run_id, gen=self._next_gen(name),
                create_pes=(), owned_pes=self.owned, charge=True)
            self.darrays[name] = da

    def materialize(self, name: str,
                    initial: np.ndarray | None = None) -> None:
        if initial is not None:
            raise ExecutionError(
                "parallel worker cannot seed arrays mid-plan")
        decl = self.plan.arrays[name]
        layout = cached_layout(decl.shape, decl.distribution,
                               self.machine.topology)
        da = ShmDArray.build(
            self.machine, name, layout, decl.dtype, decl.halo,
            run_id=self.run_id, gen=self._next_gen(name),
            create_pes=self.owned, owned_pes=self.owned, charge=True)
        self._bwait()  # every PE's block exists before anyone touches it
        self.darrays[name] = da

    def release(self, name: str) -> None:
        # everyone must be past their last read before segments die
        self._bwait()
        super().release(name)  # ShmDArray.free unlinks this worker's PEs

    def _scratch_factory(self, machine: Machine, name: str,
                         layout: Layout, dtype: np.dtype,
                         halo: Halo) -> DArray:
        da = ShmDArray.build(
            machine, name, layout, dtype, halo,
            run_id=self.run_id, gen=self._next_gen(name),
            create_pes=self.owned, owned_pes=self.owned, charge=True)
        self._bwait()
        return da

    # -- cross-block ops ---------------------------------------------------
    def do_overlap_shift(self, op: OverlapShiftOp) -> None:
        self._bwait()  # senders' interiors fully written
        overlap_shift(self.machine, self.darray(op.array),
                      op.shift, op.dim, rsd=op.rsd,
                      base_offsets=op.base_offsets,
                      boundary=op.boundary, move=self._move)
        self._bwait()  # slab reads done before owners overwrite sources

    def do_full_shift(self, op: FullShiftOp) -> None:
        dst, src = self.darray(op.dst), self.darray(op.src)
        if op.boundary is None:
            full_cshift(self.machine, dst, src, op.shift, op.dim,
                        scratch_factory=self._scratch_factory,
                        move=self._move, sync=self._bwait)
        else:
            full_eoshift(self.machine, dst, src, op.shift, op.dim,
                         op.boundary,
                         scratch_factory=self._scratch_factory,
                         move=self._move, sync=self._bwait)

    def _reduce(self, expr) -> float:
        self._bwait()  # reductions read every PE's block
        try:
            return super()._reduce(expr)
        finally:
            self._bwait()

    # -- compute gating ----------------------------------------------------
    def _exec_nest_box(self, op, box, pe: int) -> int:
        if pe in self.owned:
            return super()._exec_nest_box(op, box, pe)
        points = 1
        for lo, hi in box:
            points *= hi - lo + 1
        return points

    # -- shard reporting ---------------------------------------------------
    def shard(self) -> dict:
        """Cumulative replica state shipped to the coordinator after
        every run command."""
        prof = None
        if self.profiler is not None:
            prof = {"samples": self.profiler.samples,
                    "wall_total": self.profiler.wall_total}
        return {
            "report": self.machine.report,
            "log": list(self.machine.network.log),
            "peaks": [self.machine.memory.peak(pe)
                      for pe in range(self.machine.npes)],
            "scalars": dict(self.scalars),
            "live": sorted((n, da.gen)
                           for n, da in self.darrays.items()),
            "prof": prof,
        }

    def close_attachments(self) -> None:
        for da in self.darrays.values():
            da.close()


def _worker_main(wid: int, nworkers: int, plan: Plan,
                 machine_cfg: dict, scalars, hpf_overhead: bool,
                 run_id: str, profile: bool, barrier, cmd_q,
                 result_q) -> None:
    ex = None
    try:
        machine = Machine(**machine_cfg)
        ex = _WorkerExec(plan, machine, scalars, hpf_overhead,
                         wid=wid, nworkers=nworkers, run_id=run_id,
                         barrier=barrier)
        if profile:
            from repro.obs.profile import ProfileCollector
            ex.profiler = ProfileCollector(machine)
        ex.setup_entry_arrays()
        while True:
            cmd = cmd_q.get()
            if cmd[0] == "stop":
                break
            ex.run_ops(plan.ops)
            result_q.put(("done", wid, pickle.dumps(ex.shard())))
    except BaseException as exc:  # noqa: BLE001 — must reach the parent
        try:
            barrier.abort()
        except Exception:
            pass
        payload = None
        try:
            payload = pickle.dumps(exc)
            pickle.loads(payload)
        except Exception:
            payload = None
        try:
            result_q.put(("error", wid, pickle.dumps(
                {"exc": payload, "tb": traceback.format_exc()})))
        except Exception:
            pass
    finally:
        if ex is not None:
            ex.close_attachments()


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------

class ParallelExec(_Exec):
    """Coordinator executor registered as the ``parallel`` backend.

    Runs in the parent process: materializes entry arrays in shared
    memory, drives the worker pool (started lazily at the first
    ``run_ops`` so profiler assignment is known), and after every
    iteration verifies the workers' replica states agree and installs
    the merged report/log/peaks/scalars into the parent machine — so
    ``execute``'s gather/result code works unchanged.
    """

    def __init__(self, plan: Plan, machine: Machine,
                 scalars: Mapping[str, float] | None,
                 hpf_overhead: bool, tracer=None,
                 workers: int | None = None) -> None:
        super().__init__(plan, machine, scalars, hpf_overhead,
                         tracer=tracer, workers=workers)
        if workers is not None and workers < 1:
            raise ExecutionError(
                f"parallel backend needs >= 1 worker, got {workers}")
        requested = workers or (os.cpu_count() or 1)
        self.nworkers = max(1, min(requested, machine.npes))
        self.owner_of = [pe % self.nworkers
                         for pe in range(machine.npes)]
        self._init_scalars = dict(scalars or {})
        self._hpf_overhead = bool(hpf_overhead)
        self.run_id = f"repro-{uuid.uuid4().hex[:12]}"
        self._gen: dict[str, int] = {}
        self._procs: list = []
        self._cmd_qs: list = []
        self._result_q = None

    def _next_gen(self, name: str) -> int:
        gen = self._gen.get(name, 0) + 1
        self._gen[name] = gen
        return gen

    # -- array lifecycle (parent: real blocks, no charges) -----------------
    def materialize(self, name: str,
                    initial: np.ndarray | None = None) -> None:
        decl = self.plan.arrays[name]
        layout = cached_layout(decl.shape, decl.distribution,
                               self.machine.topology)
        pes = list(layout.grid.ranks())
        da = ShmDArray.build(
            self.machine, name, layout, decl.dtype, decl.halo,
            run_id=self.run_id, gen=self._next_gen(name),
            create_pes=pes, owned_pes=pes, charge=False)
        if initial is not None:
            da.scatter(np.asarray(initial))
        self.darrays[name] = da

    # release() is inherited: ShmDArray.free unlinks every PE's segment
    # (free_all on the parent's never-charged heaps is a no-op).

    # -- pool --------------------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._procs:
            return
        method = ("fork" if "fork" in mp.get_all_start_methods()
                  else "spawn")
        ctx = mp.get_context(method)
        self._barrier = ctx.Barrier(self.nworkers)
        self._result_q = ctx.Queue()
        self._cmd_qs = [ctx.SimpleQueue() for _ in range(self.nworkers)]
        machine_cfg = dict(
            grid=tuple(self.machine.grid),
            cost_model=self.machine.cost_model,
            memory_per_pe=self.machine.memory_per_pe,
            keep_message_log=self.machine.keep_message_log)
        profile = self.profiler is not None
        for wid in range(self.nworkers):
            p = ctx.Process(
                target=_worker_main,
                args=(wid, self.nworkers, self.plan, machine_cfg,
                      self._init_scalars, self._hpf_overhead,
                      self.run_id, profile, self._barrier,
                      self._cmd_qs[wid], self._result_q),
                daemon=True,
                name=f"repro-parallel-w{wid}")
            p.start()
            self._procs.append(p)

    def run_ops(self, ops) -> None:
        self._ensure_pool()
        for q in self._cmd_qs:
            q.put(("run",))
        shards: dict[int, dict] = {}
        errors: dict[int, dict] = {}
        for _ in range(self.nworkers):
            try:
                kind, wid, payload = self._result_q.get(
                    timeout=REPLY_TIMEOUT_S)
            except queue.Empty:
                self._terminate()
                raise ExecutionError(
                    "parallel backend: worker reply timed out "
                    f"(waited {REPLY_TIMEOUT_S:.0f}s; "
                    f"got {len(shards) + len(errors)}"
                    f"/{self.nworkers} replies)") from None
            data = pickle.loads(payload)
            if kind == "done":
                shards[wid] = data
            else:
                errors[wid] = data
        if errors:
            self._terminate()
            wid = min(errors)
            exc_payload = errors[wid]["exc"]
            if exc_payload is not None:
                raise pickle.loads(exc_payload)
            raise ExecutionError(
                f"parallel worker {wid} failed:\n{errors[wid]['tb']}")
        self._merge([shards[wid] for wid in range(self.nworkers)])

    # -- merge -------------------------------------------------------------
    def _merge(self, shards: list[dict]) -> None:
        merged = CostReport.merge_worker_reports(
            [s["report"] for s in shards], self.owner_of)
        self.machine.report.adopt(merged)
        self.machine.network.install_worker_logs(
            [s["log"] for s in shards])

        peaks0 = shards[0]["peaks"]
        scalars0 = shards[0]["scalars"]
        live0 = shards[0]["live"]
        for w, s in enumerate(shards[1:], start=1):
            if s["peaks"] != peaks0:
                raise ExecutionError(
                    f"worker {w} memory peaks diverged from worker 0")
            if s["scalars"] != scalars0:
                raise ExecutionError(
                    f"worker {w} scalars diverged from worker 0: "
                    f"{s['scalars']} vs {scalars0}")
            if s["live"] != live0:
                raise ExecutionError(
                    f"worker {w} live arrays diverged from worker 0: "
                    f"{s['live']} vs {live0}")
        self.machine.memory.adopt_peaks(peaks0)
        self.scalars = dict(scalars0)
        self._sync_darrays(live0)
        if self.profiler is not None:
            self._install_profiles(shards)

    def _sync_darrays(self, live: list[tuple[str, int]]) -> None:
        """Mirror the workers' live-array set: attach plan-allocated
        arrays that appeared, drop arrays the plan freed (the workers
        already unlinked their segments)."""
        for name, gen in live:
            cur = self.darrays.get(name)
            if cur is not None and cur.gen == gen:
                continue
            if cur is not None:
                cur.close()
            decl = self.plan.arrays[name]
            layout = cached_layout(decl.shape, decl.distribution,
                                   self.machine.topology)
            pes = list(layout.grid.ranks())
            self.darrays[name] = ShmDArray.build(
                self.machine, name, layout, decl.dtype, decl.halo,
                run_id=self.run_id, gen=gen, create_pes=(),
                owned_pes=pes, charge=False)
            self._gen[name] = max(self._gen.get(name, 0), gen)
        live_names = {name for name, _ in live}
        for name in [n for n in self.darrays if n not in live_names]:
            self.darrays.pop(name).close()

    def _install_profiles(self, shards: list[dict]) -> None:
        """Worker 0's samples become the parent collector's (modelled
        deltas are identical replicas; wall-clock is worker 0's real
        measurement, barrier waits included), and every worker gets a
        wall-clock track for the Chrome trace."""
        collector = self.profiler
        prof0 = shards[0]["prof"]
        collector.samples = prof0["samples"]
        collector.wall_start = 0.0
        collector.wall_end = prof0["wall_total"]
        tracks = []
        for wid, s in enumerate(shards):
            prof = s["prof"]
            events = [{"op": smp.index, "name": smp.name,
                       "depth": smp.depth, "t0": smp.t_start,
                       "t1": smp.t_start + smp.wall_incl}
                      for smp in prof["samples"]]
            tracks.append({
                "worker": wid,
                "pes": sorted(pe for pe in range(self.machine.npes)
                              if self.owner_of[pe] == wid),
                "wall_s": prof["wall_total"],
                "events": events,
            })
        collector.worker_tracks = tracks

    # -- shutdown ----------------------------------------------------------
    def _terminate(self) -> None:
        procs, self._procs = self._procs, []
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5.0)
        self._cmd_qs = []

    def close(self) -> None:
        procs = self._procs
        if procs:
            for q in self._cmd_qs:
                try:
                    q.put(("stop",))
                except Exception:
                    pass
            for p in procs:
                p.join(timeout=10.0)
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=5.0)
            self._procs = []
            self._cmd_qs = []
        # error paths can leave arrays behind (execute's release loop
        # never ran); destroy their segments rather than leak /dev/shm
        for name in list(self.darrays):
            da = self.darrays.pop(name)
            try:
                da.free(self.machine)
            except Exception:
                pass


# self-registration, mirroring the other backends
from repro.runtime.backends import register_backend  # noqa: E402

register_backend("parallel", ParallelExec)
