"""Process-parallel execution backend over shared-memory blocks.

One OS process per worker, ``W = min(workers, npes)`` workers (default
``os.cpu_count()``), PEs mapped round-robin: worker ``w`` *owns* PEs
``{pe : pe % W == w}``.  Every (array, PE) padded local block lives in a
:mod:`multiprocessing.shared_memory` segment, so an ``OVERLAP_SHIFT``
halo exchange is a cross-block slab copy performed concurrently by the
receiving PE's owner, synchronized by per-plan-op barriers.

**Ownership execution.**  Each worker executes, charges, and logs only
the PEs it owns — true owner-computes SPMD, no replicated walk.  The
executor's :meth:`~repro.runtime.executor._Exec.compute_ranks` hook
restricts data movement and loop charging to owned PEs, and
:meth:`Machine.set_ownership` gates the machine/network charge paths so
the shared ``overlap_shift``/``full_cshift`` code runs unchanged.  The
values a replicated walk would recompute everywhere are instead
*communicated* through the :class:`CollectiveChannel`, a tiny
allreduce/broadcast primitive layered over the barrier on one shared
float64 scratch segment: reduction partials combine via
:meth:`CollectiveChannel.allreduce` (folded in PE-rank order, so the
result is bitwise identical to the serial fold), and every scalar
assignment, ``IF`` condition, and ``DO WHILE`` guard passes through
:meth:`CollectiveChannel.bcast_check`, which verifies all workers
computed the bit-identical value — control flow can never silently
diverge, and a corrupted payload aborts the run naming the divergent
worker.

**Equivalence contract.**  The backend must produce bitwise-identical
arrays/scalars and an identical *modelled* :class:`CostReport`, message
log, and comm profile to ``perpe``/``vectorized``.  The merged report
takes each PE's per-PE rows (times and the float memory/flop
aggregates) from that PE's owner and sums the order-free integer
counters across workers; worker message logs carry global sequence
stamps (the network's sequence counter ticks even for skipped records)
and splice back into the exact serial order, verified gap- and
duplicate-free.  A worker charging a PE it does not own is detected at
merge time and reported as desynchronization.

**Synchronization.**  Writes are owner-local by construction (a worker
only ever writes blocks of PEs it owns); the races are reads of a
neighbor's block.  Barriers therefore bracket exactly the cross-block
phases: around each ``OVERLAP_SHIFT``, at the three phase boundaries of
a buffered full shift (after copy-in, after the exchange, before the
scratch buffer dies), inside every collective (reduction combines and
scalar broadcasts), after mid-plan allocations (all blocks must exist
before any worker touches them), and before frees (no
attach-after-unlink).  Communicated control flow guarantees every
worker reaches the same barrier points in the same order; a timeout
(:data:`BARRIER_TIMEOUT_S`, overridable via
``REPRO_PARALLEL_BARRIER_TIMEOUT``) plus ``Barrier.abort()`` on worker
error turns a hang into a diagnosable failure instead of a deadlock,
and the coordinator polls worker liveness so a dead worker aborts its
peers within a fraction of a second, naming the dead worker and the
PEs it owned.

**Shared-memory lifecycle.**  Segment names are
``{run_id}-{array}-g{gen}-p{pe}`` — where ``run_id`` is
``repro-{pid}-{hex}``, embedding the coordinator's pid so a later
process can tell an orphaned run from a live one — and ``gen`` is a
per-array-name
generation counter every process advances identically (entry arrays in
``plan.entry_arrays`` order, then plan allocations in execution order),
so free-then-reallocate never aliases a stale segment.  The parent
creates entry-array blocks; workers create blocks for the PEs they own
on mid-plan allocations and attach lazily to everything else.  Unlink
responsibility is disjoint (each worker unlinks its owned PEs' blocks,
the parent unlinks arrays that survive to the end), double-unlink is
tolerated, and every attach is unregistered from the
``resource_tracker`` so lifetimes stay fully manual.

**Measured time.**  Besides the modelled report, each worker measures
real wall-clock per op (including barrier waits).  The coordinator
installs worker 0's samples into the parent profiler — so
``repro profile --backend parallel`` emits a modelled-vs-*measured*
validation table — and attaches one wall-clock track per worker
(``CommProfile.worker_tracks``) that the Chrome-trace exporter renders
as a real concurrency timeline.
"""

from __future__ import annotations

import glob as _glob
import multiprocessing as mp
import os
import pickle
import queue
import time
import traceback
import uuid
from math import prod
from threading import BrokenBarrierError
from typing import Mapping

import numpy as np
from multiprocessing import resource_tracker, shared_memory

from repro.errors import ExecutionError, MachineError, UsageError
from repro.machine.cost_model import CostReport
from repro.machine.machine import Machine
from repro.plan import FullShiftOp, OverlapShiftOp, Plan
from repro.runtime.cshift import full_cshift, full_eoshift
from repro.runtime.darray import DArray, Halo
from repro.runtime.distribution import Layout, cached_layout
from repro.runtime.executor import _Exec
from repro.runtime.overlap import overlap_shift

#: Safety net for hung barriers (a worker died without aborting): waits
#: raise BrokenBarrierError after this instead of deadlocking the run.
#: Overridable per run via the ``REPRO_PARALLEL_BARRIER_TIMEOUT``
#: environment variable (seconds; the failure-injection tests shrink it
#: so a forced stall is detected in milliseconds, not minutes).
BARRIER_TIMEOUT_S = 120.0

#: How long the coordinator waits for one worker reply before declaring
#: the pool wedged (longer than the barrier timeout so worker-side
#: timeouts surface as worker errors, not coordinator timeouts).
REPLY_TIMEOUT_S = BARRIER_TIMEOUT_S + 60.0

#: Liveness-poll period of the coordinator's reply loop: how often it
#: checks worker processes are still alive while waiting for replies.
POLL_INTERVAL_S = 0.25

#: After the first worker error reply, how long the coordinator keeps
#: draining further replies before terminating the pool.
ERROR_GRACE_S = 5.0

#: Fault-injection hook for the failure tests:
#: ``REPRO_PARALLEL_INJECT="<mode>:<wid>"`` with mode one of ``die``
#: (hard ``os._exit`` at the first barrier), ``stall`` (sleep through
#: the first barrier so peers hit the barrier timeout), or ``corrupt``
#: (scribble on the worker's first collective payload so peers detect
#: the divergence).  Parsed in the worker; never set in production.
INJECT_ENV = "REPRO_PARALLEL_INJECT"
BARRIER_TIMEOUT_ENV = "REPRO_PARALLEL_BARRIER_TIMEOUT"


def _barrier_timeout() -> float:
    try:
        return float(os.environ[BARRIER_TIMEOUT_ENV])
    except (KeyError, ValueError):
        return BARRIER_TIMEOUT_S


def _owned_pes(wid: int, nworkers: int, npes: int) -> list[int]:
    """The PEs worker ``wid`` owns under the round-robin map."""
    return list(range(wid, npes, nworkers))


try:  # POSIX only; the fallback path covers other platforms
    import _posixshmem
except ImportError:  # pragma: no cover
    _posixshmem = None


def _untrack(seg: shared_memory.SharedMemory) -> None:
    """Remove ``seg`` from this process's resource tracker.

    ``SharedMemory`` registers segments on *attach* as well as create
    (fixed only in newer CPythons via ``track=False``), so without this
    every attaching process would try to unlink the segment at exit.
    Lifetimes here are fully manual: creators/owners unlink explicitly
    and double-unlinks are tolerated.
    """
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


#: Directory POSIX shared memory surfaces in on Linux; tests point this
#: elsewhere to exercise the reclamation scan without real segments.
SHM_DIR = "/dev/shm"

#: Minimum seconds between throttled reclamation scans (see
#: :func:`reclaim_stale_segments`).
RECLAIM_INTERVAL_S = 30.0

_last_reclaim = 0.0


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True
    except OSError:  # pragma: no cover
        return True
    return True


def reclaim_stale_segments(shm_dir: str | None = None, *,
                           throttle: bool = False) -> list[str]:
    """Unlink shm segments left behind by dead coordinators.

    A coordinator killed with SIGKILL never runs :meth:`ParallelExec.
    close`, so its ``repro-{pid}-...`` segments leak in ``/dev/shm``
    until reboot.  Every new :class:`ParallelExec` (and the service's
    worker pool) calls this sweep: any segment whose embedded creator
    pid no longer names a live process is unlinked.  Segments from live
    pids — including our own — and names that don't parse (other
    software, or pre-pid-format runs) are left strictly alone, so a
    concurrently running coordinator is never raced.

    With ``throttle=True`` the scan is skipped unless
    :data:`RECLAIM_INTERVAL_S` seconds have passed since the last one,
    bounding the directory-scan cost on hot paths.  Returns the
    basenames of the segments reclaimed.
    """
    global _last_reclaim
    if throttle:
        now = time.monotonic()
        if now - _last_reclaim < RECLAIM_INTERVAL_S:
            return []
        _last_reclaim = now
    directory = shm_dir if shm_dir is not None else SHM_DIR
    reclaimed: list[str] = []
    own_pid = os.getpid()
    dead: dict[int, bool] = {}
    for path in _glob.glob(os.path.join(directory, "repro-*-*")):
        name = os.path.basename(path)
        try:
            pid = int(name.split("-")[1])
        except (IndexError, ValueError):
            continue  # pre-pid name format or foreign file: hands off
        if pid == own_pid:
            continue
        if pid not in dead:
            dead[pid] = not _pid_alive(pid)
        if not dead[pid]:
            continue
        try:
            if directory == SHM_DIR:
                _unlink_segment(name)
            else:  # test harness: plain files standing in for segments
                os.unlink(path)
            reclaimed.append(name)
        except (FileNotFoundError, OSError):
            pass  # raced with another reclaimer
    return reclaimed


def _unlink_segment(name: str) -> None:
    """Destroy one named segment without touching the resource tracker.

    ``SharedMemory.unlink`` unconditionally unregisters the name, which
    errors in the (process-shared) tracker because :func:`_untrack`
    already removed it — so go straight to ``shm_unlink``.  Raises
    ``FileNotFoundError`` if the segment is already gone.
    """
    if _posixshmem is not None:
        _posixshmem.shm_unlink("/" + name)
        return
    seg = shared_memory.SharedMemory(name=name)  # pragma: no cover
    try:
        resource_tracker.register(seg._name, "shared_memory")
    except Exception:
        pass
    seg.unlink()
    seg.close()


class ShmDArray(DArray):
    """A :class:`DArray` whose per-PE padded blocks live in shared memory.

    ``owned_pes`` is the set of PEs whose segments this *instance* is
    responsible for destroying (workers: their round-robin share; the
    parent: every PE).  Blocks are attached lazily on first
    :meth:`padded` access, so a worker maps only the blocks it actually
    reads or writes.
    """

    def __init__(self, name: str, layout: Layout, dtype: np.dtype,
                 halo: Halo, *, run_id: str, gen: int,
                 shapes: list[tuple[int, ...]],
                 owned_pes: frozenset[int]) -> None:
        DArray.__init__(self, name, layout, np.dtype(dtype), halo, [])
        self.run_id = run_id
        self.gen = gen
        self.owned_pes = frozenset(owned_pes)
        self._shapes = shapes
        self._segs: dict[int, shared_memory.SharedMemory] = {}
        self._views: dict[int, np.ndarray] = {}

    # -- construction ------------------------------------------------------
    @staticmethod
    def build(machine: Machine, name: str, layout: Layout,
              dtype: np.dtype, halo: Halo | None, *, run_id: str,
              gen: int, create_pes, owned_pes,
              charge: bool) -> "ShmDArray":
        """Validate + (optionally) charge exactly like
        :meth:`DArray.create`, then create segments for ``create_pes``.

        Workers pass ``charge=True`` (they replicate the reference
        allocation charges); the parent passes ``charge=False`` (its
        memory accounting comes from the merged worker peaks).
        """
        rank = len(layout.shape)
        halo = halo or tuple((0, 0) for _ in range(rank))
        if len(halo) != rank:
            raise MachineError(f"halo rank mismatch for {name}")
        for d, (lo, hi) in enumerate(halo):
            limit = layout.max_shift(d)
            if max(lo, hi) > limit:
                raise MachineError(
                    f"{name}: halo {max(lo, hi)} along dim {d + 1} exceeds "
                    f"the minimum local extent {limit}; use a smaller shift "
                    f"or fewer processors")
        dtype = np.dtype(dtype)
        shapes = []
        for pe in layout.grid.ranks():
            local = layout.local_shape(pe)
            shapes.append(tuple(n + lo + hi
                                for n, (lo, hi) in zip(local, halo)))
        if charge:
            nbytes = [prod(s) * dtype.itemsize for s in shapes]
            machine.memory.allocate_all(name, nbytes)
        da = ShmDArray(name, layout, dtype, halo, run_id=run_id, gen=gen,
                       shapes=shapes, owned_pes=frozenset(owned_pes))
        for pe in create_pes:
            da._attach(pe, create=True)
        return da

    def seg_name(self, pe: int) -> str:
        return f"{self.run_id}-{self.name}-g{self.gen}-p{pe}"

    def _attach(self, pe: int, create: bool = False) -> np.ndarray:
        shape = self._shapes[pe]
        if create:
            nbytes = prod(shape) * self.dtype.itemsize
            seg = shared_memory.SharedMemory(name=self.seg_name(pe),
                                             create=True, size=nbytes)
        else:
            seg = shared_memory.SharedMemory(name=self.seg_name(pe))
        _untrack(seg)
        view = np.ndarray(shape, dtype=self.dtype, buffer=seg.buf)
        if create:
            view.fill(0)
        self._segs[pe] = seg
        self._views[pe] = view
        return view

    # -- views -------------------------------------------------------------
    def padded(self, pe: int) -> np.ndarray:
        view = self._views.get(pe)
        if view is None:
            view = self._attach(pe)
        return view

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mappings (segments stay alive)."""
        self._views.clear()
        segs, self._segs = self._segs, {}
        for seg in segs.values():
            try:
                seg.close()
            except BufferError:
                pass  # a live external view pins the mapping; leave it

    def unlink_owned(self) -> None:
        """Destroy the segments this instance is responsible for.

        ``FileNotFoundError`` is swallowed: on Linux unlink-while-mapped
        is safe and another responsible party may legitimately have
        unlinked first (the parent's error-path sweep).
        """
        for pe in self.owned_pes:
            try:
                _unlink_segment(self.seg_name(pe))
            except FileNotFoundError:
                pass

    def free(self, machine: Machine) -> None:
        machine.memory.free_all(self.name)
        self.unlink_owned()
        self.close()


# ---------------------------------------------------------------------------
# collective channel
# ---------------------------------------------------------------------------

class CollectiveChannel:
    """Allreduce/broadcast primitive layered over the worker barrier.

    One shared segment (``{run_id}-coll``) holds three arrays:

    * ``vals[npes]`` — float64 slots where each worker publishes the
      per-PE reduction partials of the PEs it owns;
    * ``out[nworkers]`` — each worker's computed result of the current
      collective, compared *bitwise* (as int64 bit patterns, so NaNs
      compare honestly) to catch divergence and corruption;
    * ``stamps[nworkers]`` — each worker's current collective id, so a
      worker arriving at the wrong collective is named instead of
      silently exchanging garbage.

    Every phase transition is a barrier wait: writes happen before the
    barrier that publishes them and reads happen before the barrier
    that allows the next collective's writes, so no worker can race a
    slow peer's verification.  ``allreduce`` needs three barriers
    (publish partials / publish folded result / release ``out``);
    ``bcast_check`` needs two (publish value / release ``out``).
    """

    def __init__(self, run_id: str, npes: int, nworkers: int, *,
                 create: bool) -> None:
        self.run_id = run_id
        self.npes = npes
        self.nworkers = nworkers
        nbytes = 8 * (npes + 2 * nworkers)
        if create:
            seg = shared_memory.SharedMemory(name=self.seg_name(run_id),
                                             create=True, size=nbytes)
        else:
            seg = shared_memory.SharedMemory(name=self.seg_name(run_id))
        _untrack(seg)
        self._seg = seg
        self.vals = np.ndarray((npes,), np.float64, seg.buf)
        self.out = np.ndarray((nworkers,), np.float64, seg.buf,
                              8 * npes)
        self.out_bits = np.ndarray((nworkers,), np.int64, seg.buf,
                                   8 * npes)
        self.stamps = np.ndarray((nworkers,), np.int64, seg.buf,
                                 8 * (npes + nworkers))
        if create:
            self.vals.fill(0.0)
            self.out.fill(0.0)
            self.stamps.fill(-1)
        # worker-side state, set by bind(); the parent only creates,
        # unlinks, and never participates in collectives
        self.wid = -1
        self._barrier = None
        self._timeout = BARRIER_TIMEOUT_S
        self._cid = 0
        self._corrupt_next = False
        # plain-int observability counters: always on (cheap), shipped
        # to the coordinator in each shard and published as metrics
        # there — worker processes run with the Null registry
        self.wait_count = 0
        self.wait_seconds = 0.0
        self.allreduce_rounds = 0
        self.bcast_checks = 0

    @staticmethod
    def seg_name(run_id: str) -> str:
        return f"{run_id}-coll"

    def bind(self, wid: int, barrier, timeout: float) -> None:
        self.wid = wid
        self._barrier = barrier
        self._timeout = timeout

    def inject_corruption(self) -> None:
        """Arm a one-shot payload corruption (failure-injection tests)."""
        self._corrupt_next = True

    # -- protocol ----------------------------------------------------------
    def _wait(self, what: str) -> None:
        self.wait_count += 1
        t0 = time.perf_counter()
        try:
            self._barrier.wait(self._timeout)
            self.wait_seconds += time.perf_counter() - t0
        except BrokenBarrierError:
            raise ExecutionError(
                f"parallel worker {self.wid}: barrier broken during "
                f"{what} — a peer worker died, stalled past the "
                f"{self._timeout:g}s barrier timeout, or aborted"
            ) from None

    def _peer_pes(self, wid: int) -> list[int]:
        return _owned_pes(wid, self.nworkers, self.npes)

    def _check_stamps(self, cid: int, what: str) -> None:
        lagging = [w for w in range(self.nworkers)
                   if int(self.stamps[w]) != cid]
        if lagging:
            w = lagging[0]
            raise ExecutionError(
                f"parallel workers desynchronized at collective #{cid} "
                f"({what}): worker {w} (owns PEs {self._peer_pes(w)}) "
                f"is at collective #{int(self.stamps[w])}")

    def _check_agreement(self, what: str) -> None:
        mine = int(self.out_bits[self.wid])
        bad = [w for w in range(self.nworkers)
               if int(self.out_bits[w]) != mine]
        if bad:
            w = bad[0]
            raise ExecutionError(
                f"parallel workers diverged on {what}: worker {w} "
                f"(owns PEs {self._peer_pes(w)}) published "
                f"{float(self.out[w])!r} but worker {self.wid} "
                f"(owns PEs {self._peer_pes(self.wid)}) computed "
                f"{float(self.out[self.wid])!r} — corrupted collective "
                f"payload or desynchronized control flow")

    def allreduce(self, partials: dict[int, float], fold,
                  what: str) -> float:
        """Combine per-PE partials across workers, folding in PE-rank
        order so the result is bitwise identical to the serial fold."""
        self.allreduce_rounds += 1
        cid = self._cid
        self._cid += 1
        for pe, v in partials.items():
            self.vals[pe] = v
        self.stamps[self.wid] = cid
        self._wait(f"allreduce publish ({what})")
        self._check_stamps(cid, what)
        total = float(self.vals[0])
        for pe in range(1, self.npes):
            total = float(fold(total, float(self.vals[pe])))
        self.out[self.wid] = total
        if self._corrupt_next:
            self._corrupt_next = False
            self.out_bits[self.wid] = ~int(self.out_bits[self.wid])
            total = float(self.out[self.wid])
        self._wait(f"allreduce combine ({what})")
        self._check_agreement(what)
        self._wait(f"allreduce release ({what})")
        return total

    def bcast_check(self, value: float, what: str) -> float:
        """Verify all workers computed the bit-identical scalar.

        Scalar expressions are deterministic given agreed inputs, so
        every worker computes the value locally; this collective is the
        proof they actually agree — the parallel analogue of a
        broadcast, with the broadcast replaced by an equality check
        that catches corruption and divergence instead of masking it.
        """
        self.bcast_checks += 1
        cid = self._cid
        self._cid += 1
        self.out[self.wid] = value
        if self._corrupt_next:
            self._corrupt_next = False
            self.out_bits[self.wid] = ~int(self.out_bits[self.wid])
            value = float(self.out[self.wid])
        self.stamps[self.wid] = cid
        self._wait(f"scalar broadcast ({what})")
        self._check_stamps(cid, what)
        self._check_agreement(what)
        self._wait(f"scalar release ({what})")
        return value

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self.vals = self.out = self.out_bits = self.stamps = None
        seg, self._seg = self._seg, None
        if seg is not None:
            try:
                seg.close()
            except BufferError:  # pragma: no cover
                pass

    def unlink(self) -> None:
        try:
            _unlink_segment(self.seg_name(self.run_id))
        except FileNotFoundError:
            pass


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

class _WorkerExec(_Exec):
    """The executor a worker process runs: ownership execution.

    Computes, charges, and logs only the PEs it owns; everything the
    old replicated walk recomputed everywhere (scalars, reduction
    results, loop conditions) goes through the collective channel.
    """

    def __init__(self, plan: Plan, machine: Machine,
                 scalars: Mapping[str, float] | None, hpf_overhead: bool,
                 *, wid: int, nworkers: int, run_id: str,
                 barrier, channel: CollectiveChannel,
                 inject: str | None = None) -> None:
        super().__init__(plan, machine, scalars, hpf_overhead)
        self.wid = wid
        self.nworkers = nworkers
        self.run_id = run_id
        self.barrier = barrier
        self.owned = frozenset(range(wid, machine.npes, nworkers))
        self._ranks = sorted(self.owned)
        self._move = self.owned.__contains__
        machine.set_ownership(self._move)
        self._timeout = _barrier_timeout()
        self.channel = channel
        channel.bind(wid, barrier, self._timeout)
        self._inject = inject  # "die" | "stall" | None, one-shot
        if inject == "corrupt":
            channel.inject_corruption()
            self._inject = None
        self._gen: dict[str, int] = {}
        self.bwaits = 0
        self.bwait_seconds = 0.0

    def _next_gen(self, name: str) -> int:
        gen = self._gen.get(name, 0) + 1
        self._gen[name] = gen
        return gen

    def _bwait(self) -> None:
        if self._inject is not None:
            mode, self._inject = self._inject, None
            if mode == "die":
                os._exit(3)
            elif mode == "stall":
                # sleep through the barrier so peers hit the timeout;
                # terminated by the coordinator long before this expires
                time.sleep(max(60.0, self._timeout * 10.0))
        self.bwaits += 1
        t0 = time.perf_counter()
        try:
            self.barrier.wait(self._timeout)
            self.bwait_seconds += time.perf_counter() - t0
        except BrokenBarrierError:
            raise ExecutionError(
                f"parallel worker {self.wid}: barrier broken — a peer "
                f"worker died, stalled past the {self._timeout:g}s "
                f"barrier timeout, or aborted") from None

    # -- ownership hooks ---------------------------------------------------
    def compute_ranks(self):
        return self._ranks

    def communicate(self, value: float, what: str) -> float:
        return self.channel.bcast_check(value, what)

    def _combine_partials(self, partials: dict[int, float], fold,
                          what: str) -> float:
        return self.channel.allreduce(partials, fold, what)

    # -- array lifecycle ---------------------------------------------------
    def setup_entry_arrays(self) -> None:
        """Attach the parent-created entry arrays, replicating the
        reference executor's allocation charges in ``entry_arrays``
        order (the order ``execute`` materializes them)."""
        for name in self.plan.entry_arrays:
            decl = self.plan.arrays[name]
            layout = cached_layout(decl.shape, decl.distribution,
                                   self.machine.topology)
            da = ShmDArray.build(
                self.machine, name, layout, decl.dtype, decl.halo,
                run_id=self.run_id, gen=self._next_gen(name),
                create_pes=(), owned_pes=self.owned, charge=True)
            self.darrays[name] = da

    def materialize(self, name: str,
                    initial: np.ndarray | None = None) -> None:
        if initial is not None:
            raise ExecutionError(
                "parallel worker cannot seed arrays mid-plan")
        decl = self.plan.arrays[name]
        layout = cached_layout(decl.shape, decl.distribution,
                               self.machine.topology)
        da = ShmDArray.build(
            self.machine, name, layout, decl.dtype, decl.halo,
            run_id=self.run_id, gen=self._next_gen(name),
            create_pes=self.owned, owned_pes=self.owned, charge=True)
        self._bwait()  # every PE's block exists before anyone touches it
        self.darrays[name] = da

    def release(self, name: str) -> None:
        # everyone must be past their last read before segments die
        self._bwait()
        super().release(name)  # ShmDArray.free unlinks this worker's PEs

    def _scratch_factory(self, machine: Machine, name: str,
                         layout: Layout, dtype: np.dtype,
                         halo: Halo) -> DArray:
        da = ShmDArray.build(
            machine, name, layout, dtype, halo,
            run_id=self.run_id, gen=self._next_gen(name),
            create_pes=self.owned, owned_pes=self.owned, charge=True)
        self._bwait()
        return da

    # -- cross-block ops ---------------------------------------------------
    def do_overlap_shift(self, op: OverlapShiftOp) -> None:
        self._bwait()  # senders' interiors fully written
        overlap_shift(self.machine, self.darray(op.array),
                      op.shift, op.dim, rsd=op.rsd,
                      base_offsets=op.base_offsets,
                      boundary=op.boundary, move=self._move)
        self._bwait()  # slab reads done before owners overwrite sources

    def do_full_shift(self, op: FullShiftOp) -> None:
        dst, src = self.darray(op.dst), self.darray(op.src)
        if op.boundary is None:
            full_cshift(self.machine, dst, src, op.shift, op.dim,
                        scratch_factory=self._scratch_factory,
                        move=self._move, sync=self._bwait)
        else:
            full_eoshift(self.machine, dst, src, op.shift, op.dim,
                         op.boundary,
                         scratch_factory=self._scratch_factory,
                         move=self._move, sync=self._bwait)

    # reductions need no extra barriers: each worker reads only its own
    # owned blocks for the partials, and the collective channel's
    # allreduce synchronizes the combine — _reduce and _exec_nest_box
    # run the base owner-computes code paths unchanged

    # -- shard reporting ---------------------------------------------------
    def shard(self) -> dict:
        """Cumulative replica state shipped to the coordinator after
        every run command."""
        prof = None
        if self.profiler is not None:
            prof = {"samples": self.profiler.samples,
                    "wall_total": self.profiler.wall_total}
        return {
            "report": self.machine.report,
            "log": list(self.machine.network.log),
            "peaks": [self.machine.memory.peak(pe)
                      for pe in range(self.machine.npes)],
            "scalars": dict(self.scalars),
            "live": sorted((n, da.name, da.gen)
                           for n, da in self.darrays.items()),
            "prof": prof,
            "metrics": {
                "barrier_waits":
                    self.bwaits + self.channel.wait_count,
                "barrier_wait_seconds":
                    self.bwait_seconds + self.channel.wait_seconds,
                "allreduce_rounds": self.channel.allreduce_rounds,
                "bcast_checks": self.channel.bcast_checks,
            },
        }

    def close_attachments(self) -> None:
        for da in self.darrays.values():
            da.close()


def _parse_inject(wid: int) -> str | None:
    """This worker's fault-injection mode from :data:`INJECT_ENV`."""
    spec = os.environ.get(INJECT_ENV, "")
    if not spec:
        return None
    mode, _, target = spec.partition(":")
    try:
        if int(target) != wid:
            return None
    except ValueError:
        return None
    return mode if mode in ("die", "stall", "corrupt") else None


def _worker_main(wid: int, nworkers: int, plan: Plan,
                 machine_cfg: dict, scalars, hpf_overhead: bool,
                 run_id: str, profile: bool, barrier, cmd_q,
                 result_q) -> None:
    ex = None
    channel = None
    try:
        machine = Machine(**machine_cfg)
        channel = CollectiveChannel(run_id, machine.npes, nworkers,
                                    create=False)
        ex = _WorkerExec(plan, machine, scalars, hpf_overhead,
                         wid=wid, nworkers=nworkers, run_id=run_id,
                         barrier=barrier, channel=channel,
                         inject=_parse_inject(wid))
        if profile:
            from repro.obs.profile import ProfileCollector
            ex.profiler = ProfileCollector(machine)
        ex.setup_entry_arrays()
        while True:
            cmd = cmd_q.get()
            if cmd[0] == "stop":
                break
            ex.run_ops(plan.ops)
            result_q.put(("done", wid, pickle.dumps(ex.shard())))
    except BaseException as exc:  # noqa: BLE001 — must reach the parent
        try:
            barrier.abort()
        except Exception:
            pass
        payload = None
        try:
            payload = pickle.dumps(exc)
            pickle.loads(payload)
        except Exception:
            payload = None
        try:
            result_q.put(("error", wid, pickle.dumps(
                {"exc": payload, "tb": traceback.format_exc()})))
        except Exception:
            pass
    finally:
        if ex is not None:
            ex.close_attachments()
        if channel is not None:
            channel.close()


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------

class ParallelExec(_Exec):
    """Coordinator executor registered as the ``parallel`` backend.

    Runs in the parent process: materializes entry arrays in shared
    memory, drives the worker pool (started lazily at the first
    ``run_ops`` so profiler assignment is known), and after every
    iteration splices the workers' ownership-partial shards — per-PE
    report rows from each PE's owner, seq-ordered message logs, per-op
    profile samples — into the parent machine, so ``execute``'s
    gather/result code works unchanged.  Worker liveness is polled
    while waiting for replies: a dead or stalled worker aborts the
    whole pool within :data:`POLL_INTERVAL_S` with an error naming the
    worker and the PEs it owned.
    """

    backend_label = "parallel"

    def __init__(self, plan: Plan, machine: Machine,
                 scalars: Mapping[str, float] | None,
                 hpf_overhead: bool, tracer=None,
                 workers: int | None = None) -> None:
        # Validate before any machine or shared-memory state is touched:
        # workers <= 0 would otherwise reach the round-robin ownership
        # math (``range(wid, npes, nworkers)``, ``pe % W``) and fail as
        # an opaque ValueError / ZeroDivisionError or hang at a barrier.
        if workers is not None:
            if not isinstance(workers, int) or isinstance(workers, bool):
                raise UsageError(
                    f"parallel backend worker count must be an int, got "
                    f"{workers!r}")
            if workers < 1:
                raise UsageError(
                    f"parallel backend needs >= 1 worker, got {workers}")
        super().__init__(plan, machine, scalars, hpf_overhead,
                         tracer=tracer, workers=workers)
        requested = workers or (os.cpu_count() or 1)
        self.nworkers = max(1, min(requested, machine.npes))
        self.owner_of = [pe % self.nworkers
                         for pe in range(machine.npes)]
        self._init_scalars = dict(scalars or {})
        self._hpf_overhead = bool(hpf_overhead)
        # Pid-stamped so reclaim_stale_segments can tell an orphaned
        # run's segments from a live coordinator's.
        self.run_id = f"repro-{os.getpid()}-{uuid.uuid4().hex[:12]}"
        reclaim_stale_segments(throttle=True)
        self._gen: dict[str, int] = {}
        self._procs: list = []
        self._cmd_qs: list = []
        self._result_q = None
        self._liveness_polls = 0
        # created up front so workers can attach immediately on spawn;
        # the parent never participates in collectives, only unlinks
        self._channel = CollectiveChannel(self.run_id, machine.npes,
                                          self.nworkers, create=True)

    def _next_gen(self, name: str) -> int:
        gen = self._gen.get(name, 0) + 1
        self._gen[name] = gen
        return gen

    # -- array lifecycle (parent: real blocks, no charges) -----------------
    def materialize(self, name: str,
                    initial: np.ndarray | None = None) -> None:
        decl = self.plan.arrays[name]
        layout = cached_layout(decl.shape, decl.distribution,
                               self.machine.topology)
        pes = list(layout.grid.ranks())
        da = ShmDArray.build(
            self.machine, name, layout, decl.dtype, decl.halo,
            run_id=self.run_id, gen=self._next_gen(name),
            create_pes=pes, owned_pes=pes, charge=False)
        if initial is not None:
            da.scatter(np.asarray(initial))
        self.darrays[name] = da

    # release() is inherited: ShmDArray.free unlinks every PE's segment
    # (free_all on the parent's never-charged heaps is a no-op).

    # -- pool --------------------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._procs:
            return
        method = ("fork" if "fork" in mp.get_all_start_methods()
                  else "spawn")
        ctx = mp.get_context(method)
        self._barrier = ctx.Barrier(self.nworkers)
        self._result_q = ctx.Queue()
        self._cmd_qs = [ctx.SimpleQueue() for _ in range(self.nworkers)]
        machine_cfg = dict(
            grid=tuple(self.machine.grid),
            cost_model=self.machine.cost_model,
            memory_per_pe=self.machine.memory_per_pe,
            keep_message_log=self.machine.keep_message_log)
        profile = self.profiler is not None
        for wid in range(self.nworkers):
            p = ctx.Process(
                target=_worker_main,
                args=(wid, self.nworkers, self.plan, machine_cfg,
                      self._init_scalars, self._hpf_overhead,
                      self.run_id, profile, self._barrier,
                      self._cmd_qs[wid], self._result_q),
                daemon=True,
                name=f"repro-parallel-w{wid}")
            p.start()
            self._procs.append(p)

    def _abort_barrier(self) -> None:
        barrier = getattr(self, "_barrier", None)
        if barrier is not None:
            try:
                barrier.abort()
            except Exception:
                pass

    def run_ops(self, ops) -> None:
        self._ensure_pool()
        for q in self._cmd_qs:
            q.put(("run",))
        shards: dict[int, dict] = {}
        errors: dict[int, dict] = {}
        pending = set(range(self.nworkers))
        deadline = time.monotonic() + REPLY_TIMEOUT_S
        grace_deadline: float | None = None
        while pending:
            now = time.monotonic()
            if errors and grace_deadline is None:
                # peers of a failed worker abort fast via the broken
                # barrier; give them a moment to report, then move on
                grace_deadline = now + ERROR_GRACE_S
            if grace_deadline is not None and now > grace_deadline:
                break
            if now > deadline:
                self._abort_barrier()
                self._terminate()
                raise ExecutionError(
                    "parallel backend: worker reply timed out "
                    f"(waited {REPLY_TIMEOUT_S:.0f}s; "
                    f"got {len(shards) + len(errors)}"
                    f"/{self.nworkers} replies)") from None
            try:
                kind, wid, payload = self._result_q.get(
                    timeout=POLL_INTERVAL_S)
            except queue.Empty:
                self._liveness_polls += 1
                dead = [w for w in sorted(pending)
                        if not self._procs[w].is_alive()]
                if dead:
                    # a worker died without reporting (killed, OOM,
                    # os._exit): break its peers out of their barrier
                    # waits immediately and name the corpse
                    self._abort_barrier()
                    w = dead[0]
                    code = self._procs[w].exitcode
                    self._terminate()
                    raise ExecutionError(
                        f"parallel worker {w} (owns PEs "
                        f"{_owned_pes(w, self.nworkers, self.machine.npes)}) "
                        f"died mid-run (exit code {code}); peer workers "
                        f"were aborted") from None
                continue
            data = pickle.loads(payload)
            pending.discard(wid)
            if kind == "done":
                shards[wid] = data
            else:
                errors[wid] = data
        if errors or pending:
            self._abort_barrier()
            self._terminate()
            if pending:
                # a worker neither replied nor died: stalled/deadlocked.
                # Its peers' barrier-timeout errors confirm it; name the
                # non-responsive worker, not the peers that noticed.
                w = min(pending)
                raise ExecutionError(
                    f"parallel worker {w} (owns PEs "
                    f"{_owned_pes(w, self.nworkers, self.machine.npes)}) "
                    f"stopped responding — stalled or deadlocked; "
                    f"{len(errors)} peer worker(s) hit the barrier "
                    f"timeout and aborted") from None
            # a worker with a specific diagnosis (payload divergence,
            # desynchronization, a simulated fault) beats peers that
            # only saw the barrier break when it aborted: abort() can
            # race a peer out of an already-tripped barrier wait, so
            # which workers report "barrier broken" is timing-dependent
            specific = [w for w in sorted(errors)
                        if "barrier broken" not in errors[w]["tb"]]
            wid = specific[0] if specific else min(errors)
            exc_payload = errors[wid]["exc"]
            if exc_payload is not None:
                raise pickle.loads(exc_payload)
            raise ExecutionError(
                f"parallel worker {wid} failed:\n{errors[wid]['tb']}")
        self._merge([shards[wid] for wid in range(self.nworkers)])

    # -- merge -------------------------------------------------------------
    def _merge(self, shards: list[dict]) -> None:
        merged = CostReport.merge_worker_reports(
            [s["report"] for s in shards], self.owner_of)
        self.machine.report.adopt(merged)
        self.machine.network.install_worker_logs(
            [s["log"] for s in shards])

        peaks0 = shards[0]["peaks"]
        scalars0 = shards[0]["scalars"]
        live0 = shards[0]["live"]
        for w, s in enumerate(shards[1:], start=1):
            if s["peaks"] != peaks0:
                raise ExecutionError(
                    f"worker {w} memory peaks diverged from worker 0")
            if s["scalars"] != scalars0:
                raise ExecutionError(
                    f"worker {w} scalars diverged from worker 0: "
                    f"{s['scalars']} vs {scalars0}")
            if s["live"] != live0:
                raise ExecutionError(
                    f"worker {w} live arrays diverged from worker 0: "
                    f"{s['live']} vs {live0}")
        self.machine.memory.adopt_peaks(peaks0)
        self.scalars = dict(scalars0)
        self._sync_darrays(live0)
        self._publish_metrics(shards)
        if self.profiler is not None:
            self._install_profiles(shards)

    def _publish_metrics(self, shards: list[dict]) -> None:
        """Publish the workers' shard counters as coordinator metrics.

        Shard counters are cumulative across the run (workers persist
        between ``run_ops`` calls), so they become gauges, not
        counters.  Counts of collective rounds are deterministic — the
        op sequence fixes them — but per-worker, not backend-invariant;
        wait seconds and liveness polls are wall-clock/timing-sensitive
        and tagged non-deterministic.
        """
        from repro.obs import metrics as _metrics
        registry = _metrics.get_registry()
        if not registry.enabled:
            return
        waits = registry.gauge(
            "repro_parallel_barrier_waits",
            help="Cumulative barrier waits per worker process.")
        wait_s = registry.gauge(
            "repro_parallel_barrier_wait_seconds",
            help="Cumulative seconds each worker spent in barrier "
                 "waits.", deterministic=False)
        rounds = registry.gauge(
            "repro_parallel_allreduce_rounds",
            help="Cumulative allreduce collectives per worker.")
        checks = registry.gauge(
            "repro_parallel_bcast_checks",
            help="Cumulative broadcast-agreement checks per worker.")
        for wid, s in enumerate(shards):
            m = s.get("metrics") or {}
            w = str(wid)
            waits.set(m.get("barrier_waits", 0), worker=w)
            wait_s.set(m.get("barrier_wait_seconds", 0.0), worker=w)
            rounds.set(m.get("allreduce_rounds", 0), worker=w)
            checks.set(m.get("bcast_checks", 0), worker=w)
        registry.gauge(
            "repro_parallel_workers",
            help="Worker processes in the parallel pool.",
        ).set(self.nworkers)
        registry.gauge(
            "repro_parallel_liveness_polls",
            help="Coordinator reply-queue poll timeouts spent checking "
                 "worker liveness.", deterministic=False,
        ).set(self._liveness_polls)

    def _sync_darrays(self, live: list[tuple[str, str, int]]) -> None:
        """Mirror the workers' live-array set: attach plan-allocated
        arrays that appeared, drop arrays the plan freed (the workers
        already unlinked their segments).

        Each entry is ``(logical, birth, gen)``: ``logical`` is the
        plan-level binding, ``birth`` the buffer's allocation name.
        They differ after a ``SwapOp`` exchanged two bindings — shared
        segment names derive from the *birth* name, so the parent must
        attach ``birth``'s segments under the ``logical`` key."""
        for name, birth, gen in live:
            cur = self.darrays.get(name)
            if cur is not None and cur.name == birth and cur.gen == gen:
                continue
            if cur is not None:
                cur.close()
            decl = self.plan.arrays[birth]
            layout = cached_layout(decl.shape, decl.distribution,
                                   self.machine.topology)
            pes = list(layout.grid.ranks())
            self.darrays[name] = ShmDArray.build(
                self.machine, birth, layout, decl.dtype, decl.halo,
                run_id=self.run_id, gen=gen, create_pes=(),
                owned_pes=pes, charge=False)
            self._gen[birth] = max(self._gen.get(birth, 0), gen)
        live_names = {name for name, _, _ in live}
        for name in [n for n in self.darrays if n not in live_names]:
            self.darrays.pop(name).close()

    def _install_profiles(self, shards: list[dict]) -> None:
        """Ownership merge of the workers' per-op samples.

        Every worker dispatches the same op sequence, so sample streams
        align index-for-index; each sample's per-PE modelled-time
        columns come from that PE's owning worker and its message/byte
        counts sum across workers (each counted only what it charged).
        Wall-clock numbers are worker 0's real measurement, barrier
        waits included.  Every worker keeps one wall-clock track keyed
        by *worker id* carrying all of its samples — a worker owning
        several round-robin PEs contributes every sample exactly once,
        never one-per-PE (which used to drop samples when two PEs
        mapped onto one worker).
        """
        from repro.obs.profile import OpSample
        collector = self.profiler
        npes = self.machine.npes
        profs = [s["prof"] for s in shards]
        base = profs[0]["samples"]
        for wid, prof in enumerate(profs[1:], start=1):
            if len(prof["samples"]) != len(base):
                raise ExecutionError(
                    f"worker {wid} profiled {len(prof['samples'])} ops "
                    f"vs worker 0's {len(base)} — op dispatch "
                    f"desynchronized")

        def col(samples, attr, pe):
            row = getattr(samples, attr)
            return row[pe] if pe < len(row) else 0.0

        merged = []
        for i, smp in enumerate(base):
            shard_smps = [p["samples"][i] for p in profs]
            for wid, other in enumerate(shard_smps[1:], start=1):
                if (other.name, other.parent, other.depth) != \
                        (smp.name, smp.parent, smp.depth):
                    raise ExecutionError(
                        f"worker {wid} profiled op #{i} as "
                        f"{other.name!r} vs worker 0's {smp.name!r} — "
                        f"op dispatch desynchronized")
            owner_smp = [shard_smps[self.owner_of[pe]]
                         for pe in range(npes)]
            merged.append(OpSample(
                index=smp.index, parent=smp.parent, depth=smp.depth,
                name=smp.name, detail=smp.detail,
                wall_incl=smp.wall_incl, wall_self=smp.wall_self,
                t_start=smp.t_start,
                pe_time=[col(owner_smp[pe], "pe_time", pe)
                         for pe in range(npes)],
                pe_comm=[col(owner_smp[pe], "pe_comm", pe)
                         for pe in range(npes)],
                pe_copy=[col(owner_smp[pe], "pe_copy", pe)
                         for pe in range(npes)],
                messages=sum(s.messages for s in shard_smps),
                msg_bytes=sum(s.msg_bytes for s in shard_smps),
                finish_order=smp.finish_order))
        collector.samples = merged
        collector.wall_start = 0.0
        collector.wall_end = profs[0]["wall_total"]
        tracks = []
        for wid, prof in enumerate(profs):
            events = [{"op": smp.index, "name": smp.name,
                       "depth": smp.depth, "t0": smp.t_start,
                       "t1": smp.t_start + smp.wall_incl}
                      for smp in prof["samples"]]
            tracks.append({
                "worker": wid,
                "pes": _owned_pes(wid, self.nworkers,
                                  self.machine.npes),
                "wall_s": prof["wall_total"],
                "events": events,
            })
        collector.worker_tracks = tracks

    # -- shutdown ----------------------------------------------------------
    def _terminate(self) -> None:
        procs, self._procs = self._procs, []
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5.0)
        self._cmd_qs = []

    def close(self) -> None:
        procs = self._procs
        if procs:
            for q in self._cmd_qs:
                try:
                    q.put(("stop",))
                except Exception:
                    pass
            for p in procs:
                p.join(timeout=10.0)
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=5.0)
            self._procs = []
            self._cmd_qs = []
        # error paths can leave arrays behind (execute's release loop
        # never ran); destroy their segments rather than leak /dev/shm
        for name in list(self.darrays):
            da = self.darrays.pop(name)
            try:
                da.free(self.machine)
            except Exception:
                pass
        channel = getattr(self, "_channel", None)
        if channel is not None:
            self._channel = None
            channel.close()
            channel.unlink()
        # belt-and-braces: a worker killed mid-allocation can leave
        # segments only it knew about (scratch buffers, mid-plan
        # arrays); sweep everything carrying this run's id
        for path in _glob.glob(f"/dev/shm/{self.run_id}-*"):
            try:
                _unlink_segment(os.path.basename(path))
            except (FileNotFoundError, OSError):
                pass


# self-registration, mirroring the other backends
from repro.runtime.backends import register_backend  # noqa: E402

register_backend("parallel", ParallelExec)
