"""Runtime for compiled stencil programs on the simulated machine.

* :mod:`repro.runtime.distribution` — HPF BLOCK layouts and index math.
* :mod:`repro.runtime.darray` — distributed arrays with overlap areas.
* :mod:`repro.runtime.overlap` — ``OVERLAP_SHIFT`` (interprocessor
  component only, with RSD support).
* :mod:`repro.runtime.cshift` — full ``CSHIFT``/``EOSHIFT`` (both
  components), as a naive backend would call.
* :mod:`repro.runtime.executor` — runs compiled plans.
* :mod:`repro.runtime.reference` — serial NumPy semantics of IR programs.
"""

from repro.runtime.distribution import Layout, BlockDim  # noqa: F401
from repro.runtime.darray import DArray  # noqa: F401
from repro.runtime.overlap import overlap_shift  # noqa: F401
from repro.runtime.cshift import full_cshift, full_eoshift  # noqa: F401
