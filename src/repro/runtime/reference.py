"""Serial NumPy reference semantics for IR programs.

:func:`evaluate` runs a program (in *any* pipeline stage: source-level,
normalized, offset-transformed, ...) on plain NumPy arrays, giving the
oracle every optimization level's distributed execution is checked
against.

Semantics notes
---------------
* ``CSHIFT(a, s, d)`` is ``np.roll(a, -s, axis=d-1)`` (Fortran:
  ``result(i) = a(i + s)`` circularly).
* An offset reference ``U<o>`` denotes ``U`` displaced by ``o`` — for a
  *valid* transformed program (the offset-array criteria forbid
  intervening destructive updates) this equals rolling the current value
  of ``U``, so ``OVERLAP_SHIFT`` statements are no-ops here.  The
  distributed executor implements real overlap-area snapshots; comparing
  it against this oracle is exactly the semantics-preservation check.
* Sections are 1-based inclusive; ``A(2:N-1, ...)`` maps to
  ``a[1:N-1, ...]`` in NumPy.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ExecutionError, SemanticError
from repro.ir.linexpr import LinExpr
from repro.ir.nodes import (
    Allocate, ArrayAssign, ArrayRef, BinOp, Compare, Const, CShift,
    Deallocate, DoLoop, EOShift, Expr, If, Intrinsic, OffsetRef,
    OverlapShift, Reduction, ScalarAssign, ScalarRef, Stmt, Triplet,
    UnaryOp,
)
from repro.ir.nodes import DoWhile
from repro.ir.program import Program


class ReferenceEnv:
    """Mutable evaluation environment: arrays, scalars, size params."""

    def __init__(self, program: Program,
                 inputs: Mapping[str, np.ndarray] | None = None,
                 scalars: Mapping[str, float] | None = None) -> None:
        self.program = program
        self.params = dict(program.symbols.params)
        self.scalars: dict[str, float] = {}
        for name in program.symbols.scalars:
            self.scalars[name] = 0.0
        if scalars:
            for k, v in scalars.items():
                self.scalars[k.upper()] = float(v)
        self.arrays: dict[str, np.ndarray] = {}
        inputs = inputs or {}
        for name, sym in program.symbols.arrays.items():
            if name in {k.upper() for k in inputs}:
                src = next(v for k, v in inputs.items()
                           if k.upper() == name)
                if tuple(src.shape) != sym.type.shape:
                    raise ExecutionError(
                        f"input {name}: shape {src.shape} != declared "
                        f"{sym.type.shape}")
                self.arrays[name] = np.array(src, dtype=sym.type.dtype)
            else:
                self.arrays[name] = np.zeros(sym.type.shape,
                                             dtype=sym.type.dtype)

    # -- helpers -------------------------------------------------------------
    def bounds(self, e: LinExpr) -> int:
        binding = dict(self.params)
        for k, v in self.scalars.items():
            if float(v).is_integer():
                binding[k] = int(v)
        return e.evaluate(binding)

    def section_slices(self, section: tuple[Triplet, ...]) -> tuple[slice, ...]:
        return tuple(slice(self.bounds(t.lo) - 1, self.bounds(t.hi))
                     for t in section)

    def scalar_value(self, name: str) -> float:
        if name in self.params:
            return float(self.params[name])
        if name in self.scalars:
            return self.scalars[name]
        raise ExecutionError(f"unbound scalar {name}")


def _roll(a: np.ndarray, shift: int, dim: int) -> np.ndarray:
    return np.roll(a, -shift, axis=dim - 1)


def apply_intrinsic(name: str, args: list) -> "np.ndarray | float":
    """Evaluate an elementwise intrinsic on NumPy values."""
    if name == "ABS":
        return np.abs(args[0])
    if name == "SQRT":
        return np.sqrt(args[0])
    if name == "EXP":
        return np.exp(args[0])
    if name == "LOG":
        return np.log(args[0])
    if name == "MIN":
        out = args[0]
        for a in args[1:]:
            out = np.minimum(out, a)
        return out
    if name == "MAX":
        out = args[0]
        for a in args[1:]:
            out = np.maximum(out, a)
        return out
    raise SemanticError(f"unknown intrinsic {name}")


def _eoshift(a: np.ndarray, shift: int, dim: int,
             boundary: float) -> np.ndarray:
    out = np.full_like(a, boundary)
    axis = dim - 1
    n = a.shape[axis]
    if abs(shift) >= n:
        return out
    src = [slice(None)] * a.ndim
    dst = [slice(None)] * a.ndim
    if shift > 0:
        dst[axis] = slice(0, n - shift)
        src[axis] = slice(shift, n)
    else:
        dst[axis] = slice(-shift, n)
        src[axis] = slice(0, n + shift)
    out[tuple(dst)] = a[tuple(src)]
    return out


def eval_expr(expr: Expr, env: ReferenceEnv) -> np.ndarray | float:
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, ScalarRef):
        return env.scalar_value(expr.name)
    if isinstance(expr, ArrayRef):
        a = env.arrays.get(expr.name)
        if a is None:
            raise ExecutionError(f"undefined array {expr.name}")
        if expr.section is None:
            return a
        return a[env.section_slices(expr.section)]
    if isinstance(expr, OffsetRef):
        a = env.arrays.get(expr.name)
        if a is None:
            raise ExecutionError(f"undefined array {expr.name}")
        out = a
        for d, off in enumerate(expr.offsets, start=1):
            if off:
                if expr.boundary is None:
                    out = _roll(out, off, d)
                else:
                    out = _eoshift(out, off, d, expr.boundary)
        return out
    if isinstance(expr, CShift):
        return _roll(np.asarray(eval_expr(expr.array, env)),
                     expr.shift, expr.dim)
    if isinstance(expr, EOShift):
        return _eoshift(np.asarray(eval_expr(expr.array, env)),
                        expr.shift, expr.dim, expr.boundary)
    if isinstance(expr, UnaryOp):
        return -eval_expr(expr.operand, env)  # type: ignore[operator]
    if isinstance(expr, BinOp):
        lv = eval_expr(expr.left, env)
        rv = eval_expr(expr.right, env)
        if expr.op == "+":
            return lv + rv  # type: ignore[operator]
        if expr.op == "-":
            return lv - rv  # type: ignore[operator]
        if expr.op == "*":
            return lv * rv  # type: ignore[operator]
        if expr.op == "/":
            return lv / rv  # type: ignore[operator]
        if expr.op == "**":
            return lv ** rv  # type: ignore[operator]
    if isinstance(expr, Intrinsic):
        args = [eval_expr(a, env) for a in expr.args]
        return apply_intrinsic(expr.name, args)
    if isinstance(expr, Reduction):
        value = np.asarray(eval_expr(expr.arg, env))
        return float({"SUM": np.sum, "MAXVAL": np.max,
                      "MINVAL": np.min}[expr.op](value))
    if isinstance(expr, Compare):
        lv = eval_expr(expr.left, env)
        rv = eval_expr(expr.right, env)
        return {"<": lv < rv, ">": lv > rv, "<=": lv <= rv,
                ">=": lv >= rv, "==": lv == rv, "/=": lv != rv}[expr.op]
    raise SemanticError(f"cannot evaluate {type(expr).__name__}")


def exec_stmt(stmt: Stmt, env: ReferenceEnv) -> None:
    if isinstance(stmt, ArrayAssign):
        value = eval_expr(stmt.rhs, env)
        target = env.arrays[stmt.lhs.name]
        slices = (Ellipsis if stmt.lhs.section is None
                  else env.section_slices(stmt.lhs.section))
        if stmt.mask is None:
            target[slices] = value
        else:
            mask = np.asarray(eval_expr(stmt.mask, env), dtype=bool)
            target[slices] = np.where(mask, value, target[slices])
    elif isinstance(stmt, ScalarAssign):
        env.scalars[stmt.name] = float(eval_expr(stmt.rhs, env))  # type: ignore[arg-type]
    elif isinstance(stmt, OverlapShift):
        pass  # pure data movement; offset refs read current values here
    elif isinstance(stmt, Allocate):
        for name in stmt.names:
            sym = env.program.symbols.array(name)
            env.arrays[name] = np.zeros(sym.type.shape,
                                        dtype=sym.type.dtype)
    elif isinstance(stmt, Deallocate):
        for name in stmt.names:
            env.arrays.pop(name, None)
            sym = env.program.symbols.array(name)
            env.arrays[name] = np.zeros(sym.type.shape,
                                        dtype=sym.type.dtype)
    elif isinstance(stmt, If):
        cond = eval_expr(stmt.cond, env)
        body = stmt.then_body if bool(cond) else stmt.else_body
        for s in body:
            exec_stmt(s, env)
    elif isinstance(stmt, DoLoop):
        lo = env.bounds(stmt.lo)
        hi = env.bounds(stmt.hi)
        for k in range(lo, hi + 1):
            env.scalars[stmt.var] = float(k)
            for s in stmt.body:
                exec_stmt(s, env)
    elif isinstance(stmt, DoWhile):
        guard = 0
        while bool(eval_expr(stmt.cond, env)):
            for s in stmt.body:
                exec_stmt(s, env)
            guard += 1
            if guard > 1_000_000:
                raise ExecutionError(
                    "DO WHILE exceeded 1e6 iterations")
    else:
        raise SemanticError(f"cannot execute {type(stmt).__name__}")


def evaluate(program: Program,
             inputs: Mapping[str, np.ndarray] | None = None,
             scalars: Mapping[str, float] | None = None) -> dict[str, np.ndarray]:
    """Run ``program`` serially; returns the final value of every array."""
    env = ReferenceEnv(program, inputs, scalars)
    for stmt in program.body:
        exec_stmt(stmt, env)
    return dict(env.arrays)
