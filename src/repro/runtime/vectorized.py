"""Vectorized execution backend: whole-array NumPy slab operations.

The per-PE executor (:mod:`repro.runtime.executor`) dispatches every
plan op through a Python loop over PEs, moving data between per-PE
padded blocks.  That is the faithful SPMD picture, but the Python-level
looping dominates wall-clock time on large grids.  This backend executes
the *same plans* over a single global padded array per distributed
array, so each op — halo exchange, offset-reference read, loop nest —
is one batch of NumPy slab operations regardless of the PE count.

Why this is exact: in every plan the compiler emits (and the coverage
verifier admits), each offset reference is dominated by the
``OVERLAP_SHIFT`` calls that fill the overlap cells it reads, with no
intervening redefinition of the base array.  At the moment of the read,
a PE's interior-block-boundary overlap cells therefore equal the
neighboring PE's *current* interior values — which is exactly what a
read through a single global array sees.  Only the overlap cells beyond
the global edges carry distinct data (wrapped or boundary-filled), so
the global representation keeps halo planes only there.

Cost accounting is replicated, not re-derived: every op walks the same
per-PE rank-order charge sequence as the per-PE executor — same message
count, same byte counts (including RSD-widened slabs and elided at-edge
EOSHIFT messages), same copy and loop-point charges, same per-PE memory
allocations — so cost reports are identical between backends and the
paper-figure reproductions are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

import numpy as np

from repro.errors import ExecutionError, MachineError
from repro.plan import FullShiftOp, LoopNestOp, OverlapShiftOp
from repro.ir.nodes import OffsetRef
from repro.ir.rsd import RSD
from repro.machine.machine import Machine
from repro.machine.network import comm_tag
from repro.passes.memopt import scaled_to_points
from repro.runtime.distribution import Layout, cached_layout
from repro.runtime.executor import _Exec
from repro.runtime.overlap import _effective_rsd

Halo = tuple[tuple[int, int], ...]


@dataclass
class VArray:
    """A distributed array held as one global padded ndarray.

    Global index ``g`` (1-based) along dim ``d`` maps to
    ``halo[d][0] + (g - 1)``.  Halo planes exist only past the global
    edges; interior block boundaries need none (see module docstring).
    Memory is charged per PE with exactly the padded-block sizes the
    per-PE representation would allocate.
    """

    name: str
    layout: Layout
    dtype: np.dtype
    halo: Halo
    data: np.ndarray

    @staticmethod
    def create(machine: Machine, name: str, layout: Layout,
               dtype: np.dtype, halo: Halo | None = None) -> "VArray":
        rank = len(layout.shape)
        halo = halo or tuple((0, 0) for _ in range(rank))
        if len(halo) != rank:
            raise MachineError(f"halo rank mismatch for {name}")
        for d, (lo, hi) in enumerate(halo):
            limit = layout.max_shift(d)
            if max(lo, hi) > limit:
                raise MachineError(
                    f"{name}: halo {max(lo, hi)} along dim {d + 1} exceeds "
                    f"the minimum local extent {limit}; use a smaller shift "
                    f"or fewer processors")
        dtype = np.dtype(dtype)
        nbytes = []
        for pe in machine.topology.ranks():
            local = layout.local_shape(pe)
            nbytes.append(prod(n + lo + hi
                               for n, (lo, hi) in zip(local, halo))
                          * dtype.itemsize)
        machine.memory.allocate_all(name, nbytes)
        shape = tuple(n + lo + hi
                      for n, (lo, hi) in zip(layout.shape, halo))
        return VArray(name, layout, dtype, halo,
                      np.zeros(shape, dtype=dtype))

    def free(self, machine: Machine) -> None:
        machine.memory.free_all(self.name)
        self.data = np.zeros(0, dtype=self.dtype)

    # -- views ---------------------------------------------------------------
    def padded(self, pe: int) -> np.ndarray:
        """The global padded array; every "PE" sees the same storage."""
        return self.data

    def interior_slices(self) -> tuple[slice, ...]:
        return tuple(slice(lo, lo + n)
                     for (lo, _), n in zip(self.halo, self.layout.shape))

    @property
    def interior(self) -> np.ndarray:
        return self.data[self.interior_slices()]

    def scatter(self, global_array: np.ndarray) -> None:
        if tuple(global_array.shape) != self.layout.shape:
            raise MachineError(
                f"{self.name}: scatter shape {global_array.shape} != "
                f"declared {self.layout.shape}")
        self.interior[...] = global_array

    def gather(self) -> np.ndarray:
        return self.interior.copy()

    def owned_box(self, pe: int) -> tuple[tuple[int, int], ...]:
        return self.layout.owned_box(pe)

    @property
    def rank(self) -> int:
        return len(self.layout.shape)


def _ext_slice(va: VArray, k: int, ext_lo: int, ext_hi: int) -> slice:
    """Global-coordinate slice of dim ``k``: the whole interior extended
    by ``ext_lo``/``ext_hi`` halo planes."""
    halo_lo, halo_hi = va.halo[k]
    if ext_lo > halo_lo or ext_hi > halo_hi:
        raise ExecutionError(
            f"{va.name}: RSD extension ({ext_lo},{ext_hi}) exceeds halo "
            f"({halo_lo},{halo_hi}) in dim {k + 1}")
    n = va.layout.shape[k]
    return slice(halo_lo - ext_lo, halo_lo + n + ext_hi)


def vec_overlap_shift(machine: Machine, va: VArray, shift: int, dim: int,
                      rsd: RSD | None = None,
                      base_offsets: tuple[int, ...] | None = None,
                      boundary: float | None = None) -> None:
    """:func:`repro.runtime.overlap.overlap_shift` on the global
    representation: one slab copy for the data, plus the per-PE charge
    walk that prices exactly the messages/copies the per-PE executor
    performs."""
    if shift == 0:
        raise ExecutionError("overlap_shift with zero shift")
    d = dim - 1
    if not (0 <= d < va.rank):
        raise ExecutionError(
            f"{va.name}: shift dim {dim} out of range (rank {va.rank})")
    s = abs(shift)
    sign = 1 if shift > 0 else -1
    halo_lo, halo_hi = va.halo[d]
    if (sign > 0 and halo_hi < s) or (sign < 0 and halo_lo < s):
        raise ExecutionError(
            f"{va.name}: overlap area too small for shift {shift:+d} along "
            f"dim {dim} (halo={va.halo[d]})")
    eff = _effective_rsd(va, d, rsd, base_offsets)
    if eff.rank != va.rank or eff.shift_dim != d:
        raise ExecutionError(
            f"{va.name}: RSD {eff} incompatible with shift dim {dim}")

    layout = va.layout
    n_global = layout.shape[d]
    data = va.data

    # -- data: fill the global edge halo slab on the sign side ---------------
    dst_idx: list[slice] = []
    src_idx: list[slice] = []
    for k in range(va.rank):
        if k == d:
            if sign > 0:
                dst_idx.append(slice(halo_lo + n_global,
                                     halo_lo + n_global + s))
                src_idx.append(slice(halo_lo, halo_lo + s))
            else:
                dst_idx.append(slice(halo_lo - s, halo_lo))
                src_idx.append(slice(halo_lo + n_global - s,
                                     halo_lo + n_global))
        else:
            rd = eff.dims[k]
            assert rd is not None
            sl = _ext_slice(va, k, rd.lo, rd.hi)
            dst_idx.append(sl)
            src_idx.append(sl)
    if boundary is not None:
        # every global-edge halo cell is past the domain end: boundary
        data[tuple(dst_idx)] = boundary
    else:
        # circular wrap from the opposite edge; the orthogonal extension
        # reads through already-filled halo planes — the corner pickup
        data[tuple(dst_idx)] = data[tuple(src_idx)]

    # -- cost: the per-PE executor's charge sequence, in rank order ----------
    itemsize = data.itemsize
    tag = comm_tag(va.name, dim, shift, widened=not eff.is_trivial)
    ext = tuple((eff.dims[k].lo, eff.dims[k].hi) if k != d else (0, 0)
                for k in range(va.rank))
    elems_of: dict[tuple[int, ...], int] = {}

    def ortho_elems(pe: int) -> int:
        local = layout.local_shape(pe)
        elems = elems_of.get(local)
        if elems is None:
            elems = s * prod(local[k] + ext[k][0] + ext[k][1]
                             for k in range(va.rank) if k != d)
            elems_of[local] = elems
        return elems

    if not layout.is_distributed(d):
        for pe in layout.grid.ranks():
            nelems = ortho_elems(pe)
            if nelems:  # degenerate empty slabs are elided, not charged
                machine.charge_copy(pe, nelems, itemsize)
        return
    neighbor = layout.neighbor
    owned_box = layout.owned_box
    transfers: list[tuple[int, int, int]] = []
    for pe in layout.grid.ranks():
        box_lo, box_hi = owned_box(pe)[d]
        at_edge = (box_hi == n_global) if sign > 0 else (box_lo == 1)
        if boundary is not None and at_edge:
            continue  # boundary fill, no message
        sender = neighbor(pe, d, sign)
        nelems = ortho_elems(sender)
        if nelems == 0:
            continue  # empty slab: the network rejects zero-size sends
        transfers.append((sender, pe, nelems))
    machine.network.record_batch(transfers, itemsize, tag=tag)


def vec_full_shift(machine: Machine, dst: VArray, src: VArray,
                   shift: int, dim: int,
                   boundary: float | None) -> None:
    """Full CSHIFT/EOSHIFT through a scratch communication buffer, with
    the same allocation, copy, and message charges as
    :mod:`repro.runtime.cshift`."""
    if dst.layout.shape != src.layout.shape:
        raise ExecutionError(
            f"shift shape mismatch: {dst.name} vs {src.name}")
    d = dim - 1
    s = abs(shift)
    halo = tuple((0, 0) if k != d else
                 ((0, s) if shift > 0 else (s, 0))
                 for k in range(src.rank))
    scratch = VArray.create(machine, f"__shiftbuf_{src.name}__",
                            src.layout, src.dtype, halo)
    try:
        scratch.interior[...] = src.interior
        for pe in src.layout.grid.ranks():
            nelems = prod(src.layout.local_shape(pe))
            if nelems:
                machine.charge_copy(pe, nelems, scratch.data.itemsize)
        vec_overlap_shift(machine, scratch, shift, dim, boundary=boundary)
        lo = scratch.halo[d][0]
        n = scratch.layout.shape[d]
        start, stop = lo + shift, lo + n + shift
        if start < 0 or stop > scratch.data.shape[d]:
            raise ExecutionError(
                f"{scratch.name}: buffer too small for shift {shift:+d} "
                f"along dim {d + 1}")
        idx = tuple(slice(start, stop) if k == d
                    else scratch.interior_slices()[k]
                    for k in range(scratch.rank))
        dst.interior[...] = scratch.data[idx]
        for pe in src.layout.grid.ranks():
            nelems = prod(src.layout.local_shape(pe))
            if nelems:
                machine.charge_copy(pe, nelems, scratch.data.itemsize)
    finally:
        scratch.free(machine)


class VectorizedExec(_Exec):
    """Executor running each plan op as global slab operations.

    Scalar evaluation, reductions (which keep the per-PE partial fold
    order bit-for-bit), op dispatch, tracing, and the cost-charging
    helpers are inherited; only array storage, data movement, and nest
    execution are overridden.
    """

    backend_label = "vectorized"
    nest_kind = "slab"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._checked_nests: set[int] = set()

    # -- array lifecycle -----------------------------------------------------
    def materialize(self, name: str,
                    initial: np.ndarray | None = None) -> None:
        decl = self.plan.arrays[name]
        layout = cached_layout(decl.shape, decl.distribution,
                               self.machine.topology)
        va = VArray.create(self.machine, name, layout, decl.dtype,
                           decl.halo)
        if initial is not None:
            va.scatter(np.asarray(initial))
        self.darrays[name] = va  # type: ignore[assignment]

    def release(self, name: str) -> None:
        va = self.darrays.pop(name, None)
        if va is None:
            raise ExecutionError(f"DEALLOCATE of unallocated {name}")
        va.free(self.machine)

    # -- data movement -------------------------------------------------------
    def do_overlap_shift(self, op: OverlapShiftOp) -> None:
        vec_overlap_shift(self.machine, self.darray(op.array),
                          op.shift, op.dim, rsd=op.rsd,
                          base_offsets=op.base_offsets,
                          boundary=op.boundary)

    def do_full_shift(self, op: FullShiftOp) -> None:
        vec_full_shift(self.machine, self.darray(op.dst),
                       self.darray(op.src), op.shift, op.dim,
                       op.boundary)

    # -- loop nests ----------------------------------------------------------
    def _local_slices(self, va, pe, box, offsets):
        # global frame: owned_lo is 1 for every dimension
        slices = []
        for d, ((lo, hi), off) in enumerate(zip(box, offsets)):
            halo_lo = va.halo[d][0]
            start = halo_lo + (lo - 1) + off
            stop = start + (hi - lo + 1)
            if start < 0 or stop > va.data.shape[d]:
                raise ExecutionError(
                    f"{va.name}: offset {off} along dim {d + 1} escapes "
                    f"the overlap area (halo={va.halo[d]})")
            slices.append(slice(start, stop))
        return tuple(slices)

    def _check_nest(self, op: LoopNestOp) -> None:
        """Whole-box execution requires that no statement read, at a
        nonzero offset, an array assigned earlier in the same nest — the
        per-PE executor would see stale overlap data there while the
        global array sees fresh values.  The compiler's fusion legality
        and the coverage verifier guarantee this for pipeline output;
        hand-built plans that violate it are rejected."""
        if id(op) in self._checked_nests:
            return
        assigned: set[str] = set()
        for stmt in op.statements:
            exprs = [stmt.rhs] + ([stmt.mask]
                                  if stmt.mask is not None else [])
            for expr in exprs:
                for node in expr.walk():
                    if isinstance(node, OffsetRef) and \
                            node.name in assigned and any(node.offsets):
                        raise ExecutionError(
                            f"vectorized backend: nest reads {node} "
                            f"after assigning {node.name} in the same "
                            f"nest; run with backend='perpe'")
            assigned.add(stmt.lhs)
        self._checked_nests.add(id(op))

    def run_nest(self, op: LoopNestOp) -> None:
        self._check_nest(op)
        space = tuple((self.bound(lo), self.bound(hi))
                      for lo, hi in op.space)
        if all(lo <= hi for lo, hi in space):
            self._exec_nest_box(op, list(space), 0)
        scaled: dict[int, object] = {}
        for pe in self.machine.topology.ranks():
            box = self._nest_box(op, space, pe)
            if box is None:
                continue
            points = prod(hi - lo + 1 for lo, hi in box)
            stats = scaled.get(points)
            if stats is None:
                stats = scaled_to_points(op.stats, points)
                scaled[points] = stats
            self.machine.charge_loop(pe, stats, self.overhead)

    def run_overlapped(self, op) -> None:
        report = self.machine.report
        before = list(report.pe_times)
        self.run_ops(op.comm_ops)
        comm_delta = [t1 - t0 for t0, t1 in zip(before, report.pe_times)]

        nest = op.nest
        self._check_nest(nest)
        space = tuple((self.bound(lo), self.bound(hi))
                      for lo, hi in nest.space)
        if all(lo <= hi for lo, hi in space):
            self._exec_nest_box(nest, list(space), 0)
        # charge interior/boundary splits per PE exactly as the per-PE
        # executor does, then credit the comm-hidden interior time
        shrink = self._nest_reach(nest)
        scaled: dict[int, object] = {}

        def stats_for(pts: int):
            st = scaled.get(pts)
            if st is None:
                st = scaled_to_points(nest.stats, pts)
                scaled[pts] = st
            return st

        for pe in self.machine.topology.ranks():
            box = self._nest_box(nest, space, pe)
            if box is None:
                continue
            interior, strips = self._split_interior(box, pe, nest, shrink)
            t_interior = 0.0
            for region in ([interior] if interior else []):
                pts = prod(hi - lo + 1 for lo, hi in region)
                stats = stats_for(pts)
                t_interior = self.machine.cost_model.loop_time(
                    stats, self.overhead)
                self.machine.charge_loop(pe, stats, self.overhead)
            for region in strips:
                pts = prod(hi - lo + 1 for lo, hi in region)
                if pts:
                    self.machine.charge_loop(pe, stats_for(pts),
                                             self.overhead)
            hidden = min(comm_delta[pe], t_interior)
            report.pe_times[pe] -= hidden


# registers under its public name; see repro.runtime.backends
from repro.runtime.backends import register_backend  # noqa: E402

register_backend("vectorized", VectorizedExec)
