"""Compiled execution backend: generated native loop nests over slabs.

``backend="compiled"`` extends the vectorized backend by replacing its
NumPy-slab evaluation of each compute nest with a generated fused,
tiled, unroll-and-jammed scalar loop nest (:mod:`repro.codegen`),
JIT-compiled with Numba when available.  Everything else — array
storage (one globally padded ndarray per distributed array), halo
exchange, per-PE rank-order cost charging, message logging, reductions,
overlapped-communication credit — is inherited unchanged, so every
observable (arrays, scalars, cost report, tagged message log, comm
profile) is bitwise-identical to the perpe/vectorized/parallel backends
by construction: this class overrides exactly one method, the per-box
nest evaluator.

Degradation ladder (per :mod:`repro.codegen.options`):

* Numba importable -> native kernels (the fast path; this is where the
  integer-factor speedup over the vectorized backend comes from).
* Numba missing under ``jit="auto"`` -> one warning, then pure slab
  execution (identical results, vectorized speed).
* ``jit="python"`` -> generated source runs un-jitted (slow; test mode).
* Individual nests the lowerer cannot prove bitwise-safe (mixed dtypes,
  ``EXP``/``LOG``/``**``, exotic expressions) fall back to slabs
  *per nest* while the rest of the plan stays native.

Kernels are keyed by ``(plan serialization sha256,
Machine.fingerprint(), tile/unroll factors)`` and cached in-process;
with a configured cache directory (CLI ``--cache-dir``) the generated
sources also persist on disk next to the plan cache.
"""

from __future__ import annotations

import warnings

from repro.codegen import cache as kcache
from repro.codegen import jit as _jit
from repro.codegen.jit import KernelEntry, KernelModule
from repro.codegen.lower import lower_plan, plan_nests
from repro.codegen.options import current_options
from repro.errors import ExecutionError, UsageError
from repro.plan import LoopNestOp
from repro.runtime.vectorized import VectorizedExec

#: process flag so the missing-numba degradation warns once, not per run
_warned_no_numba = False


def _warn_no_numba() -> None:
    global _warned_no_numba
    if _warned_no_numba:
        return
    _warned_no_numba = True
    warnings.warn(
        "backend='compiled': numba is not installed; falling back to "
        "vectorized slab execution (results and cost reports are "
        "identical, but no native speedup). Install numba, or set "
        "jit='python' to run generated kernels un-jitted.",
        RuntimeWarning, stacklevel=3)


def _obtain_module(plan, machine, opts, mode: str) -> KernelModule:
    key = kcache.kernel_key(plan, machine, opts)
    module = kcache.get_module(key, mode)
    if module is not None:
        return module
    disk = kcache.KernelDiskCache(opts.cache_dir) \
        if opts.cache_dir else None
    source = disk.get_source(key) if disk is not None else None
    if source is None:
        source = lower_plan(plan, opts).source
        if disk is not None:
            disk.put_source(key, source)
    module = _jit.materialize(source, mode)
    kcache.put_module(key, mode, module)
    return module


class CompiledExec(VectorizedExec):
    """Vectorized executor with generated kernels for compute nests."""

    backend_label = "compiled"

    def __init__(self, plan, machine, scalars, hpf_overhead,
                 tracer=None, workers=None) -> None:
        super().__init__(plan, machine, scalars, hpf_overhead,
                         tracer=tracer, workers=workers)
        opts = current_options()
        mode = opts.jit
        if mode == "auto":
            if _jit.numba_available():
                mode = "numba"
            else:
                _warn_no_numba()
                mode = "off"
        elif mode == "numba" and not _jit.numba_available():
            raise UsageError(
                "jit='numba' requested but numba is not importable; "
                "use jit='auto' (slab fallback) or jit='python'")
        self.jit_mode = mode
        self._kernels: dict[int, KernelEntry] = {}
        if mode == "off":
            return
        module = _obtain_module(plan, machine, opts, mode)
        nest_ops = plan_nests(plan)
        if len(module.entries) != len(nest_ops):
            raise ExecutionError(
                f"kernel module has {len(module.entries)} nests but the "
                f"plan has {len(nest_ops)}; kernel cache corrupted?")
        for op, entry in zip(nest_ops, module.entries):
            if entry.fn is not None:
                self._kernels[id(op)] = entry

    def kernel_for(self, op: LoopNestOp) -> KernelEntry | None:
        """The generated kernel executing ``op``, if one was lowered."""
        return self._kernels.get(id(op))

    def _scalar_value(self, name: str) -> float:
        # mirror of _Exec.scalar's ScalarRef resolution
        if name in self.scalars:
            return self.scalars[name]
        if name in self.plan.params:
            return float(self.plan.params[name])
        raise ExecutionError(f"unbound scalar {name}")

    def _exec_nest_box(self, op: LoopNestOp, box, pe: int) -> int:
        entry = self._kernels.get(id(op))
        if entry is None:
            # slab fallback: the inherited evaluator times itself with
            # kernel="slab" under this backend's label
            return super()._exec_nest_box(op, box, pe)
        if self._nest_wall is not None:
            from time import perf_counter
            t0 = perf_counter()
        args: list = []
        for name in entry.arrays:
            va = self.darray(name)
            args.append(va.data)
            for d in range(va.rank):
                args.append(va.halo[d][0] - 1)
        for sname in entry.scalars:
            args.append(self._scalar_value(sname))
        points = 1
        for lo, hi in box:
            args.append(int(lo))
            args.append(int(hi))
            points *= hi - lo + 1
        entry.fn(*args)
        if self._nest_wall is not None:
            self._nest_wall.observe(perf_counter() - t0,
                                    backend=self.backend_label,
                                    kernel="native")
        return points


# registers under its public name; see repro.runtime.backends
from repro.runtime.backends import register_backend  # noqa: E402

register_backend("compiled", CompiledExec)
