"""Plan executor: runs compiled programs on the simulated machine.

The executor performs real data movement (NumPy) so results are exact,
and charges every operation to the machine's cost model so the modelled
execution time reflects the paper's cost structure.  SPMD loop-bounds
reduction happens here: each PE executes only the intersection of a
nest's global iteration box with its owned block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.plan import (
    AllocOp, CondOp, FreeOp, FullShiftOp, LoopNestOp, OverlappedOp,
    OverlapShiftOp, Plan, PlanOp, ScalarAssignOp, SeqLoopOp, SwapOp,
    WhileOp, op_label,
)
from repro.ir.nodes import (
    BinOp, Compare, Const, Expr, Intrinsic, OffsetRef, Reduction,
    ScalarRef, UnaryOp,
)
from repro.runtime.reference import apply_intrinsic
from repro.machine.cost_model import CostReport
from repro.machine.machine import Machine
from repro.passes.memopt import scaled_to_points
from repro.runtime.cshift import full_cshift, full_eoshift
from repro.runtime.darray import DArray
from repro.runtime.distribution import cached_layout
from repro.runtime.overlap import overlap_shift

if TYPE_CHECKING:
    from repro.obs.profile import CommProfile


@dataclass
class ExecutionResult:
    """Final array values plus the accumulated cost report."""

    arrays: dict[str, np.ndarray]
    scalars: dict[str, float]
    report: CostReport
    peak_memory_per_pe: int
    modelled_time: float
    profile: "CommProfile | None" = None

    def summary(self) -> dict[str, float]:
        out = self.report.summary()
        out["peak_memory_per_pe"] = float(self.peak_memory_per_pe)
        return out


#: tracer/profiler span naming now lives with the IR (op_label); kept
#: as a module alias for callers of the historic private name
_op_label = op_label


class _Exec:
    #: labels the wall-clock nest histogram carries; overridden by
    #: every registered backend class
    backend_label = "perpe"
    nest_kind = "interp"

    def __init__(self, plan: Plan, machine: Machine,
                 scalars: Mapping[str, float] | None,
                 hpf_overhead: bool, tracer=None,
                 workers: int | None = None) -> None:
        from repro.obs import metrics as _metrics
        from repro.obs.tracer import coalesce
        self.tracer = coalesce(tracer)
        #: wall-clock per-nest histogram handle, or ``None`` when
        #: metrics are off — the hot path checks one attribute
        registry = _metrics.get_registry()
        self._nest_wall = registry.histogram(
            "repro_nest_wall_seconds",
            help="Measured wall-clock seconds per compute-nest "
                 "evaluation, by backend.",
            deterministic=False) if registry.enabled else None
        #: Requested worker-process count; only the ``parallel`` backend
        #: acts on it, but it is part of the shared constructor contract
        #: so ``execute`` can pass it to any registered backend.
        self.workers = workers
        #: Optional :class:`repro.obs.profile.ProfileCollector`.  Lives
        #: on the shared dispatch loop so both backends attribute ops
        #: identically — part of the backend-equivalence contract.
        self.profiler = None
        self.plan = plan
        self.machine = machine
        self.darrays: dict[str, DArray] = {}
        self.scalars: dict[str, float] = {n: 0.0 for n in plan.scalar_names}
        for k, v in (scalars or {}).items():
            self.scalars[k.upper()] = float(v)
        self.overhead = (machine.cost_model.hpf_overhead_factor
                         if hpf_overhead else 1.0)

    # -- array lifecycle -----------------------------------------------------
    def materialize(self, name: str,
                    initial: np.ndarray | None = None) -> None:
        decl = self.plan.arrays[name]
        layout = cached_layout(decl.shape, decl.distribution,
                               self.machine.topology)
        da = DArray.create(self.machine, name, layout, decl.dtype,
                           decl.halo)
        if initial is not None:
            da.scatter(np.asarray(initial))
        self.darrays[name] = da

    def release(self, name: str) -> None:
        da = self.darrays.pop(name, None)
        if da is None:
            raise ExecutionError(f"DEALLOCATE of unallocated {name}")
        da.free(self.machine)

    def close(self) -> None:
        """Release executor-held resources (worker pools, shared memory).

        No-op for in-process backends; ``execute`` calls it in a
        ``finally`` so multi-process backends always shut down their
        workers, error or not.
        """

    def darray(self, name: str) -> DArray:
        try:
            return self.darrays[name]
        except KeyError:
            raise ExecutionError(
                f"array {name} used before allocation") from None

    # -- ownership ----------------------------------------------------------
    def compute_ranks(self):
        """The PEs whose data this executor computes, in rank order.

        Serial backends compute every PE; parallel workers override this
        to walk only the PEs they own (owner-computes execution).  Cost
        charging is gated separately by :meth:`Machine.set_ownership`,
        so walks that only *charge* (never touch data) stay over all
        ranks and rely on the machine to skip non-owned PEs.
        """
        return self.machine.topology.ranks()

    def communicate(self, value: float, what: str) -> float:
        """Agree on a control-flow scalar across the executing parties.

        Identity for single-process backends.  Parallel workers override
        this with a broadcast-verify over the collective channel: every
        scalar assignment, IF condition, and DO WHILE condition passes
        through here, so the workers' control flow can never silently
        diverge — the value each worker computed is compared bitwise and
        a mismatch aborts the run naming the divergent worker.
        """
        return value

    def _combine_partials(self, partials: dict[int, float], fold,
                          what: str) -> float:
        """Fold per-PE reduction partials into the global result.

        ``partials`` maps every computed PE rank to its local partial.
        Serial backends hold all ranks and fold in rank order; parallel
        workers override this to exchange their owned partials through
        the collective channel, folding in the same rank order so the
        result is bitwise identical.
        """
        total: float | None = None
        for pe in sorted(partials):
            p = partials[pe]
            total = p if total is None else float(fold(total, p))
        assert total is not None
        return total

    # -- scalar evaluation --------------------------------------------------
    def scalar(self, expr: Expr) -> float:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, ScalarRef):
            if expr.name in self.scalars:
                return self.scalars[expr.name]
            if expr.name in self.plan.params:
                return float(self.plan.params[expr.name])
            raise ExecutionError(f"unbound scalar {expr.name}")
        if isinstance(expr, BinOp):
            lv, rv = self.scalar(expr.left), self.scalar(expr.right)
            if expr.op == "+":
                return lv + rv
            if expr.op == "-":
                return lv - rv
            if expr.op == "*":
                return lv * rv
            if expr.op == "/":
                return lv / rv
            return lv ** rv
        if isinstance(expr, Intrinsic):
            return float(apply_intrinsic(
                expr.name, [self.scalar(a) for a in expr.args]))
        if isinstance(expr, UnaryOp):
            return -self.scalar(expr.operand)
        if isinstance(expr, Compare):
            lv, rv = self.scalar(expr.left), self.scalar(expr.right)
            return float({"<": lv < rv, ">": lv > rv, "<=": lv <= rv,
                          ">=": lv >= rv, "==": lv == rv,
                          "/=": lv != rv}[expr.op])
        if isinstance(expr, Reduction):
            return self._reduce(expr)
        raise ExecutionError(
            f"cannot evaluate scalar {type(expr).__name__}")

    def _reduce(self, expr: Reduction) -> float:
        """Distributed reduction: each PE reduces its owned subgrid of
        the operand, then the partials combine via a logarithmic
        exchange and the result replicates (the HPF lowering of
        SUM/MAXVAL/MINVAL).  Charges the per-PE reduction loop and the
        butterfly allreduce messages (tagged ``allreduce:<op>`` in the
        message log); parallel workers compute only their owned PEs'
        partials and combine them through the collective channel."""
        from repro.machine.network import allreduce_tag
        refs = [n for n in expr.arg.walk() if isinstance(n, OffsetRef)]
        if not refs:
            raise ExecutionError(
                f"reduction {expr} references no arrays")
        first = self.darray(refs[0].name)
        rank_of = lambda name: self.darray(name).rank
        from repro.passes.memopt import analyze_reduction, \
            scaled_to_points
        per_point = analyze_reduction(expr.arg, rank_of)
        combine = {"SUM": np.sum, "MAXVAL": np.max,
                   "MINVAL": np.min}[expr.op]
        fold = {"SUM": np.add, "MAXVAL": np.maximum,
                "MINVAL": np.minimum}[expr.op]
        computed = set(self.compute_ranks())
        partials: dict[int, float] = {}
        npes = self.machine.npes
        network = self.machine.network
        tag = allreduce_tag(expr.op)
        # one walk over ALL ranks: data movement happens only on the
        # computed (owned) PEs, but the charge calls run for every PE —
        # the machine/network gate them internally, and the network's
        # global message sequence must tick for non-owned PEs too
        for pe in self.machine.topology.ranks():
            box = [(lo, hi) for lo, hi in first.owned_box(pe)]
            if pe in computed:
                local = self._eval(expr.arg, pe, box)
                partials[pe] = float(combine(local))
            points = 1
            for lo, hi in box:
                points *= hi - lo + 1
            self.machine.charge_loop(
                pe, scaled_to_points(per_point, points), self.overhead)
            network.allreduce(pe, npes, 8, tag)
        return self._combine_partials(partials, fold, str(expr))

    def bound(self, e) -> int:
        binding = dict(self.plan.params)
        for k, v in self.scalars.items():
            if float(v).is_integer():
                binding[k] = int(v)
        return e.evaluate(binding)

    # -- op dispatch -----------------------------------------------------------
    def run_ops(self, ops: list[PlanOp]) -> None:
        tracing = self.tracer.enabled
        profiler = self.profiler
        if not tracing and profiler is None:
            for op in ops:
                self._dispatch(op)
            return
        report = self.machine.report
        for op in ops:
            name, attrs = op_label(op)
            frame = profiler.begin(name, attrs) \
                if profiler is not None else None
            try:
                if not tracing:
                    self._dispatch(op)
                    continue
                with self.tracer.span(name, kind="op", **attrs) as span:
                    before = report.snapshot()
                    self._dispatch(op)
                    for key, value in report.delta(before).items():
                        if value:
                            span.count(key, value)
                    if isinstance(op, OverlapShiftOp):
                        decl = self.plan.arrays.get(op.array)
                        itemsize = int(decl.dtype.itemsize) if decl else 4
                        cells = (span.counters.get("bytes", 0.0) / itemsize
                                 + span.counters.get("copy_elements", 0.0))
                        if cells:
                            span.gauge("overlap_cells", cells)
            finally:
                if frame is not None:
                    profiler.end(frame)

    def do_overlap_shift(self, op: OverlapShiftOp) -> None:
        overlap_shift(self.machine, self.darray(op.array),
                      op.shift, op.dim, rsd=op.rsd,
                      base_offsets=op.base_offsets,
                      boundary=op.boundary)

    def do_full_shift(self, op: FullShiftOp) -> None:
        dst, src = self.darray(op.dst), self.darray(op.src)
        if op.boundary is None:
            full_cshift(self.machine, dst, src, op.shift, op.dim)
        else:
            full_eoshift(self.machine, dst, src, op.shift, op.dim,
                         op.boundary)

    def do_swap(self, op: SwapOp) -> None:
        """Exchange the name→buffer bindings of two arrays.

        A pointer swap: no data moves, nothing is charged to the cost
        model, and the buffers keep their birth identity (memory
        accounting, shared-memory segment names, and message tags stay
        keyed by the name each buffer was created under — identically
        in every backend, which is what keeps the equivalence contract
        bitwise).
        """
        a = self.darray(op.a)
        b = self.darray(op.b)
        self.darrays[op.a], self.darrays[op.b] = b, a

    def _dispatch(self, op: PlanOp) -> None:
        if isinstance(op, LoopNestOp):
            self.run_nest(op)
        elif isinstance(op, OverlapShiftOp):
            self.do_overlap_shift(op)
        elif isinstance(op, FullShiftOp):
            self.do_full_shift(op)
        elif isinstance(op, SwapOp):
            self.do_swap(op)
        elif isinstance(op, AllocOp):
            for name in op.names:
                self.materialize(name)
        elif isinstance(op, FreeOp):
            for name in op.names:
                self.release(name)
        elif isinstance(op, ScalarAssignOp):
            self.scalars[op.name] = self.communicate(
                self.scalar(op.rhs), f"scalar {op.name}")
        elif isinstance(op, SeqLoopOp):
            lo, hi = self.bound(op.lo), self.bound(op.hi)
            for k in range(lo, hi + 1):
                self.scalars[op.var] = float(k)
                self.run_ops(op.body)
        elif isinstance(op, WhileOp):
            guard = 0
            while self.communicate(self.scalar(op.cond),
                                   "DO WHILE condition"):
                self.run_ops(op.body)
                guard += 1
                if guard > 1_000_000:
                    raise ExecutionError(
                        "DO WHILE exceeded 1e6 iterations; "
                        "non-converging loop?")
        elif isinstance(op, CondOp):
            taken = self.communicate(self.scalar(op.cond),
                                     "IF condition")
            branch = op.then_ops if taken else op.else_ops
            self.run_ops(branch)
        elif isinstance(op, OverlappedOp):
            self.run_overlapped(op)
        else:
            raise ExecutionError(
                f"unknown plan op {type(op).__name__}")

    # -- loop nests ----------------------------------------------------------
    def run_nest(self, op: LoopNestOp) -> None:
        space = tuple((self.bound(lo), self.bound(hi))
                      for lo, hi in op.space)
        for pe in self.compute_ranks():
            points = self._run_nest_on_pe(op, space, pe)
            if points:
                self.machine.charge_loop(
                    pe, scaled_to_points(op.stats, points), self.overhead)

    def run_overlapped(self, op) -> None:
        """Communication overlapped with interior computation: execute
        comm then the nest split into interior/boundary, and credit each
        PE with min(comm, interior) — the time hidden behind the
        messages."""
        report = self.machine.report
        before = list(report.pe_times)
        self.run_ops(op.comm_ops)
        comm_delta = [t1 - t0 for t0, t1 in zip(before, report.pe_times)]

        nest = op.nest
        space = tuple((self.bound(lo), self.bound(hi))
                      for lo, hi in nest.space)
        shrink = self._nest_reach(nest)
        for pe in self.compute_ranks():
            box = self._nest_box(nest, space, pe)
            if box is None:
                continue
            interior, strips = self._split_interior(box, pe, nest, shrink)
            t_interior = 0.0
            for region in ([interior] if interior else []):
                pts = self._exec_nest_box(nest, region, pe)
                stats = scaled_to_points(nest.stats, pts)
                t_interior = self.machine.cost_model.loop_time(
                    stats, self.overhead)
                self.machine.charge_loop(pe, stats, self.overhead)
            for region in strips:
                pts = self._exec_nest_box(nest, region, pe)
                if pts:
                    self.machine.charge_loop(
                        pe, scaled_to_points(nest.stats, pts),
                        self.overhead)
            hidden = min(comm_delta[pe], t_interior)
            report.pe_times[pe] -= hidden

    def _nest_reach(self, nest: LoopNestOp) -> list[tuple[int, int]]:
        """Per-dimension (lo, hi) stencil reach of a nest's references."""
        rank = len(nest.space)
        reach = [[0, 0] for _ in range(rank)]
        for stmt in nest.statements:
            exprs = [stmt.rhs] + ([stmt.mask]
                                  if stmt.mask is not None else [])
            for expr in exprs:
                for node in expr.walk():
                    if isinstance(node, OffsetRef):
                        for d, o in enumerate(node.offsets):
                            if o < 0:
                                reach[d][0] = max(reach[d][0], -o)
                            elif o > 0:
                                reach[d][1] = max(reach[d][1], o)
        return [tuple(r) for r in reach]

    def _nest_box(self, nest: LoopNestOp, space, pe):
        first = self.darray(nest.statements[0].lhs)
        owned = first.owned_box(pe)
        box = []
        for (slo, shi), (olo, ohi) in zip(space, owned):
            lo, hi = max(slo, olo), min(shi, ohi)
            if lo > hi:
                return None
            box.append((lo, hi))
        return box

    def _split_interior(self, box, pe, nest, shrink):
        """Split a compute box into the interior (no overlap-cell reads)
        and disjoint boundary strips."""
        first = self.darray(nest.statements[0].lhs)
        owned = first.owned_box(pe)
        interior = []
        for (lo, hi), (olo, ohi), (rlo, rhi) in zip(box, owned, shrink):
            ilo = max(lo, olo + rlo)
            ihi = min(hi, ohi - rhi)
            if ilo > ihi:
                return None, [box]
            interior.append((ilo, ihi))
        strips = []
        current = list(box)
        for d in range(len(box)):
            lo, hi = current[d]
            ilo, ihi = interior[d]
            if ilo > lo:
                strip = list(current)
                strip[d] = (lo, ilo - 1)
                strips.append(strip)
            if ihi < hi:
                strip = list(current)
                strip[d] = (ihi + 1, hi)
                strips.append(strip)
            current[d] = interior[d]
        return interior, strips

    def _run_nest_on_pe(self, op: LoopNestOp,
                        space: tuple[tuple[int, int], ...], pe: int) -> int:
        box = self._nest_box(op, space, pe)
        if box is None:
            return 0
        return self._exec_nest_box(op, box, pe)

    def _exec_nest_box(self, op: LoopNestOp,
                       box: list[tuple[int, int]], pe: int) -> int:
        if self._nest_wall is not None:
            from time import perf_counter
            t0 = perf_counter()
        points = 1
        for lo, hi in box:
            points *= hi - lo + 1
        for stmt in op.statements:
            dst = self.darray(stmt.lhs)
            dst_slices = self._local_slices(dst, pe, box,
                                            (0,) * len(box))
            value = self._eval(stmt.rhs, pe, box)
            if stmt.mask is None:
                dst.padded(pe)[dst_slices] = value
            else:
                mask = self._eval(stmt.mask, pe, box)
                target = dst.padded(pe)[dst_slices]
                dst.padded(pe)[dst_slices] = np.where(
                    np.asarray(mask, dtype=bool), value, target)
        if self._nest_wall is not None:
            from time import perf_counter
            self._nest_wall.observe(perf_counter() - t0,
                                    backend=self.backend_label,
                                    kernel=self.nest_kind)
        return points

    def _local_slices(self, da: DArray, pe: int,
                      box: list[tuple[int, int]] | tuple,
                      offsets: tuple[int, ...]) -> tuple[slice, ...]:
        owned = da.owned_box(pe)
        slices = []
        for d, ((lo, hi), (olo, _), off) in enumerate(
                zip(box, owned, offsets)):
            halo_lo = da.halo[d][0]
            start = halo_lo + (lo - olo) + off
            stop = start + (hi - lo + 1)
            if start < 0 or stop > da.padded(pe).shape[d]:
                raise ExecutionError(
                    f"{da.name}: offset {off} along dim {d + 1} escapes "
                    f"the overlap area (halo={da.halo[d]})")
            slices.append(slice(start, stop))
        return tuple(slices)

    def _eval(self, expr: Expr, pe: int,
              box: list[tuple[int, int]]) -> np.ndarray | float:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, ScalarRef):
            return self.scalar(expr)
        if isinstance(expr, OffsetRef):
            da = self.darray(expr.name)
            return da.padded(pe)[
                self._local_slices(da, pe, box, expr.offsets)]
        if isinstance(expr, BinOp):
            lv = self._eval(expr.left, pe, box)
            rv = self._eval(expr.right, pe, box)
            if expr.op == "+":
                return lv + rv
            if expr.op == "-":
                return lv - rv
            if expr.op == "*":
                return lv * rv
            if expr.op == "**":
                return lv ** rv
            return lv / rv
        if isinstance(expr, UnaryOp):
            return -self._eval(expr.operand, pe, box)
        if isinstance(expr, Compare):
            lv = self._eval(expr.left, pe, box)
            rv = self._eval(expr.right, pe, box)
            return {"<": lv < rv, ">": lv > rv, "<=": lv <= rv,
                    ">=": lv >= rv, "==": lv == rv,
                    "/=": lv != rv}[expr.op]
        if isinstance(expr, Intrinsic):
            args = [self._eval(a, pe, box) for a in expr.args]
            return apply_intrinsic(expr.name, args)
        raise ExecutionError(
            f"cannot evaluate {type(expr).__name__} in a nest")


def executor_class(backend: str) -> type[_Exec]:
    """Resolve a backend name to its executor class (registry lookup).

    Compatibility alias for :func:`repro.runtime.backends.get_backend`.
    """
    from repro.runtime.backends import get_backend
    return get_backend(backend)


def execute(plan: Plan, machine: Machine,
            inputs: Mapping[str, np.ndarray] | None = None,
            scalars: Mapping[str, float] | None = None,
            iterations: int = 1,
            hpf_overhead: bool = False,
            reset_machine: bool = True,
            tracer=None,
            backend: str = "perpe",
            profile: bool = False,
            workers: int | None = None) -> ExecutionResult:
    """Run a compiled plan.

    ``inputs`` seeds entry arrays (by name, case-insensitive); arrays not
    provided start zeroed.  ``iterations`` repeats the whole op sequence,
    modelling an iterative solver driving the kernel.  ``hpf_overhead``
    applies the cost model's interpretive-node-code factor to loop time
    (the xlhpf-like baseline).  ``tracer`` (a :class:`repro.obs.Tracer`)
    records an ``execute`` span with one child span per executed plan op,
    each charged with the cost-model deltas it caused.  ``backend``
    selects the executor: ``perpe`` loops over PEs in Python per op
    (reference semantics), ``vectorized`` executes each op as whole-array
    NumPy slab operations while charging the cost model identically.
    ``profile`` attaches a :class:`repro.obs.profile.ProfileCollector`
    (requires ``keep_message_log=True`` on the machine) and returns the
    condensed :class:`~repro.obs.profile.CommProfile` on the result.
    ``workers`` caps the worker-process count of the ``parallel``
    backend (default: ``os.cpu_count()``); other backends ignore it.
    """
    from repro.obs import metrics as _metrics
    from repro.obs.tracer import coalesce
    from time import perf_counter
    tracer = coalesce(tracer)
    registry = _metrics.get_registry()
    t_wall = perf_counter() if registry.enabled else 0.0
    if reset_machine:
        machine.reset()
    if plan.processors is not None and \
            tuple(machine.grid) != tuple(plan.processors):
        raise ExecutionError(
            f"program declares !HPF$ PROCESSORS {plan.processors} but "
            f"the machine grid is {tuple(machine.grid)}")
    ex = executor_class(backend)(plan, machine, scalars, hpf_overhead,
                                 tracer=tracer, workers=workers)
    collector = None
    if profile:
        from repro.obs.profile import CommProfile, ProfileCollector
        collector = ProfileCollector(machine)
        ex.profiler = collector
    try:
        with tracer.span("execute", kind="execute",
                         grid="x".join(map(str, machine.grid)),
                         iterations=iterations, backend=backend) as span:
            inputs_up = {k.upper(): v for k, v in (inputs or {}).items()}
            with tracer.span("materialize-inputs", kind="runtime"):
                for name in plan.entry_arrays:
                    ex.materialize(name, inputs_up.get(name))
            for i in range(iterations):
                if iterations > 1 and tracer.enabled:
                    with tracer.span("iteration", kind="runtime", i=i):
                        ex.run_ops(plan.ops)
                else:
                    ex.run_ops(plan.ops)
            with tracer.span("gather-results", kind="runtime"):
                arrays = {name: da.gather()
                          for name, da in ex.darrays.items()}
                for name in list(ex.darrays):
                    ex.release(name)
            if tracer.enabled:
                # prefixed "total_" so they don't double-count against
                # the per-op deltas when counters are summed across the
                # tree
                r = machine.report
                span.gauge("total_messages", r.messages)
                span.gauge("total_bytes", r.message_bytes)
                span.gauge("total_copies", r.copies)
                span.gauge("total_copy_elements", r.copy_elements)
                span.gauge("total_compute_points", r.loop_points)
                span.gauge("modelled_time_s", r.modelled_time)
                span.gauge("peak_memory_per_pe",
                           machine.memory.peak_per_pe)
                for pe, t in enumerate(r.pe_times):
                    span.gauge(f"pe{pe}_time_s", t)
    finally:
        ex.close()
    if registry.enabled:
        # Wall-clock series: measured, tagged non-deterministic,
        # excluded from backend equivalence.
        registry.histogram(
            "repro_exec_wall_seconds",
            help="End-to-end wall-clock seconds of execute() "
                 "(materialize + iterations + gather + shutdown), "
                 "by backend.",
            deterministic=False,
        ).observe(perf_counter() - t_wall, backend=backend)
        registry.counter(
            "repro_exec_runs_total",
            help="Completed execute() calls by backend.",
        ).inc(backend=backend)
        # Modelled/count series: pure functions of the program, carried
        # unlabeled so all four backends must produce bitwise-identical
        # values (enforced by testing.backend_equivalence_check).
        r = machine.report
        events = registry.counter(
            "repro_exec_events_total",
            help="Modelled execution events (backend-invariant).",
            invariant=True)
        events.inc(r.messages, event="messages")
        events.inc(r.message_bytes, event="message_bytes")
        events.inc(r.copies, event="copies")
        events.inc(r.copy_elements, event="copy_elements")
        events.inc(r.loop_points, event="loop_points")
        registry.counter(
            "repro_exec_modelled_seconds_total",
            help="Modelled execution seconds (backend-invariant).",
            invariant=True).inc(r.modelled_time)
        registry.gauge(
            "repro_exec_peak_memory_per_pe_bytes",
            help="Peak per-PE memory of the last run "
                 "(backend-invariant).",
            invariant=True).set(machine.memory.peak_per_pe)
    comm_profile = None
    if collector is not None:
        comm_profile = CommProfile.from_run(machine, collector,
                                            backend=backend)
    return ExecutionResult(
        arrays=arrays,
        scalars=dict(ex.scalars),
        report=machine.report,
        peak_memory_per_pe=machine.memory.peak_per_pe,
        modelled_time=machine.report.modelled_time,
        profile=comm_profile,
    )


# the reference backend registers itself; see repro.runtime.backends
from repro.runtime.backends import register_backend  # noqa: E402

register_backend("perpe", _Exec)
