"""HPF BLOCK distribution index arithmetic.

Follows the HPF standard: ``BLOCK`` over extent ``n`` and ``p`` processors
uses block size ``ceil(n/p)``; processor ``j`` owns global (1-based)
indices ``j*b+1 .. min((j+1)*b, n)``.  Layouts with empty blocks are
rejected (they would break torus adjacency for circular shifts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property, lru_cache

from repro.errors import MachineError
from repro.ir.types import DistKind, Distribution
from repro.machine.topology import ProcessorGrid


@dataclass(frozen=True)
class BlockDim:
    """One BLOCK-distributed dimension."""

    extent: int
    nprocs: int

    def __post_init__(self) -> None:
        if self.extent < 1 or self.nprocs < 1:
            raise MachineError(
                f"bad BLOCK dimension: extent={self.extent}, "
                f"nprocs={self.nprocs}")
        if (self.nprocs - 1) * self.block >= self.extent:
            raise MachineError(
                f"BLOCK({self.extent}) over {self.nprocs} processors "
                f"leaves processor {self.nprocs - 1} empty")

    @property
    def block(self) -> int:
        return math.ceil(self.extent / self.nprocs)

    def owner_range(self, j: int) -> tuple[int, int]:
        """Global 1-based inclusive index range owned by processor ``j``."""
        lo = j * self.block + 1
        hi = min((j + 1) * self.block, self.extent)
        return lo, hi

    def local_extent(self, j: int) -> int:
        lo, hi = self.owner_range(j)
        return hi - lo + 1

    def owner_of(self, g: int) -> int:
        """Owning processor of global index ``g`` (1-based)."""
        if not (1 <= g <= self.extent):
            raise MachineError(f"global index {g} out of 1..{self.extent}")
        return (g - 1) // self.block

    def to_local(self, g: int, j: int) -> int:
        """0-based local index of global ``g`` on processor ``j``."""
        lo, hi = self.owner_range(j)
        if not (lo <= g <= hi):
            raise MachineError(f"index {g} not owned by processor {j}")
        return g - lo

    @property
    def min_local_extent(self) -> int:
        return min(self.local_extent(j) for j in range(self.nprocs))


@dataclass(frozen=True)
class Layout:
    """Mapping of one array onto the processor grid.

    Array dimensions distributed BLOCK are assigned to grid dimensions in
    order; the number of BLOCK dimensions must equal the grid rank (the
    paper's kernels are 2-D (BLOCK,BLOCK) on a 2-D grid).  Collapsed
    (``*``) dimensions are whole on every PE.
    """

    shape: tuple[int, ...]
    dist: Distribution
    grid: ProcessorGrid

    def __post_init__(self) -> None:
        if len(self.dist.dims) != len(self.shape):
            raise MachineError(
                f"distribution rank {len(self.dist.dims)} vs array rank "
                f"{len(self.shape)}")
        ndist = len(self.dist.distributed_dims)
        if ndist != self.grid.ndim:
            raise MachineError(
                f"array has {ndist} BLOCK dimensions but the machine grid "
                f"is {self.grid} — shape the grid to match (e.g. grid=(4,) "
                f"for (BLOCK,*))")

    # -- dimension mapping ---------------------------------------------------
    @cached_property
    def grid_dim_of(self) -> dict[int, int]:
        """array dim (0-based) -> grid dim, for BLOCK dims only."""
        return {ad: gd for gd, ad in enumerate(self.dist.distributed_dims)}

    @cached_property
    def block_dims(self) -> dict[int, BlockDim]:
        return {
            ad: BlockDim(self.shape[ad], self.grid.shape[gd])
            for ad, gd in self.grid_dim_of.items()
        }

    def is_distributed(self, array_dim: int) -> bool:
        return array_dim in self.grid_dim_of

    # -- per-PE geometry -----------------------------------------------------
    @cached_property
    def _owned_boxes(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        boxes = []
        for rank in self.grid.ranks():
            coords = self.grid.coords(rank)
            box = []
            for ad in range(len(self.shape)):
                if ad in self.grid_dim_of:
                    j = coords[self.grid_dim_of[ad]]
                    box.append(self.block_dims[ad].owner_range(j))
                else:
                    box.append((1, self.shape[ad]))
            boxes.append(tuple(box))
        return tuple(boxes)

    @cached_property
    def _local_shapes(self) -> tuple[tuple[int, ...], ...]:
        return tuple(tuple(hi - lo + 1 for lo, hi in box)
                     for box in self._owned_boxes)

    def owned_box(self, rank: int) -> tuple[tuple[int, int], ...]:
        """Global 1-based inclusive (lo, hi) per array dim owned by ``rank``."""
        return self._owned_boxes[rank]

    def local_shape(self, rank: int) -> tuple[int, ...]:
        return self._local_shapes[rank]

    def owner_rank(self, gidx: tuple[int, ...]) -> int:
        """Rank owning a global (1-based) element."""
        coords = [0] * self.grid.ndim
        for ad, gd in self.grid_dim_of.items():
            coords[gd] = self.block_dims[ad].owner_of(gidx[ad])
        return self.grid.rank(tuple(coords))

    def max_shift(self, array_dim: int) -> int:
        """Largest |shift| supported along ``array_dim`` such that a
        shifted slab comes wholly from the adjacent block."""
        if not self.is_distributed(array_dim):
            return self.shape[array_dim]
        return self.block_dims[array_dim].min_local_extent

    @cached_property
    def _neighbor_tables(self) -> dict[tuple[int, int], tuple[int, ...]]:
        return {}

    def neighbor(self, rank: int, array_dim: int, direction: int) -> int:
        """Torus neighbor of ``rank`` along an array dimension."""
        key = (array_dim, direction)
        table = self._neighbor_tables.get(key)
        if table is None:
            gd = self.grid_dim_of[array_dim]
            table = tuple(self.grid.neighbor(r, gd, direction)
                          for r in self.grid.ranks())
            self._neighbor_tables[key] = table
        return table[rank]


@lru_cache(maxsize=1024)
def cached_layout(shape: tuple[int, ...], dist: Distribution,
                  grid: ProcessorGrid) -> Layout:
    """Canonical Layout instance per (shape, distribution, grid).

    Layouts are immutable and their per-PE geometry is memoized on the
    instance, so executors that materialise the same arrays repeatedly
    should share one instance rather than recompute the geometry."""
    return Layout(shape, dist, grid)
