"""Distributed arrays with overlap (ghost) areas.

Each PE stores a padded local block: the owned subgrid plus ``halo[d] =
(lo, hi)`` extra planes per dimension.  Overlap areas receive data moved
by :func:`repro.runtime.overlap.overlap_shift`; offset references
(``U<+1,-1>``) read straight into them, which is how the offset-array
optimization eliminates intraprocessor copying (paper section 3.1,
exploiting the overlap areas of Gerndt [11]).

Convention: Fortran global index ``g`` (1-based) along dim ``d`` maps to
NumPy axis ``d`` index ``halo[d][0] + (g - owned_lo)`` in the padded
local array.
"""

from __future__ import annotations

from dataclasses import dataclass

from math import prod

import numpy as np

from repro.errors import ExecutionError, MachineError
from repro.machine.machine import Machine
from repro.runtime.distribution import Layout

Halo = tuple[tuple[int, int], ...]


@dataclass
class DArray:
    """A BLOCK-distributed array materialised on a machine."""

    name: str
    layout: Layout
    dtype: np.dtype
    halo: Halo
    locals: list[np.ndarray]

    # -- construction ------------------------------------------------------
    @staticmethod
    def create(machine: Machine, name: str, layout: Layout,
               dtype: np.dtype, halo: Halo | None = None) -> "DArray":
        """Allocate on every PE, charging the memory manager (so a too-big
        allocation raises :class:`SimulatedOutOfMemoryError` exactly as a
        real node would fail)."""
        rank = len(layout.shape)
        halo = halo or tuple((0, 0) for _ in range(rank))
        if len(halo) != rank:
            raise MachineError(f"halo rank mismatch for {name}")
        for d, (lo, hi) in enumerate(halo):
            limit = layout.max_shift(d)
            if max(lo, hi) > limit:
                raise MachineError(
                    f"{name}: halo {max(lo, hi)} along dim {d + 1} exceeds "
                    f"the minimum local extent {limit}; use a smaller shift "
                    f"or fewer processors")
        dtype = np.dtype(dtype)
        shapes = []
        for pe in machine.topology.ranks():
            local = layout.local_shape(pe)
            shapes.append(tuple(n + lo + hi
                                for n, (lo, hi) in zip(local, halo)))
        nbytes = [prod(s) * dtype.itemsize for s in shapes]
        machine.memory.allocate_all(name, nbytes)
        locals_ = [np.zeros(s, dtype=dtype) for s in shapes]
        return DArray(name, layout, dtype, halo, locals_)

    def free(self, machine: Machine) -> None:
        machine.memory.free_all(self.name)
        self.locals = []

    # -- views ---------------------------------------------------------------
    def padded(self, pe: int) -> np.ndarray:
        try:
            return self.locals[pe]
        except IndexError:
            raise ExecutionError(
                f"{self.name}: no local block for PE {pe}") from None

    def interior(self, pe: int) -> np.ndarray:
        """View of the owned subgrid (no overlap area)."""
        padded = self.padded(pe)
        slices = tuple(
            slice(lo, padded.shape[d] - hi)
            for d, (lo, hi) in enumerate(self.halo))
        return padded[slices]

    def interior_slices(self, pe: int) -> tuple[slice, ...]:
        padded = self.padded(pe)
        return tuple(slice(lo, padded.shape[d] - hi)
                     for d, (lo, hi) in enumerate(self.halo))

    # -- global <-> local ------------------------------------------------------
    def scatter(self, global_array: np.ndarray) -> None:
        """Distribute a global array's values into the local interiors."""
        if tuple(global_array.shape) != self.layout.shape:
            raise MachineError(
                f"{self.name}: scatter shape {global_array.shape} != "
                f"declared {self.layout.shape}")
        for pe in self.layout.grid.ranks():
            box = self.layout.owned_box(pe)
            src = tuple(slice(lo - 1, hi) for lo, hi in box)
            self.interior(pe)[...] = global_array[src]

    def gather(self) -> np.ndarray:
        """Assemble the global array from the local interiors."""
        out = np.zeros(self.layout.shape, dtype=self.dtype)
        for pe in self.layout.grid.ranks():
            box = self.layout.owned_box(pe)
            dst = tuple(slice(lo - 1, hi) for lo, hi in box)
            out[dst] = self.interior(pe)
        return out

    # -- geometry helpers ----------------------------------------------------
    def owned_box(self, pe: int) -> tuple[tuple[int, int], ...]:
        return self.layout.owned_box(pe)

    def local_index_of(self, pe: int, gidx: tuple[int, ...]) -> tuple[int, ...]:
        """Padded-array index of a *globally owned* element on this PE."""
        box = self.owned_box(pe)
        out = []
        for d, ((lo, hi), g) in enumerate(zip(box, gidx)):
            if not (lo <= g <= hi):
                raise ExecutionError(
                    f"{self.name}: global index {gidx} not owned by PE {pe}")
            out.append(self.halo[d][0] + (g - lo))
        return tuple(out)

    @property
    def rank(self) -> int:
        return len(self.layout.shape)

    def __str__(self) -> str:
        return (f"DArray({self.name}, shape={self.layout.shape}, "
                f"halo={self.halo})")
