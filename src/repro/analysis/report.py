"""Render compiled plans and execution results as readable reports.

``describe_plan`` prints the generated SPMD program the way the paper's
Figure 16 presents its final code: communication calls first-class,
fused subgrid loop nests with their statements and memory profile.
"""

from __future__ import annotations

from repro.compiler.plan import (
    AllocOp, CondOp, FreeOp, FullShiftOp, LoopNestOp, OverlappedOp,
    OverlapShiftOp, Plan, PlanOp, ScalarAssignOp, SeqLoopOp, WhileOp,
)
from repro.runtime.executor import ExecutionResult


def _format_op(op: PlanOp, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(op, OverlapShiftOp):
        rsd = f", rsd={op.rsd}" if op.rsd is not None and \
            not op.rsd.is_trivial else ""
        eos = f", boundary={op.boundary:g}" if op.boundary is not None \
            else ""
        base = ""
        if op.base_offsets and any(op.base_offsets):
            base = f"<{','.join(f'{o:+d}' for o in op.base_offsets)}>"
        return [f"{pad}overlap_shift {op.array}{base} "
                f"shift={op.shift:+d} dim={op.dim}{rsd}{eos}"]
    if isinstance(op, FullShiftOp):
        kind = "eoshift" if op.boundary is not None else "cshift"
        return [f"{pad}full_{kind} {op.dst} <- {op.src} "
                f"shift={op.shift:+d} dim={op.dim} "
                f"(buffered copy, both movement components)"]
    if isinstance(op, LoopNestOp):
        space = " x ".join(f"{lo}:{hi}" for lo, hi in op.space)
        tag = "fused " if op.fused else ""
        head = (f"{pad}{tag}subgrid loop nest over [{space}], "
                f"{len(op.statements)} statement(s)")
        lines = [head]
        for s in op.statements:
            lines.append(f"{pad}  {s}")
        st = op.stats
        lines.append(
            f"{pad}  per-point: {st.mem_loads:g} memory loads, "
            f"{st.cached_loads:g} cached, {st.stores:g} stores, "
            f"{st.flops:g} flops"
            + (f" (unroll-and-jam x{op.unroll_jam})" if op.memopt else ""))
        return lines
    if isinstance(op, AllocOp):
        return [f"{pad}allocate {', '.join(op.names)}"]
    if isinstance(op, FreeOp):
        return [f"{pad}deallocate {', '.join(op.names)}"]
    if isinstance(op, ScalarAssignOp):
        return [f"{pad}scalar {op.name} = {op.rhs}"]
    if isinstance(op, SeqLoopOp):
        lines = [f"{pad}do {op.var} = {op.lo}, {op.hi}"]
        for inner in op.body:
            lines += _format_op(inner, indent + 1)
        lines.append(f"{pad}end do")
        return lines
    if isinstance(op, WhileOp):
        lines = [f"{pad}do while ({op.cond})"]
        for inner in op.body:
            lines += _format_op(inner, indent + 1)
        lines.append(f"{pad}end do")
        return lines
    if isinstance(op, OverlappedOp):
        lines = [f"{pad}overlap communication with interior computation:"]
        for inner in op.comm_ops:
            lines += _format_op(inner, indent + 1)
        lines += _format_op(op.nest, indent + 1)
        lines.append(f"{pad}  (interior computes while messages fly; "
                     f"boundary strips wait)")
        return lines
    if isinstance(op, CondOp):
        lines = [f"{pad}if ({op.cond})"]
        for inner in op.then_ops:
            lines += _format_op(inner, indent + 1)
        if op.else_ops:
            lines.append(f"{pad}else")
            for inner in op.else_ops:
                lines += _format_op(inner, indent + 1)
        lines.append(f"{pad}end if")
        return lines
    return [f"{pad}{type(op).__name__}"]


def describe_plan(plan: Plan) -> str:
    """The generated SPMD program, annotated (Figure 16 style)."""
    lines = ["arrays:"]
    for decl in plan.arrays.values():
        halo = "x".join(f"({lo},{hi})" for lo, hi in decl.halo)
        tag = " [temporary]" if decl.is_temporary else ""
        lines.append(
            f"  {decl.name}: {'x'.join(map(str, decl.shape))} "
            f"{decl.dtype.name} dist{decl.distribution} "
            f"overlap={halo}{tag}")
    if plan.params:
        lines.append("parameters: " + ", ".join(
            f"{k}={v}" for k, v in plan.params.items()))
    lines.append("program:")
    for op in plan.ops:
        lines += _format_op(op, 1)
    return "\n".join(lines)


def describe_trace(tracer) -> str:
    """Human-readable tree of a :class:`repro.obs.Tracer`'s spans, with
    a roll-up of the counters the paper's argument turns on (messages,
    bytes, copies, compute points)."""
    totals = tracer.totals()
    lines = [tracer.summary()]
    interesting = ["messages", "bytes", "copies", "copy_elements",
                   "compute_points", "statements_fused"]
    rollup = ", ".join(f"{k}={totals[k]:g}" for k in interesting
                       if totals.get(k))
    if rollup:
        lines.append("")
        lines.append(f"totals: {rollup}")
    return "\n".join(lines)


def _render_matrix(matrix: list[list[int]], npes: int) -> list[str]:
    """Plain-text heatmap of an npes x npes matrix: counts plus a
    per-cell shade picked from the row of glyphs below."""
    peak = max((v for row in matrix for v in row), default=0)
    glyphs = " .:*#"
    width = max(5, len(str(peak)) + 2)
    lines = ["      " + "".join(f"d{d:<{width - 1}}" for d in range(npes))]
    for s in range(npes):
        cells = []
        for d in range(npes):
            v = matrix[s][d]
            shade = glyphs[min(len(glyphs) - 1,
                               (v * (len(glyphs) - 1) + peak - 1) // peak
                               if peak else 0)]
            cells.append(f"{v}{shade}".rjust(width))
        lines.append(f"  s{s:<3}" + "".join(cells))
    return lines


def describe_profile(profile) -> str:
    """Plain-text report of a :class:`repro.obs.profile.CommProfile`:
    per-class comm matrices, per-PE phase totals, and the cost-model
    validation table."""
    head = f"communication profile: {profile.backend} backend"
    if profile.kernel:
        head += f", {profile.kernel}"
    if profile.level:
        head += f" @{profile.level}"
    head += f", grid {'x'.join(map(str, profile.grid))}"
    lines = [head, ""]

    by_class = profile.totals["messages_by_class"]
    bytes_by = profile.totals["bytes_by_class"]
    lines.append("messages by class: " + ", ".join(
        f"{c}={by_class[c]} ({bytes_by[c]}B)"
        for c in by_class if by_class[c]))
    if not any(by_class.values()):
        lines[-1] = "messages by class: none (no interprocessor traffic)"
    lines.append("")

    for cls_name, counts in by_class.items():
        if not counts:
            continue
        lines.append(f"{cls_name} messages (src row -> dst column):")
        lines += _render_matrix(profile.matrix[cls_name]["messages"],
                                profile.npes)
        lines.append("")

    lines.append("per-PE modelled phase seconds:")
    lines.append(f"  {'PE':>4} {'comm':>12} {'copy':>12} {'compute':>12}")
    for pe in range(profile.npes):
        ph = profile.phase_seconds(pe)
        lines.append(f"  {pe:>4} {ph['comm']:>12.3e} {ph['copy']:>12.3e} "
                     f"{ph['compute']:>12.3e}")
    lines.append("")

    val = profile.validation
    lines.append("cost-model validation (modelled self-time vs measured "
                 "wall per op):")
    lines.append(f"  {'op':>4}  {'name':<16} {'modelled_s':>12} "
                 f"{'wall_s':>12}  {'msgs':>6}")
    for row in val["rows"]:
        lines.append(f"  {row['op']:>4}  {row['name']:<16} "
                     f"{row['modelled_s']:>12.3e} {row['wall_s']:>12.3e}  "
                     f"{row['messages']:>6}")
    lines.append(f"  scale (wall per modelled second): "
                 f"{val['scale_wall_per_modelled']:.3g}")
    lines.append(f"  weighted abs error after scaling: "
                 f"{val['mape_pct']:.1f}%")
    return "\n".join(lines)


def describe_result(result: ExecutionResult) -> str:
    """Cost summary of one execution."""
    r = result.report
    lines = [
        f"modelled time: {result.modelled_time * 1e3:.3f} ms",
        f"messages: {r.messages} ({r.message_bytes} bytes)",
        f"intraprocessor copies: {r.copies} "
        f"({r.copy_elements} elements)",
        f"loop points: {r.loop_points} "
        f"(mem loads {r.mem_loads:g}, cached {r.cached_loads:g}, "
        f"stores {r.stores:g}, flops {r.flops:g})",
        f"peak memory per PE: {result.peak_memory_per_pe} bytes",
        f"communication fraction: {r.comm_time_fraction * 100:.1f}%",
    ]
    return "\n".join(lines)
