"""Render compiled plans and execution results as readable reports.

``describe_plan`` prints the generated SPMD program the way the paper's
Figure 16 presents its final code: communication calls first-class,
fused subgrid loop nests with their statements and memory profile.
"""

from __future__ import annotations

from repro.plan.ops import Plan
from repro.plan.printer import format_op, plan_to_text  # noqa: F401
from repro.runtime.executor import ExecutionResult


def describe_plan(plan: Plan) -> str:
    """The generated SPMD program, annotated (Figure 16 style).

    Thin alias of :func:`repro.plan.printer.plan_to_text`, kept for the
    historic import path; ``format_op`` is re-exported the same way for
    callers that render single ops.
    """
    return plan_to_text(plan)


def describe_trace(tracer) -> str:
    """Human-readable tree of a :class:`repro.obs.Tracer`'s spans, with
    a roll-up of the counters the paper's argument turns on (messages,
    bytes, copies, compute points)."""
    totals = tracer.totals()
    lines = [tracer.summary()]
    interesting = ["messages", "bytes", "copies", "copy_elements",
                   "compute_points", "statements_fused"]
    rollup = ", ".join(f"{k}={totals[k]:g}" for k in interesting
                       if totals.get(k))
    if rollup:
        lines.append("")
        lines.append(f"totals: {rollup}")
    return "\n".join(lines)


def _render_matrix(matrix: list[list[int]], npes: int) -> list[str]:
    """Plain-text heatmap of an npes x npes matrix: counts plus a
    per-cell shade picked from the row of glyphs below."""
    peak = max((v for row in matrix for v in row), default=0)
    glyphs = " .:*#"
    width = max(5, len(str(peak)) + 2)
    lines = ["      " + "".join(f"d{d:<{width - 1}}" for d in range(npes))]
    for s in range(npes):
        cells = []
        for d in range(npes):
            v = matrix[s][d]
            shade = glyphs[min(len(glyphs) - 1,
                               (v * (len(glyphs) - 1) + peak - 1) // peak
                               if peak else 0)]
            cells.append(f"{v}{shade}".rjust(width))
        lines.append(f"  s{s:<3}" + "".join(cells))
    return lines


def describe_profile(profile) -> str:
    """Plain-text report of a :class:`repro.obs.profile.CommProfile`:
    per-class comm matrices, per-PE phase totals, and the cost-model
    validation table."""
    head = f"communication profile: {profile.backend} backend"
    if profile.kernel:
        head += f", {profile.kernel}"
    if profile.level:
        head += f" @{profile.level}"
    head += f", grid {'x'.join(map(str, profile.grid))}"
    lines = [head, ""]

    by_class = profile.totals["messages_by_class"]
    bytes_by = profile.totals["bytes_by_class"]
    lines.append("messages by class: " + ", ".join(
        f"{c}={by_class[c]} ({bytes_by[c]}B)"
        for c in by_class if by_class[c]))
    if not any(by_class.values()):
        lines[-1] = "messages by class: none (no interprocessor traffic)"
    lines.append("")

    for cls_name, counts in by_class.items():
        if not counts:
            continue
        lines.append(f"{cls_name} messages (src row -> dst column):")
        lines += _render_matrix(profile.matrix[cls_name]["messages"],
                                profile.npes)
        lines.append("")

    lines.append("per-PE modelled phase seconds:")
    lines.append(f"  {'PE':>4} {'comm':>12} {'copy':>12} {'compute':>12}")
    for pe in range(profile.npes):
        ph = profile.phase_seconds(pe)
        lines.append(f"  {pe:>4} {ph['comm']:>12.3e} {ph['copy']:>12.3e} "
                     f"{ph['compute']:>12.3e}")
    lines.append("")

    val = profile.validation
    lines.append("cost-model validation (modelled self-time vs measured "
                 "wall per op):")
    lines.append(f"  {'op':>4}  {'name':<16} {'modelled_s':>12} "
                 f"{'wall_s':>12}  {'msgs':>6}")
    for row in val["rows"]:
        lines.append(f"  {row['op']:>4}  {row['name']:<16} "
                     f"{row['modelled_s']:>12.3e} {row['wall_s']:>12.3e}  "
                     f"{row['messages']:>6}")
    scale = val["scale_wall_per_modelled"]
    if scale is None:
        # Comm-free plan: nothing was modelled, so no scale exists and
        # the error statistic is skipped rather than rendered as 0.
        lines.append("  scale (wall per modelled second): n/a "
                     "(no modelled time)")
    else:
        lines.append(f"  scale (wall per modelled second): {scale:.3g}")
        lines.append(f"  weighted abs error after scaling: "
                     f"{val['mape_pct']:.1f}%")
    return "\n".join(lines)


def describe_metrics(registry) -> str:
    """Human-readable dump of a
    :class:`repro.obs.metrics.MetricsRegistry`: every metric with its
    kind, determinism tags, help text, and per-label samples."""
    from repro.obs.metrics import Histogram, format_labels
    metrics = registry.metrics()
    if not metrics:
        return "no metrics recorded"
    lines = []
    for metric in metrics:
        tags = [metric.kind]
        tags.append("deterministic" if metric.deterministic
                    else "wall-clock")
        if metric.invariant:
            tags.append("backend-invariant")
        lines.append(f"{metric.name} [{', '.join(tags)}]")
        if metric.help:
            lines.append(f"  {metric.help}")
        for key, value in metric.samples():
            label = format_labels(key) or "(no labels)"
            if isinstance(metric, Histogram):
                mean = (value["sum"] / value["count"]
                        if value["count"] else 0.0)
                lines.append(
                    f"  {label}: count={value['count']} "
                    f"sum={value['sum']:.6g} mean={mean:.3g}")
            else:
                lines.append(f"  {label}: {value:g}")
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def describe_result(result: ExecutionResult) -> str:
    """Cost summary of one execution."""
    r = result.report
    lines = [
        f"modelled time: {result.modelled_time * 1e3:.3f} ms",
        f"messages: {r.messages} ({r.message_bytes} bytes)",
        f"intraprocessor copies: {r.copies} "
        f"({r.copy_elements} elements)",
        f"loop points: {r.loop_points} "
        f"(mem loads {r.mem_loads:g}, cached {r.cached_loads:g}, "
        f"stores {r.stores:g}, flops {r.flops:g})",
        f"peak memory per PE: {result.peak_memory_per_pe} bytes",
        f"communication fraction: {r.comm_time_fraction * 100:.1f}%",
    ]
    return "\n".join(lines)
