"""Static verification of overlap-area coverage.

An independent checker for the compiled IR: every offset reference
``U<o>`` must be preceded — on *every* control-flow path, with no
intervening redefinition of ``U`` — by ``OVERLAP_SHIFT`` calls that make
all the overlap cells ``o`` touches resident, with the matching fill
kind (circular vs. EOSHIFT boundary).  The coverage rule mirrors the
canonical construction of communication unioning: for each dimension
``k`` with ``o_k != 0``, the region ``(U, k, sign(o_k))`` must be filled
to depth ``|o_k|``, carrying the lower-dimension components of ``o`` in
its orthogonal (RSD/base-offset) extension.

The compiler runs this after its pass pipeline as a safety net; the test
suite also aims it at hand-mutilated programs to prove it catches real
coverage bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.nodes import (
    Allocate, ArrayAssign, Deallocate, DoLoop, DoWhile, Expr, If,
    OffsetRef, OverlapShift, ScalarAssign, Stmt,
)
from repro.ir.program import Program

Fill = float | None


@dataclass(frozen=True)
class RegionCover:
    """What one (array, dim, sign) overlap region currently holds."""

    amount: int                    # filled depth along the shifted dim
    ortho: tuple[tuple[int, int], ...]  # (lo, hi) coverage per other dim
    fill: Fill

    def meet(self, other: "RegionCover") -> "RegionCover | None":
        if self.fill != other.fill:
            return None
        ortho = tuple((min(a[0], b[0]), min(a[1], b[1]))
                      for a, b in zip(self.ortho, other.ortho))
        return RegionCover(min(self.amount, other.amount), ortho,
                           self.fill)


State = dict[tuple[str, int, int], RegionCover]


@dataclass
class CoverageProblem:
    stmt: Stmt
    ref: OffsetRef
    reason: str

    def __str__(self) -> str:
        return f"s{self.stmt.sid}: {self.ref}: {self.reason}"


@dataclass
class _Verifier:
    program: Program
    problems: list[CoverageProblem] = field(default_factory=list)

    # -- state transfer ------------------------------------------------------
    def _apply_shift(self, state: State, stmt: OverlapShift) -> None:
        rank = self.program.symbols.array(stmt.array).type.rank
        d = stmt.dim - 1
        sign = 1 if stmt.shift > 0 else -1
        ortho = []
        for k in range(rank):
            if k == d:
                ortho.append((0, 0))
                continue
            lo = hi = 0
            if stmt.rsd is not None and stmt.rsd.dims[k] is not None:
                lo = stmt.rsd.dims[k].lo
                hi = stmt.rsd.dims[k].hi
            if stmt.base_offsets:
                o = stmt.base_offsets[k]
                lo = max(lo, -o if o < 0 else 0)
                hi = max(hi, o if o > 0 else 0)
            ortho.append((lo, hi))
        key = (stmt.array, d, sign)
        cover = RegionCover(abs(stmt.shift), tuple(ortho), stmt.boundary)
        prev = state.get(key)
        if prev is not None and prev.fill == cover.fill:
            # refills accumulate coverage (larger subsumes smaller)
            ortho2 = tuple((max(a[0], b[0]), max(a[1], b[1]))
                           for a, b in zip(prev.ortho, cover.ortho))
            cover = RegionCover(max(prev.amount, cover.amount), ortho2,
                                cover.fill)
        state[key] = cover

    def _kill(self, state: State, name: str) -> None:
        for key in list(state):
            if key[0] == name:
                del state[key]

    # -- reference checking ------------------------------------------------------
    def _check_ref(self, state: State, stmt: Stmt,
                   ref: OffsetRef) -> None:
        offs = ref.offsets
        for k, o in enumerate(offs):
            if o == 0:
                continue
            sign = 1 if o > 0 else -1
            cover = state.get((ref.name, k, sign))
            if cover is None:
                self.problems.append(CoverageProblem(
                    stmt, ref,
                    f"no overlap fill for dim {k + 1} "
                    f"direction {'+' if sign > 0 else '-'}"))
                continue
            if cover.fill != ref.boundary:
                self.problems.append(CoverageProblem(
                    stmt, ref,
                    f"fill kind mismatch on dim {k + 1}: region holds "
                    f"{cover.fill}, reference needs {ref.boundary}"))
                continue
            if cover.amount < abs(o):
                self.problems.append(CoverageProblem(
                    stmt, ref,
                    f"overlap depth {cover.amount} < |{o}| on "
                    f"dim {k + 1}"))
                continue
            for j in range(k):
                oj = offs[j]
                if oj == 0:
                    continue
                lo, hi = cover.ortho[j]
                need = (-oj if oj < 0 else 0, oj if oj > 0 else 0)
                if lo < need[0] or hi < need[1]:
                    self.problems.append(CoverageProblem(
                        stmt, ref,
                        f"corner cells not carried: dim {k + 1} fill "
                        f"extends ({lo},{hi}) in dim {j + 1}, needs "
                        f"{need}"))

    def _check_expr(self, state: State, stmt: Stmt, expr: Expr) -> None:
        for node in expr.walk():
            if isinstance(node, OffsetRef):
                self._check_ref(state, stmt, node)

    # -- structured walk ----------------------------------------------------
    def walk(self, body: list[Stmt], state: State) -> None:
        for stmt in body:
            if isinstance(stmt, OverlapShift):
                self._apply_shift(state, stmt)
            elif isinstance(stmt, ArrayAssign):
                self._check_expr(state, stmt, stmt.rhs)
                if stmt.mask is not None:
                    self._check_expr(state, stmt, stmt.mask)
                self._kill(state, stmt.lhs.name)
            elif isinstance(stmt, ScalarAssign):
                self._check_expr(state, stmt, stmt.rhs)
            elif isinstance(stmt, (Allocate, Deallocate)):
                for name in stmt.names:
                    self._kill(state, name)
            elif isinstance(stmt, If):
                self._check_expr(state, stmt, stmt.cond)
                s_then = dict(state)
                s_else = dict(state)
                self.walk(stmt.then_body, s_then)
                self.walk(stmt.else_body, s_else)
                state.clear()
                for key in set(s_then) & set(s_else):
                    met = s_then[key].meet(s_else[key])
                    if met is not None:
                        state[key] = met
            elif isinstance(stmt, (DoLoop, DoWhile)):
                # conservative around the back edge, mirroring the
                # offset pass: anything the body redefines is not
                # available on entry to any iteration
                if isinstance(stmt, DoWhile):
                    self._check_expr(state, stmt, stmt.cond)
                killed = self._killed_in(stmt.body)
                for key in list(state):
                    if key[0] in killed:
                        del state[key]
                self.walk(stmt.body, state)

    def _killed_in(self, body: list[Stmt]) -> set[str]:
        killed: set[str] = set()
        for stmt in body:
            for s in stmt.walk():
                if isinstance(s, ArrayAssign):
                    killed.add(s.lhs.name)
                elif isinstance(s, (Allocate, Deallocate)):
                    killed.update(s.names)
        return killed


def verify_offset_coverage(program: Program) -> list[CoverageProblem]:
    """Check every offset reference's overlap coverage; returns the
    (empty when sound) problem list."""
    verifier = _Verifier(program)
    verifier.walk(program.body, {})
    return verifier.problems
