"""Static verification of overlap-area coverage.

An independent checker for the compiled IR: every offset reference
``U<o>`` must be preceded — on *every* control-flow path, with no
intervening redefinition of ``U`` — by ``OVERLAP_SHIFT`` calls that make
all the overlap cells ``o`` touches resident, with the matching fill
kind (circular vs. EOSHIFT boundary).  Per-dimension, the region
``(U, k, sign(o_k))`` must be filled to depth ``|o_k|`` for each ``k``
with ``o_k != 0``.  Corner cells (more than one nonzero component) are
resident when *some* order of the filling shifts carries them: each
shift's RSD/base-offset extension picks up the orthogonal overlap cells
that were already resident at its source when it executed, so the check
looks for an ordering of the nonzero dimensions in which every later
region's orthogonal extension covers all earlier components.  The
canonical ascending order of communication unioning is one such
ordering, but hand-written or descending-dimension chains are equally
sound and must be accepted.

The compiler runs this after its pass pipeline as a safety net; the test
suite also aims it at hand-mutilated programs to prove it catches real
coverage bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.nodes import (
    Allocate, ArrayAssign, Deallocate, DoLoop, DoWhile, Expr, If,
    OffsetRef, OverlapShift, ScalarAssign, Stmt,
)
from repro.ir.program import Program
from repro.plan.verify import Fill, RegionCover  # noqa: F401 (re-export)

State = dict[tuple[str, int, int], RegionCover]


@dataclass
class CoverageProblem:
    stmt: Stmt
    ref: OffsetRef
    reason: str

    def __str__(self) -> str:
        return f"s{self.stmt.sid}: {self.ref}: {self.reason}"


@dataclass
class _Verifier:
    program: Program
    problems: list[CoverageProblem] = field(default_factory=list)

    # -- state transfer ------------------------------------------------------
    def _resident_depth(self, state: State, name: str, dim: int,
                        sign: int) -> int:
        cover = state.get((name, dim, sign))
        return 0 if cover is None else cover.amount

    def _apply_shift(self, state: State, stmt: OverlapShift) -> None:
        rank = self.program.symbols.array(stmt.array).type.rank
        d = stmt.dim - 1
        sign = 1 if stmt.shift > 0 else -1
        ortho = []
        for k in range(rank):
            if k == d:
                ortho.append((0, 0))
                continue
            lo = hi = 0
            if stmt.rsd is not None and stmt.rsd.dims[k] is not None:
                lo = stmt.rsd.dims[k].lo
                hi = stmt.rsd.dims[k].hi
            if stmt.base_offsets:
                o = stmt.base_offsets[k]
                lo = max(lo, -o if o < 0 else 0)
                hi = max(hi, o if o > 0 else 0)
            # the widened slab is read from the sender's dim-k overlap
            # area, so the pickup is only as deep as what was resident
            # there when this shift executed
            lo = min(lo, self._resident_depth(state, stmt.array, k, -1))
            hi = min(hi, self._resident_depth(state, stmt.array, k, +1))
            ortho.append((lo, hi))
        key = (stmt.array, d, sign)
        cover = RegionCover(abs(stmt.shift), tuple(ortho), stmt.boundary)
        prev = state.get(key)
        if prev is not None and prev.fill == cover.fill:
            # refills accumulate coverage (larger subsumes smaller)
            ortho2 = tuple((max(a[0], b[0]), max(a[1], b[1]))
                           for a, b in zip(prev.ortho, cover.ortho))
            cover = RegionCover(max(prev.amount, cover.amount), ortho2,
                                cover.fill)
        state[key] = cover

    def _kill(self, state: State, name: str) -> None:
        for key in list(state):
            if key[0] == name:
                del state[key]

    # -- reference checking ------------------------------------------------------
    def _check_ref(self, state: State, stmt: Stmt,
                   ref: OffsetRef) -> None:
        offs = ref.offsets
        clean = True
        for k, o in enumerate(offs):
            if o == 0:
                continue
            sign = 1 if o > 0 else -1
            cover = state.get((ref.name, k, sign))
            if cover is None:
                self.problems.append(CoverageProblem(
                    stmt, ref,
                    f"no overlap fill for dim {k + 1} "
                    f"direction {'+' if sign > 0 else '-'}"))
                clean = False
                continue
            if cover.fill != ref.boundary:
                self.problems.append(CoverageProblem(
                    stmt, ref,
                    f"fill kind mismatch on dim {k + 1}: region holds "
                    f"{cover.fill}, reference needs {ref.boundary}"))
                clean = False
                continue
            if cover.amount < abs(o):
                self.problems.append(CoverageProblem(
                    stmt, ref,
                    f"overlap depth {cover.amount} < |{o}| on "
                    f"dim {k + 1}"))
                clean = False
        active = [k for k, o in enumerate(offs) if o != 0]
        if clean and len(active) > 1 and not self._corner_covered(
                state, ref, offs, active):
            carried = ", ".join(
                f"dim {k + 1} fill extends "
                f"{state[(ref.name, k, 1 if offs[k] > 0 else -1)].ortho}"
                for k in active)
            self.problems.append(CoverageProblem(
                stmt, ref,
                f"corner cells not carried: no shift order covers "
                f"offset {offs} ({carried})"))

    def _corner_covered(self, state: State, ref: OffsetRef,
                        offs: tuple[int, ...],
                        active: list[int]) -> bool:
        """Is the corner cell at ``offs`` resident in some overlap area?

        It is when the nonzero dimensions admit an ordering in which
        every shift's orthogonal extension covers all components shifted
        before it — the later shift then carries the earlier corner data
        from its sender's overlap area (Figures 9/10 pickup, in any
        dimension order).  Ortho extents in the state are already
        residency-clamped, so this accepts exactly the chains the
        runtime delivers.
        """
        from itertools import permutations

        def covers(k: int, earlier: tuple[int, ...]) -> bool:
            cover = state[(ref.name, k, 1 if offs[k] > 0 else -1)]
            for j in earlier:
                oj = offs[j]
                lo, hi = cover.ortho[j]
                if (oj < 0 and lo < -oj) or (oj > 0 and hi < oj):
                    return False
            return True

        return any(
            all(covers(k, perm[:i]) for i, k in enumerate(perm) if i)
            for perm in permutations(active))

    def _check_expr(self, state: State, stmt: Stmt, expr: Expr) -> None:
        for node in expr.walk():
            if isinstance(node, OffsetRef):
                self._check_ref(state, stmt, node)

    # -- structured walk ----------------------------------------------------
    def walk(self, body: list[Stmt], state: State) -> None:
        for stmt in body:
            if isinstance(stmt, OverlapShift):
                self._apply_shift(state, stmt)
            elif isinstance(stmt, ArrayAssign):
                self._check_expr(state, stmt, stmt.rhs)
                if stmt.mask is not None:
                    self._check_expr(state, stmt, stmt.mask)
                self._kill(state, stmt.lhs.name)
            elif isinstance(stmt, ScalarAssign):
                self._check_expr(state, stmt, stmt.rhs)
            elif isinstance(stmt, (Allocate, Deallocate)):
                for name in stmt.names:
                    self._kill(state, name)
            elif isinstance(stmt, If):
                self._check_expr(state, stmt, stmt.cond)
                s_then = dict(state)
                s_else = dict(state)
                self.walk(stmt.then_body, s_then)
                self.walk(stmt.else_body, s_else)
                state.clear()
                for key in set(s_then) & set(s_else):
                    met = s_then[key].meet(s_else[key])
                    if met is not None:
                        state[key] = met
            elif isinstance(stmt, (DoLoop, DoWhile)):
                # conservative around the back edge, mirroring the
                # offset pass: anything the body redefines is not
                # available on entry to any iteration
                if isinstance(stmt, DoWhile):
                    self._check_expr(state, stmt, stmt.cond)
                killed = self._killed_in(stmt.body)
                for key in list(state):
                    if key[0] in killed:
                        del state[key]
                self.walk(stmt.body, state)

    def _killed_in(self, body: list[Stmt]) -> set[str]:
        killed: set[str] = set()
        for stmt in body:
            for s in stmt.walk():
                if isinstance(s, ArrayAssign):
                    killed.add(s.lhs.name)
                elif isinstance(s, (Allocate, Deallocate)):
                    killed.update(s.names)
        return killed


def verify_offset_coverage(program: Program) -> list[CoverageProblem]:
    """Check every offset reference's overlap coverage; returns the
    (empty when sound) problem list."""
    verifier = _Verifier(program)
    verifier.walk(program.body, {})
    return verifier.problems
