"""Data-movement visualisation (the paper's Figures 5-10).

Renders, per PE, which overlap cells each communication operation of a
compiled program fills — the pictures the paper uses to explain
``OVERLAP_SHIFT`` and the RSD corner pickup.  Cells show:

* ``.``   interior (owned) points
* `` ``   overlap cells never written
* ``1-9`` overlap cells filled by the 1st, 2nd, ... communication op

For the 9-point stencil the output reproduces Figure 10: the first two
ops fill the row halos, the last two fill the column halos *including
all four corners* (their digits appear in the corner cells because the
RSD carried the row-halo cells along).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.plan import FullShiftOp, OverlapShiftOp, Plan
from repro.machine.machine import Machine
from repro.runtime.executor import _Exec


@dataclass
class MovementTrace:
    """Fill-order maps per (array, PE): 0 = untouched overlap,
    -1 = interior, k>0 = filled by the k-th communication op."""

    arrays: dict[str, list[np.ndarray]] = field(default_factory=dict)
    op_labels: list[str] = field(default_factory=list)

    def render(self, array: str, pe: int) -> str:
        fills = self.arrays[array][pe]
        rows = []
        for r in range(fills.shape[0]):
            cells = []
            for c in range(fills.shape[1]):
                v = fills[r, c]
                cells.append("." if v == -1 else
                             " " if v == 0 else str(int(v)))
            rows.append(" ".join(cells))
        return "\n".join(rows)

    def render_grid(self, array: str, grid: tuple[int, int]) -> str:
        """All PEs side by side in their grid arrangement."""
        blocks = [[self.render(array, self._rank(grid, gr, gc)).splitlines()
                   for gc in range(grid[1])] for gr in range(grid[0])]
        out = []
        for gr, row in enumerate(blocks):
            height = max(len(b) for b in row)
            for line in range(height):
                out.append("   |   ".join(
                    b[line] if line < len(b) else "" for b in row))
            if gr + 1 < len(blocks):
                width = len(out[-1])
                out.append("-" * width)
        return "\n".join(out)

    @staticmethod
    def _rank(grid: tuple[int, int], r: int, c: int) -> int:
        return r * grid[1] + c


def trace_movement(plan: Plan, machine: Machine,
                   array: str | None = None) -> MovementTrace:
    """Execute only the data-movement prefix of ``plan`` (stopping at the
    first computation) and record which overlap cells each op fills."""
    machine.reset()
    ex = _Exec(plan, machine, scalars=None, hpf_overhead=False)
    for name in plan.entry_arrays:
        ex.materialize(name)
    trace = MovementTrace()
    watched = [array] if array else [
        name for name, decl in plan.arrays.items()
        if any(h != (0, 0) for h in decl.halo)]
    for name in watched:
        if name not in ex.darrays:
            ex.materialize(name)
        da = ex.darrays[name]
        maps = []
        for pe in machine.topology.ranks():
            m = np.zeros(da.padded(pe).shape, dtype=np.int16)
            m[da.interior_slices(pe)] = -1
            maps.append(m)
        trace.arrays[name] = maps
        # unique sentinels so fills are detectable
        for pe in machine.topology.ranks():
            da.padded(pe)[...] = np.nan
            da.interior(pe)[...] = 1.0

    opno = 0
    for op in plan.ops:
        if not isinstance(op, (OverlapShiftOp, FullShiftOp)):
            break  # movement prefix only (post-partitioning: comm first)
        before = {name: [ex.darrays[name].padded(pe).copy()
                         for pe in machine.topology.ranks()]
                  for name in trace.arrays}
        ex.run_ops([op])
        opno += 1
        trace.op_labels.append(str(op))
        for name in trace.arrays:
            da = ex.darrays[name]
            for pe in machine.topology.ranks():
                changed = ~np.isnan(da.padded(pe)) & \
                    np.isnan(before[name][pe])
                trace.arrays[name][pe][changed] = opno
    for name in list(ex.darrays):
        ex.release(name)
    return trace
