"""Diagnostics: human-readable descriptions of compiled plans and runs."""

from repro.analysis.report import describe_plan, describe_result  # noqa: F401
