"""Job documents: the wire format of the compile-and-run service.

A *job* is one JSON document describing a compilation (``/compile``)
or a compile-and-execute (``/run``).  Parsing here is strict — unknown
fields, wrong types, and contradictory combinations (both ``kernel``
and ``source``) are rejected with a :class:`JobError` naming the field
— so a malformed client request surfaces as a 400 with a diagnostic,
never as a 500 from deep inside the compiler.

Registry kernels resolve exactly as :func:`repro.kernels.run_kernel`
does: the spec's default bindings and scalars merge *under* the job's
explicit ones and the spec's outputs apply, so a service run of a named
kernel is bitwise-identical to the same run made directly through the
library.  Responses embed the existing versioned documents unchanged —
the plan JSON of :mod:`repro.plan.serialize`, the metrics document of
:mod:`repro.obs.metrics`, the profile document of
:mod:`repro.obs.export` — under a thin ``SERVICE_SCHEMA`` envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Version stamp of the service's response envelope.  The embedded
#: plan/metrics/profile documents carry their own schema versions.
SERVICE_SCHEMA = {"type": "service", "version": 1}

#: Execution backends a run job may name.
RUN_BACKENDS = ("perpe", "vectorized", "parallel", "compiled")

#: Array payload modes for run responses: per-array sha256 digests
#: (default), full base64 data, or nothing.
ARRAY_MODES = ("digest", "full", "none")


class JobError(ValueError):
    """A malformed job document; maps to HTTP 400."""


def _require(doc: dict, allowed: dict[str, type | tuple]) -> None:
    unknown = sorted(set(doc) - set(allowed))
    if unknown:
        raise JobError(
            f"unknown field(s) {', '.join(unknown)}; allowed: "
            f"{', '.join(sorted(allowed))}")
    for name, types in allowed.items():
        if name in doc and doc[name] is not None \
                and not isinstance(doc[name], types):
            want = types[0] if isinstance(types, tuple) else types
            raise JobError(
                f"field {name!r} must be {want.__name__}, got "
                f"{type(doc[name]).__name__}")


def _int_map(doc: dict, name: str) -> dict[str, int]:
    out = {}
    for key, value in (doc.get(name) or {}).items():
        if isinstance(value, bool) or not isinstance(value, int):
            raise JobError(
                f"{name}[{key!r}] must be an integer, got {value!r}")
        out[str(key)] = value
    return out


def _float_map(doc: dict, name: str) -> dict[str, float]:
    out = {}
    for key, value in (doc.get(name) or {}).items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise JobError(
                f"{name}[{key!r}] must be a number, got {value!r}")
        out[str(key)] = float(value)
    return out


@dataclass
class CompileJob:
    """One compilation: source + bindings + compiler knobs.

    ``kernel`` is the registry name when the job named one (responses
    and ledger records carry it as a label); ``outputs`` is ``None``
    for "keep every array live".
    """

    source: str
    bindings: dict[str, int]
    outputs: "set[str] | None"
    level: str = "O4"
    cse: bool = False
    plan_passes: bool = False
    kernel: "str | None" = None
    include_plan: bool = False

    def compiler_kwargs(self) -> dict:
        return dict(bindings=self.bindings, level=self.level,
                    outputs=self.outputs, cse=self.cse,
                    plan_passes=self.plan_passes)


@dataclass
class MachineSpec:
    """The simulated machine a run job asks for."""

    grid: tuple[int, ...] = (2, 2)
    preset: str = "sp2"
    memory_mb: "int | None" = None

    def build(self):
        from repro.machine import Machine
        from repro.machine.presets import by_name
        return Machine(
            grid=self.grid, cost_model=by_name(self.preset),
            memory_per_pe=self.memory_mb * 1024 * 1024
            if self.memory_mb else None)


@dataclass
class RunJob:
    """One execution: a :class:`CompileJob` plus runtime factors."""

    compile: CompileJob
    machine: MachineSpec
    backend: str = "perpe"
    iterations: int = 1
    seed: int = 0
    workers: "int | None" = None
    scalars: dict[str, float] = field(default_factory=dict)
    tile: "int | None" = None
    unroll: "int | None" = None
    jit: "str | None" = None
    arrays: str = "digest"
    profile: bool = False


_COMPILE_FIELDS: dict[str, "type | tuple"] = {
    "kernel": str, "source": str, "bindings": dict, "outputs": list,
    "level": str, "cse": bool, "plan_passes": bool, "include_plan": bool,
}

_RUN_ONLY_FIELDS: dict[str, "type | tuple"] = {
    "scalars": dict, "machine": dict, "backend": str,
    "iterations": int, "seed": int, "workers": int,
    "tile": int, "unroll": int, "jit": str,
    "arrays": str, "profile": bool,
}


def parse_compile_job(doc: object) -> CompileJob:
    if not isinstance(doc, dict):
        raise JobError(f"job must be a JSON object, got "
                       f"{type(doc).__name__}")
    _require(doc, _COMPILE_FIELDS)
    return _compile_job(doc)


def _compile_job(doc: dict) -> CompileJob:
    from repro.kernels import resolve_kernel

    kernel = doc.get("kernel")
    source = doc.get("source")
    if (kernel is None) == (source is None):
        raise JobError(
            "job needs exactly one of 'kernel' (a registry name) or "
            "'source' (HPF text)")
    bindings = _int_map(doc, "bindings")
    outputs = set(doc["outputs"]) if doc.get("outputs") else None
    if kernel is not None:
        try:
            spec = resolve_kernel(kernel)
        except KeyError as exc:
            raise JobError(str(exc.args[0])) from None
        source = spec.source
        bindings = {**spec.default_bindings, **bindings}
        outputs = outputs or set(spec.outputs)
    return CompileJob(
        source=source, bindings=bindings, outputs=outputs,
        level=doc.get("level", "O4"), cse=bool(doc.get("cse", False)),
        plan_passes=bool(doc.get("plan_passes", False)), kernel=kernel,
        include_plan=bool(doc.get("include_plan", False)))


def parse_run_job(doc: object) -> RunJob:
    if not isinstance(doc, dict):
        raise JobError(f"job must be a JSON object, got "
                       f"{type(doc).__name__}")
    _require(doc, {**_COMPILE_FIELDS, **_RUN_ONLY_FIELDS})
    compile_job = _compile_job(
        {k: v for k, v in doc.items() if k in _COMPILE_FIELDS})
    scalars = _float_map(doc, "scalars")
    if compile_job.kernel is not None:
        from repro.kernels import resolve_kernel
        spec = resolve_kernel(compile_job.kernel)
        scalars = {**spec.default_scalars, **scalars}
    backend = doc.get("backend", "perpe")
    if backend not in RUN_BACKENDS:
        raise JobError(f"backend must be one of {RUN_BACKENDS}, got "
                       f"{backend!r}")
    arrays = doc.get("arrays", "digest")
    if arrays not in ARRAY_MODES:
        raise JobError(f"arrays must be one of {ARRAY_MODES}, got "
                       f"{arrays!r}")
    iterations = doc.get("iterations", 1)
    if isinstance(iterations, bool) or iterations < 1:
        raise JobError(f"iterations must be >= 1, got {iterations!r}")
    workers = doc.get("workers")
    if workers is not None and (isinstance(workers, bool) or workers < 1):
        raise JobError(f"workers must be >= 1, got {workers!r}")
    jit = doc.get("jit")
    if jit is not None and jit not in ("auto", "numba", "python", "off"):
        raise JobError(f"jit must be auto/numba/python/off, got {jit!r}")
    return RunJob(
        compile=compile_job, machine=_machine_spec(doc.get("machine")),
        backend=backend, iterations=iterations,
        seed=int(doc.get("seed", 0)), workers=workers, scalars=scalars,
        tile=doc.get("tile"), unroll=doc.get("unroll"), jit=jit,
        arrays=arrays, profile=bool(doc.get("profile", False)))


def _machine_spec(doc: "dict | None") -> MachineSpec:
    if doc is None:
        return MachineSpec()
    _require(doc, {"grid": list, "preset": str, "memory_mb": int})
    grid = doc.get("grid") or [2, 2]
    if not all(isinstance(g, int) and not isinstance(g, bool) and g >= 1
               for g in grid):
        raise JobError(f"machine.grid extents must be positive "
                       f"integers, got {grid!r}")
    return MachineSpec(grid=tuple(grid),
                       preset=doc.get("preset", "sp2"),
                       memory_mb=doc.get("memory_mb"))
