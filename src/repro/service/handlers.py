"""Request handlers and shared service state.

One :class:`ServiceState` per server holds the pieces every request
shares: the tiered plan cache (:class:`~repro.compiler.cache.
TieredPlanCache` — in-memory LRU over an optional machine-agnostic
disk tier), the :class:`~repro.service.coalescer.Coalescer` that folds
identical in-flight compilations onto one future, the bounded
:class:`~repro.service.pool.WorkerPool`, the service-wide
:class:`~repro.obs.metrics.MetricsRegistry` that ``GET /metrics``
exposes, and the optional :class:`~repro.obs.ledger.RunLedger`.

Isolation contract: each job runs on a pool thread under its *own*
context-local metrics registry (``use_registry``), so concurrent jobs
never interleave series and the per-run metrics document a ``/run``
response embeds describes exactly that run.  The service-wide registry
receives only the ``repro_service_*`` series, published directly
through handles — plus cache-counter gauges refreshed from each
cache's own thread-safe :class:`~repro.obs.metrics.CacheStats` at
scrape time.

Handlers return :class:`Response` objects; the HTTP framing lives in
:mod:`repro.service.app`.
"""

from __future__ import annotations

import base64
import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.coalescer import Coalescer
from repro.service.pool import WorkerPool
from repro.service.schemas import (
    CompileJob, JobError, RunJob, SERVICE_SCHEMA, parse_compile_job,
    parse_run_job,
)

#: Fingerprint ledger records carry for machine-less (compile-only)
#: requests.
COMPILE_FINGERPRINT = "service:compile"

#: Plan documents kept addressable via ``GET /plan/<key>`` (each is
#: stored under both its cache key and its content sha).
MAX_PLAN_DOCS = 256


@dataclass
class Response:
    """One HTTP response, ready for framing."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict = field(default_factory=dict)

    @classmethod
    def json(cls, doc: dict, status: int = 200,
             **headers) -> "Response":
        doc = {"schema": dict(SERVICE_SCHEMA), **doc}
        return cls(status=status, headers=headers,
                   body=(json.dumps(doc, sort_keys=True) + "\n")
                   .encode())

    @classmethod
    def error(cls, status: int, message: str, **headers) -> "Response":
        return cls.json({"kind": "error", "error": message},
                        status=status, **headers)


class ServiceState:
    """Everything one server instance shares across requests."""

    def __init__(self, cache_dir: "str | None" = None,
                 ledger_path: "str | None" = None,
                 pool: "WorkerPool | None" = None,
                 plan_cache_size: int = 128) -> None:
        from repro.compiler import (
            PersistentPlanCache, PlanCache, TieredPlanCache,
        )
        from repro.obs import RunLedger
        from repro.obs.metrics import MetricsRegistry

        self.kernel_cache_dir: "Path | None" = None
        disk = None
        if cache_dir:
            base = Path(cache_dir)
            # machine-agnostic on purpose: the service caches symbolic
            # plans, and both tiers must derive identical keys
            disk = PersistentPlanCache(base / "plans",
                                       machine_fingerprint="")
            self.kernel_cache_dir = base / "kernels"
        self.plan_cache = TieredPlanCache(PlanCache(plan_cache_size),
                                          disk)
        self.ledger = RunLedger(ledger_path) if ledger_path else None
        self.coalescer = Coalescer()
        self.pool = pool or WorkerPool()
        self.plan_docs: "OrderedDict[str, str]" = OrderedDict()

        self.registry = MetricsRegistry()
        self.requests_total = self.registry.counter(
            "repro_service_requests_total",
            help="Requests served, by route, method, and status.",
            deterministic=False)
        self.coalesced_total = self.registry.counter(
            "repro_service_coalesced_total",
            help="Compilations by coalescing role: a leader ran the "
                 "compiler, a follower reused an in-flight leader's "
                 "future.",
            deterministic=False)
        self.rejected_total = self.registry.counter(
            "repro_service_rejected_total",
            help="Jobs shed by admission control (HTTP 429).",
            deterministic=False)
        self.inflight = self.registry.gauge(
            "repro_service_inflight_requests",
            help="Requests currently being handled.",
            deterministic=False)
        self.job_seconds = self.registry.histogram(
            "repro_service_job_seconds",
            help="Wall-clock seconds per job, by kind.",
            deterministic=False)
        self.cache_events = self.registry.gauge(
            "repro_service_cache_events",
            help="Cumulative cache counters (hits, misses, ...), by "
                 "cache label; refreshed at scrape time.",
            deterministic=False)

    # -- cache stats --------------------------------------------------------
    def cache_stats(self) -> dict[str, dict[str, float]]:
        """Counter snapshots of every cache tier, by label."""
        stats = [self.plan_cache.memory.stats]
        if self.plan_cache.disk is not None:
            stats.append(self.plan_cache.disk.stats)
        return {s.label: s.as_dict() for s in stats}

    def refresh_cache_gauges(self) -> None:
        for label, snapshot in self.cache_stats().items():
            for event, value in snapshot.items():
                self.cache_events.set(value, cache=label, event=event)

    def _remember_plan(self, key: str, plan_key: str,
                       text: str) -> None:
        for alias in (key, plan_key):
            self.plan_docs[alias] = text
            self.plan_docs.move_to_end(alias)
        while len(self.plan_docs) > MAX_PLAN_DOCS:
            self.plan_docs.popitem(last=False)

    def close(self) -> None:
        self.pool.shutdown()


# -- shared compile path ----------------------------------------------------

def _compile_key(state: ServiceState, job: CompileJob) -> str:
    from repro.compiler import CompilerOptions
    options = CompilerOptions.make(job.level, job.outputs, cse=job.cse,
                                   plan_passes=job.plan_passes)
    return state.plan_cache.key_for(job.source, "MAIN", job.bindings,
                                    options)


def _compile_sync(state: ServiceState, job: CompileJob):
    """Pool-thread compilation under a private metrics context."""
    from repro.compiler import compile_hpf
    from repro.obs import metrics as obs_metrics
    from repro.plan import plan_to_json

    with obs_metrics.use_registry():
        compiled = compile_hpf(job.source, cache=state.plan_cache,
                               **job.compiler_kwargs())
    text = plan_to_json(compiled.plan)
    plan_key = hashlib.sha256(text.encode()).hexdigest()
    return compiled, text, plan_key


async def _compile_shared(state: ServiceState, job: CompileJob):
    """Compile once per identical in-flight request.

    The coalesce key is the plan-cache key, so the dedup horizon is
    exactly the cache's: requests that would hit the same cache entry
    share the same leader.  Returns
    ``(key, compiled, plan_key, coalesced)``.
    """
    key = _compile_key(state, job)

    async def factory():
        return await state.pool.submit(
            lambda: _compile_sync(state, job))

    (compiled, text, plan_key), coalesced = \
        await state.coalescer.run(key, factory)
    state.coalesced_total.inc(
        role="follower" if coalesced else "leader")
    state._remember_plan(key, plan_key, text)
    return key, compiled, plan_key, coalesced


def _report_doc(compiled) -> dict:
    r = compiled.report
    return {
        "level": r.level,
        "overlap_shifts": r.overlap_shifts,
        "full_shifts": r.full_shifts,
        "loop_nests": r.loop_nests,
        "fused_statements": r.fused_statements,
        "temporaries": r.temporaries,
        "temp_bytes_global": r.temp_bytes_global,
        "copies_inserted": r.copies_inserted,
    }


# -- handlers ---------------------------------------------------------------

async def handle_compile(state: ServiceState, doc: object) -> Response:
    job = parse_compile_job(doc)
    key, compiled, plan_key, coalesced = \
        await _compile_shared(state, job)
    out = {
        "kind": "compile", "key": key, "plan_key": plan_key,
        "coalesced": coalesced, "kernel": job.kernel,
        "report": _report_doc(compiled), "plan_url": f"/plan/{key}",
    }
    if job.include_plan:
        out["plan"] = json.loads(state.plan_docs[key])
    if state.ledger is not None:
        state.ledger.append(
            fingerprint=COMPILE_FINGERPRINT, plan_key=plan_key,
            backend="", factors={"level": job.level},
            extra={"route": "/compile", "kernel": job.kernel or "",
                   "coalesced": coalesced})
    return Response.json(out)


def _run_sync(state: ServiceState, job: RunJob, compiled,
              plan_key: str):
    """Pool-thread execution: seeded inputs, scoped codegen options,
    a private metrics registry, and the ledger append.

    Input generation replicates :func:`repro.kernels.run_kernel`
    line-for-line (one ``default_rng(seed)`` drawing
    ``standard_normal`` per entry array in plan order), so a service
    run is bitwise-identical to the same run made directly.
    """
    import numpy as np

    from repro.obs import metrics as obs_metrics

    machine = job.machine.build()
    with obs_metrics.use_registry() as registry:
        rng = np.random.default_rng(job.seed)
        inputs = {
            arr: rng.standard_normal(decl.shape).astype(decl.dtype)
            for arr, decl in compiled.plan.arrays.items()
            if arr in compiled.plan.entry_arrays}
        with _codegen_scope(state, job):
            result = compiled.run(
                machine, inputs=inputs, iterations=job.iterations,
                scalars=job.scalars, backend=job.backend,
                workers=job.workers, profile=job.profile)
    if state.ledger is not None:
        from repro.codegen.options import current_options
        with _codegen_scope(state, job):
            opts = current_options()
        state.ledger.append(
            machine=machine, plan_key=plan_key, backend=job.backend,
            factors={"level": job.compile.level, "tile": opts.tile,
                     "unroll": opts.unroll, "jit": opts.jit,
                     "codegen": opts.factor_fingerprint()},
            metrics=registry.to_dict(),
            extra={"route": "/run",
                   "grid": "x".join(map(str, machine.grid)),
                   "iterations": job.iterations,
                   "kernel": job.compile.kernel or ""})
    return result, registry


def _codegen_scope(state: ServiceState, job: RunJob):
    from contextlib import nullcontext

    overrides = {}
    for name in ("tile", "unroll", "jit"):
        value = getattr(job, name)
        if value is not None:
            overrides[name] = value
    if state.kernel_cache_dir is not None:
        overrides["cache_dir"] = str(state.kernel_cache_dir)
    if not overrides:
        return nullcontext()
    from repro.codegen import codegen_options
    return codegen_options(**overrides)


def _array_doc(arr, mode: str) -> dict:
    import numpy as np

    entry = {"shape": list(arr.shape), "dtype": str(arr.dtype),
             "checksum": float(np.abs(arr).sum())}
    if mode in ("digest", "full"):
        entry["sha256"] = hashlib.sha256(arr.tobytes()).hexdigest()
    if mode == "full":
        entry["data"] = base64.b64encode(arr.tobytes()).decode()
    return entry


async def handle_run(state: ServiceState, doc: object) -> Response:
    job = parse_run_job(doc)
    key, compiled, plan_key, coalesced = \
        await _compile_shared(state, job.compile)
    result, registry = await state.pool.submit(
        lambda: _run_sync(state, job, compiled, plan_key))
    out = {
        "kind": "run", "key": key, "plan_key": plan_key,
        "coalesced": coalesced, "kernel": job.compile.kernel,
        "backend": job.backend, "iterations": job.iterations,
        "seed": job.seed, "report": _report_doc(compiled),
        "summary": result.summary(),
        "scalars": {k: float(v)
                    for k, v in sorted(result.scalars.items())},
        "metrics": registry.to_dict(), "plan_url": f"/plan/{key}",
    }
    if job.arrays != "none":
        out["arrays"] = {name: _array_doc(arr, job.arrays)
                         for name, arr in sorted(result.arrays.items())}
    if job.profile and result.profile is not None:
        from repro.obs import profile_to_json
        result.profile.kernel = job.compile.kernel or "source"
        result.profile.level = job.compile.level
        out["profile"] = json.loads(profile_to_json(result.profile))
    return Response.json(out)


async def handle_plan(state: ServiceState, key: str) -> Response:
    text = state.plan_docs.get(key)
    if text is None:
        return Response.error(
            404, f"no plan under key {key!r}; compile it first")
    # the exact bytes of plan_to_json — the PLAN_SCHEMA_VERSION'd
    # document, reused verbatim
    return Response(body=text.encode())


async def handle_metrics(state: ServiceState) -> Response:
    from repro.obs import prometheus_text
    state.refresh_cache_gauges()
    return Response(
        body=prometheus_text(state.registry).encode(),
        content_type="text/plain; version=0.0.4; charset=utf-8")


async def handle_healthz(state: ServiceState) -> Response:
    return Response.json({
        "kind": "healthz", "status": "ok",
        "pending_jobs": state.pool.pending,
        "max_pending": state.pool.max_pending,
        "inflight_compiles": len(state.coalescer),
        "coalesced": {"leaders": state.coalescer.leaders,
                      "followers": state.coalescer.followers},
        "caches": state.cache_stats(),
        # explicit None test: an empty RunLedger is falsy (__len__)
        "ledger": str(state.ledger.path)
        if state.ledger is not None else None,
    })


async def handle_cache_warm(state: ServiceState, doc: object) -> Response:
    if isinstance(doc, dict) and "jobs" in doc:
        if set(doc) != {"jobs"} or not isinstance(doc["jobs"], list):
            raise JobError("warm body must be a job object or "
                           "{'jobs': [job, ...]}")
        jobs = doc["jobs"]
    else:
        jobs = [doc]
    warmed = []
    for raw in jobs:
        job = parse_compile_job(raw)
        key, _, plan_key, coalesced = await _compile_shared(state, job)
        warmed.append({"key": key, "plan_key": plan_key,
                       "kernel": job.kernel, "coalesced": coalesced})
    return Response.json({"kind": "cache-warm", "warmed": warmed})


async def handle_cache_evict(state: ServiceState,
                             doc: object) -> Response:
    if not isinstance(doc, dict) or \
            ("key" in doc) == (doc.get("all") is True) or \
            not set(doc) <= {"key", "all"}:
        raise JobError(
            "evict body must be {'key': <cache key>} or {'all': true}")
    key = doc.get("key")
    dropped = {"plans": state.plan_cache.invalidate(key)}
    if key is None:
        state.plan_docs.clear()
        dropped["kernels"] = _evict_kernels(state)
    else:
        state.plan_docs.pop(key, None)
    return Response.json({"kind": "cache-evict", "dropped": dropped})


def _evict_kernels(state: ServiceState) -> int:
    """Drop every cached generated-kernel source file."""
    if state.kernel_cache_dir is None \
            or not state.kernel_cache_dir.is_dir():
        return 0
    dropped = 0
    for f in state.kernel_cache_dir.glob("*.py"):
        try:
            f.unlink()
            dropped += 1
        except OSError:
            pass
    return dropped
