"""Bounded worker pool with admission control.

Compilation and execution are CPU-bound (and the parallel backend
forks worker processes), so they must not run on the event loop: jobs
dispatch to a thread pool.  The pool is *bounded twice*: ``workers``
threads execute concurrently, and at most ``max_pending`` jobs may be
admitted (running + queued).  Beyond that the service sheds load —
:class:`PoolBusy` maps to HTTP 429 with a ``Retry-After`` estimated
from an EWMA of recent job durations and the queue depth, so clients
back off for roughly as long as the backlog needs to drain instead of
hammering a saturated server.

Admission state (``_pending``, the EWMA) is touched only from the
event-loop thread — ``submit`` is a coroutine — so it needs no lock.
"""

from __future__ import annotations

import asyncio
import math
import os
import time
from concurrent.futures import ThreadPoolExecutor

#: EWMA smoothing factor for job durations (weight of the newest job).
EWMA_ALPHA = 0.2


class PoolBusy(Exception):
    """Admission control rejected a job; maps to HTTP 429."""

    def __init__(self, pending: int, limit: int,
                 retry_after: int) -> None:
        super().__init__(
            f"worker pool saturated ({pending} jobs pending, "
            f"limit {limit}); retry in ~{retry_after}s")
        self.retry_after = retry_after


class WorkerPool:
    """A bounded :class:`ThreadPoolExecutor` front for blocking jobs."""

    def __init__(self, workers: "int | None" = None,
                 max_pending: "int | None" = None) -> None:
        if workers is None:
            workers = max(1, min(4, os.cpu_count() or 1))
        if workers < 1:
            raise ValueError(f"pool needs >= 1 worker, got {workers}")
        if max_pending is None:
            max_pending = workers * 4
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}")
        self.workers = workers
        self.max_pending = max_pending
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service")
        self._pending = 0
        # seeded with a small plausible duration so the very first
        # rejection still produces a sane Retry-After
        self._ewma_seconds = 0.1

    @property
    def pending(self) -> int:
        """Jobs admitted and not yet finished (running + queued)."""
        return self._pending

    def retry_after(self) -> int:
        """Whole seconds a rejected client should wait: the time for
        the backlog beyond the worker count to drain, at the recent
        per-job rate, floored at 1."""
        backlog = max(0, self._pending - self.workers)
        per_slot = backlog / self.workers + 1
        return max(1, math.ceil(self._ewma_seconds * per_slot))

    async def submit(self, fn):
        """Run ``fn()`` on a pool thread; raises :class:`PoolBusy` when
        the pending cap is reached."""
        if self._pending >= self.max_pending:
            raise PoolBusy(self._pending, self.max_pending,
                           self.retry_after())
        self._pending += 1
        start = time.perf_counter()
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._executor, fn)
        finally:
            self._pending -= 1
            elapsed = time.perf_counter() - start
            self._ewma_seconds += EWMA_ALPHA * (
                elapsed - self._ewma_seconds)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)
