"""In-flight request coalescing: one compilation per cache key.

A burst of identical ``/compile`` (or ``/run``) requests — the same
source, bindings, and compiler options, hence the same plan-cache key —
must cost one compilation, not N.  The plan cache alone can't give
that: every request of the burst misses before the first one finishes,
so all N compile.  The coalescer closes the gap for the in-flight
window: the first request for a key becomes the *leader* and runs the
factory; every request arriving while the leader is still working
becomes a *follower* and awaits the leader's future.  All N requests
receive the same result object (plans are shared, not copied — the
same contract as the plan cache), and the cache's counters record
exactly one miss and one put for the burst.

Failures propagate to the whole cohort: the leader's exception is
stored in the shared future (as a value, so no follower-less failure
trips asyncio's unretrieved-exception warning) and re-raised in every
waiter.  Failed keys are removed immediately — the next request for
the key starts a fresh leader rather than replaying a stale error.

Single-event-loop only: the inflight map is touched exclusively from
coroutines on one loop, so no lock is needed (the await points are all
after the map mutation).
"""

from __future__ import annotations

import asyncio


class Coalescer:
    """Deduplicates concurrent async work by key."""

    def __init__(self) -> None:
        self._inflight: "dict[str, asyncio.Future]" = {}
        #: Requests that ran their factory / piggybacked on one.
        self.leaders = 0
        self.followers = 0

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(self, key: str, factory) -> "tuple[object, bool]":
        """Run ``factory()`` once per concurrently-requested ``key``.

        Returns ``(result, coalesced)`` where ``coalesced`` is True for
        followers that piggybacked on another request's work.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.followers += 1
            status, payload = await existing
            if status == "error":
                raise payload
            return payload, True
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.leaders += 1
        try:
            try:
                value = await factory()
            except BaseException as exc:
                future.set_result(("error", exc))
                raise
            future.set_result(("ok", value))
            return value, False
        finally:
            self._inflight.pop(key, None)
