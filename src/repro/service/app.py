"""The compile-and-run service: a stdlib-asyncio HTTP front door.

No third-party HTTP stack — the container deliberately ships only the
standard library, so the server speaks a minimal, sufficient subset of
HTTP/1.1 over ``asyncio.start_server``: one request per connection
(``Connection: close``), ``Content-Length`` bodies, no chunked
encoding, no pipelining.  That subset is exactly what ``curl`` and
``http.client`` produce, and it keeps the parser small enough to audit.

Routes
------
``POST /compile``      compile a job document; coalesced + cached
``POST /run``          compile (same path) then execute on the worker
                       pool; 429 + ``Retry-After`` under saturation
``GET  /plan/<key>``   the exact ``plan_to_json`` document bytes
``GET  /metrics``      Prometheus text exposition of the service
                       registry (plus cache-counter gauges)
``GET  /healthz``      liveness + queue/coalescer/cache snapshot
``POST /cache/warm``   compile job(s) into the plan cache
``POST /cache/evict``  drop one key or everything, all tiers

Error mapping: malformed HTTP or JSON and invalid job documents are
400s with a JSON error body; compiler/runtime :class:`ReproError`\\ s
are 400s too (the job is wrong, not the server); pool saturation is
429; anything else is a 500 with the traceback on the server's stderr
only.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
import traceback

from repro.errors import ReproError
from repro.service.handlers import (
    Response, ServiceState, handle_cache_evict, handle_cache_warm,
    handle_compile, handle_healthz, handle_metrics, handle_plan,
    handle_run,
)
from repro.service.pool import PoolBusy, WorkerPool
from repro.service.schemas import JobError

#: Request framing limits — far above any legitimate job document.
MAX_BODY_BYTES = 32 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}

#: (method, path) -> handler taking (state, parsed JSON body).
_POST_ROUTES = {
    "/compile": handle_compile,
    "/run": handle_run,
    "/cache/warm": handle_cache_warm,
    "/cache/evict": handle_cache_evict,
}

_KNOWN_PATHS = set(_POST_ROUTES) | {"/metrics", "/healthz", "/plan/"}


class _BadRequest(Exception):
    """Unparseable HTTP framing; maps to 400 before routing."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request; returns ``(method, path, body)`` or ``None``
    on a cleanly closed connection."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _BadRequest("malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    seen = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        seen += len(line)
        if seen > MAX_HEADER_BYTES:
            raise _BadRequest("header section too large", status=413)
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _BadRequest("malformed Content-Length") from None
    if length < 0:
        raise _BadRequest("malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise _BadRequest("request body too large", status=413)
    body = await reader.readexactly(length) if length else b""
    # strip any query string; the service keys everything off the body
    return method, target.split("?", 1)[0], body


def _json_body(body: bytes) -> object:
    try:
        return json.loads(body or b"null")
    except json.JSONDecodeError as exc:
        raise JobError(f"request body is not valid JSON: {exc}") \
            from None


def _route_label(path: str) -> str:
    return "/plan" if path.startswith("/plan/") else path


async def _dispatch(state: ServiceState, method: str, path: str,
                    body: bytes) -> Response:
    if path.startswith("/plan/"):
        if method != "GET":
            return Response.error(405, "plan documents are read-only",
                                  Allow="GET")
        return await handle_plan(state, path[len("/plan/"):])
    if path == "/metrics":
        if method != "GET":
            return Response.error(405, "metrics are read-only",
                                  Allow="GET")
        return await handle_metrics(state)
    if path == "/healthz":
        if method != "GET":
            return Response.error(405, "healthz is read-only",
                                  Allow="GET")
        return await handle_healthz(state)
    handler = _POST_ROUTES.get(path)
    if handler is None:
        return Response.error(
            404, f"no route {path!r}; routes: "
            f"{', '.join(sorted(_KNOWN_PATHS))}")
    if method != "POST":
        return Response.error(405, f"{path} takes POST", Allow="POST")
    return await handler(state, _json_body(body))


async def _handle(state: ServiceState, method: str, path: str,
                  body: bytes) -> Response:
    """Dispatch plus the error-to-status mapping and service metrics."""
    label = _route_label(path)
    state.inflight.inc()
    start = time.perf_counter()
    try:
        response = await _dispatch(state, method, path, body)
    except JobError as exc:
        response = Response.error(400, str(exc))
    except PoolBusy as exc:
        state.rejected_total.inc(route=label)
        response = Response.error(
            429, str(exc), **{"Retry-After": str(exc.retry_after)})
    except ReproError as exc:
        response = Response.error(400, f"{type(exc).__name__}: {exc}")
    except Exception as exc:
        traceback.print_exc(file=sys.stderr)
        response = Response.error(
            500, f"internal error: {type(exc).__name__}: {exc}")
    finally:
        state.inflight.inc(-1)
    state.requests_total.inc(route=label, method=method,
                             status=str(response.status))
    if label in ("/compile", "/run") and response.status == 200:
        state.job_seconds.observe(time.perf_counter() - start,
                                  kind=label.lstrip("/"))
    return response


def _frame(response: Response) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        "Connection: close",
    ]
    lines += [f"{name}: {value}"
              for name, value in response.headers.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + response.body


class ReproService:
    """One server instance: state + listener lifecycle.

    Usage::

        service = ReproService(cache_dir="cache", ledger_path="runs")
        await service.start(port=0)       # 0 = ephemeral
        ...                               # service.port is bound now
        await service.stop()
    """

    def __init__(self, state: "ServiceState | None" = None,
                 **state_kwargs) -> None:
        self.state = state if state is not None \
            else ServiceState(**state_kwargs)
        self._server: "asyncio.base_events.Server | None" = None

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await _read_request(reader)
            except _BadRequest as exc:
                response = Response.error(exc.status, str(exc))
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            else:
                if request is None:
                    return
                response = await _handle(self.state, *request)
            writer.write(_frame(response))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> None:
        # front-door hygiene: a previous coordinator killed mid-run
        # may have leaked segments; sweep them before serving
        from repro.runtime.parallel import reclaim_stale_segments
        reclaim_stale_segments()
        self._server = await asyncio.start_server(self._client, host,
                                                  port)

    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "service not started"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.state.close()

    async def __aenter__(self) -> "ReproService":
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()


def serve(host: str = "127.0.0.1", port: int = 8080,
          cache_dir: "str | None" = None,
          ledger_path: "str | None" = None,
          pool_workers: "int | None" = None,
          max_pending: "int | None" = None) -> int:
    """Blocking entry point for ``python -m repro serve``."""
    pool = None
    if pool_workers is not None or max_pending is not None:
        pool = WorkerPool(workers=pool_workers,
                          max_pending=max_pending)
    service = ReproService(cache_dir=cache_dir,
                           ledger_path=ledger_path, pool=pool)

    async def _main() -> None:
        await service.start(host, port)
        print(f"repro service listening on "
              f"http://{host}:{service.port}",
              file=sys.stderr, flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0
