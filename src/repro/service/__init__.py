"""The compile-and-run service: an HTTP front door for the compiler.

One process serves compilation and execution jobs over plain HTTP
(stdlib asyncio only — see :mod:`repro.service.app` for the wire
protocol and routes).  Identical in-flight compilations coalesce onto
one future (:mod:`repro.service.coalescer`), results persist in the
tiered plan cache, execution runs on a bounded worker pool with
admission control (:mod:`repro.service.pool`), and every job lands in
the run ledger.  Responses embed the repo's existing versioned
documents — plan, metrics, profile — unchanged.

README section "Compile-and-run service" has curl examples; DESIGN.md
records the invariants.
"""

from repro.service.app import ReproService, serve  # noqa: F401
from repro.service.coalescer import Coalescer  # noqa: F401
from repro.service.handlers import Response, ServiceState  # noqa: F401
from repro.service.pool import PoolBusy, WorkerPool  # noqa: F401
from repro.service.schemas import (  # noqa: F401
    ARRAY_MODES, CompileJob, JobError, MachineSpec, RUN_BACKENDS,
    RunJob, SERVICE_SCHEMA, parse_compile_job, parse_run_job,
)
