"""Legacy setup shim so `pip install -e .` works without network access
(the sandbox's pip cannot fetch PEP 517 build dependencies)."""

from setuptools import setup

setup()
