"""Unit tests for the tracer: nesting, counters, JSONL, no-op mode."""

import json

import pytest

from repro.obs import NULL_TRACER, NullTracer, Span, Tracer, coalesce
from repro.obs.tracer import TRACE_SCHEMA


class FakeClock:
    """Deterministic clock: advances 1.0 per call."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tr = Tracer()
        with tr.span("compile") as outer:
            with tr.span("parse"):
                pass
            with tr.span("codegen"):
                pass
        assert [s.name for s in tr.roots] == ["compile"]
        assert [c.name for c in outer.children] == ["parse", "codegen"]

    def test_sibling_roots(self):
        tr = Tracer()
        with tr.span("compile"):
            pass
        with tr.span("execute"):
            pass
        assert [s.name for s in tr.roots] == ["compile", "execute"]

    def test_deep_nesting_and_walk_order(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    pass
            with tr.span("d"):
                pass
        assert [s.name for s in tr.spans()] == ["a", "b", "c", "d"]

    def test_current_tracks_stack(self):
        tr = Tracer()
        assert tr.current is None
        with tr.span("a") as a:
            assert tr.current is a
            with tr.span("b") as b:
                assert tr.current is b
            assert tr.current is a
        assert tr.current is None

    def test_durations_from_clock(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("a"):
            with tr.span("b"):
                pass
        a, b = tr.find("a"), tr.find("b")
        # a: start=1, b: start=2 end=3, a: end=4
        assert a.t_start == 1.0 and a.t_end == 4.0
        assert b.duration == 1.0
        assert a.duration == 3.0

    def test_span_closed_even_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("a"):
                raise RuntimeError("boom")
        assert tr.current is None
        assert tr.find("a").t_end >= tr.find("a").t_start


class TestCounters:
    def test_count_accumulates(self):
        tr = Tracer()
        with tr.span("a") as sp:
            sp.count("messages")
            sp.count("messages")
            sp.count("bytes", 256)
        assert sp.counters == {"messages": 2.0, "bytes": 256.0}

    def test_gauge_overwrites(self):
        tr = Tracer()
        with tr.span("a") as sp:
            sp.gauge("overlap_shifts", 8)
            sp.gauge("overlap_shifts", 4)
        assert sp.counters["overlap_shifts"] == 4.0

    def test_tracer_count_targets_current_span(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                tr.count("x", 3)
        assert tr.find("b").counters == {"x": 3.0}
        assert tr.find("a").counters == {}

    def test_count_outside_any_span_is_noop(self):
        tr = Tracer()
        tr.count("orphan")
        tr.gauge("orphan", 1)
        assert tr.roots == []

    def test_totals_sum_across_tree(self):
        tr = Tracer()
        with tr.span("a") as a:
            a.count("msgs", 1)
            with tr.span("b") as b:
                b.count("msgs", 2)
        with tr.span("c") as c:
            c.count("msgs", 4)
        assert tr.totals() == {"msgs": 7.0}

    def test_attrs_from_span_kwargs(self):
        tr = Tracer()
        with tr.span("op", kind="op", array="U", shift=+1) as sp:
            pass
        assert sp.kind == "op"
        assert sp.attrs == {"array": "U", "shift": 1}


class TestJsonl:
    def make_trace(self) -> Tracer:
        tr = Tracer(clock=FakeClock())
        with tr.span("compile", kind="compile", level="O4") as sp:
            sp.gauge("overlap_shifts", 4)
            with tr.span("pass:normalize", kind="pass") as p:
                p.count("statements", 17)
        with tr.span("execute", kind="execute") as sp:
            sp.count("messages", 16)
        return tr

    def test_every_line_is_json(self):
        text = self.make_trace().to_jsonl()
        lines = text.strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[0] == TRACE_SCHEMA
        assert all(e["type"] in ("trace", "span") for e in events)

    def test_parent_precedes_child(self):
        events = self.make_trace().events()
        seen = set()
        for e in events[1:]:
            if e["parent"] is not None:
                assert e["parent"] in seen
            seen.add(e["id"])

    def test_round_trip_preserves_structure(self):
        tr = self.make_trace()
        back = Tracer.from_jsonl(tr.to_jsonl())
        assert [s.name for s in back.spans()] == \
            [s.name for s in tr.spans()]
        for a, b in zip(back.spans(), tr.spans()):
            assert a.kind == b.kind
            assert a.attrs == b.attrs
            assert a.counters == b.counters
            assert a.t_start == b.t_start
            assert a.t_end == b.t_end
        # and a second round trip is a fixed point
        assert back.to_jsonl() == tr.to_jsonl()

    def test_write_and_read_file(self, tmp_path):
        tr = self.make_trace()
        path = tmp_path / "trace.jsonl"
        tr.write_jsonl(str(path))
        back = Tracer.from_jsonl(path.read_text())
        assert back.totals() == tr.totals()

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            Tracer.from_jsonl('{"type": "trace", "version": 999}\n')

    def test_summary_mentions_names_and_counters(self):
        text = self.make_trace().summary()
        assert "compile" in text
        assert "pass:normalize" in text
        assert "overlap_shifts=4" in text


class TestStableSpanIds:
    def build(self, clock=None) -> Tracer:
        tr = Tracer(clock=clock) if clock else Tracer()
        with tr.span("compile"):
            with tr.span("pass:normalize"):
                pass
            with tr.span("pass:normalize"):
                pass
            with tr.span("codegen"):
                pass
        with tr.span("execute"):
            with tr.span("overlap_shift"):
                pass
            with tr.span("loop_nest"):
                pass
            with tr.span("overlap_shift"):
                pass
        return tr

    def test_ids_are_parent_path_plus_ordinal(self):
        ids = [sid for _, sid, _ in self.build().iter_with_ids()]
        assert ids == [
            "compile#0",
            "compile#0/pass:normalize#0",
            "compile#0/pass:normalize#1",
            "compile#0/codegen#0",
            "execute#0",
            "execute#0/overlap_shift#0",
            "execute#0/loop_nest#0",
            "execute#0/overlap_shift#1",
        ]

    def test_ids_independent_of_wall_clock(self):
        slow = FakeClock()
        slow.t = 1000.0
        a = [sid for _, sid, _ in self.build(FakeClock()).iter_with_ids()]
        b = [sid for _, sid, _ in self.build(slow).iter_with_ids()]
        assert a == b

    def test_repeated_roots_get_ordinals(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("execute"):
                pass
        ids = [sid for _, sid, _ in tr.iter_with_ids()]
        assert ids == ["execute#0", "execute#1", "execute#2"]

    def test_events_carry_stable_ids(self):
        events = self.build().events()
        assert events[0]["version"] == 2
        by_id = {e["id"]: e for e in events[1:]}
        child = by_id["compile#0/pass:normalize#1"]
        assert child["parent"] == "compile#0"
        assert by_id["compile#0"]["parent"] is None

    def test_round_trip_preserves_ids(self):
        tr = self.build(FakeClock())
        back = Tracer.from_jsonl(tr.to_jsonl())
        assert back.events() == tr.events()

    def test_reads_version1_integer_ids(self):
        v1 = "\n".join([
            '{"type": "trace", "version": 1}',
            '{"type": "span", "id": 0, "parent": null, "name": "compile",'
            ' "kind": "compile", "start": 1.0, "end": 4.0, "dur": 3.0,'
            ' "attrs": {}, "counters": {}}',
            '{"type": "span", "id": 1, "parent": 0, "name": "parse",'
            ' "kind": "pass", "start": 2.0, "end": 3.0, "dur": 1.0,'
            ' "attrs": {}, "counters": {}}',
        ]) + "\n"
        back = Tracer.from_jsonl(v1)
        assert [s.name for s in back.spans()] == ["compile", "parse"]
        assert back.find("compile").children[0].name == "parse"
        # re-serializing upgrades to version-2 stable ids
        events = back.events()
        assert events[0]["version"] == 2
        assert events[2]["id"] == "compile#0/parse#0"


class TestNullTracer:
    def test_records_nothing(self):
        tr = NullTracer()
        with tr.span("a", kind="x", attr=1) as sp:
            sp.count("messages", 5)
            sp.gauge("bytes", 10)
            tr.count("more")
        assert tr.roots == []
        assert list(tr.spans()) == []
        assert tr.totals() == {}
        assert tr.events() == [TRACE_SCHEMA]

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_span_is_shared_singleton(self):
        tr = NullTracer()
        assert tr.span("a") is tr.span("b")

    def test_coalesce(self):
        assert coalesce(None) is NULL_TRACER
        tr = Tracer()
        assert coalesce(tr) is tr


class TestSpanHelpers:
    def test_find_raises_keyerror(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        with pytest.raises(KeyError):
            tr.find("missing")
        with pytest.raises(KeyError):
            tr.find("a").find("missing")

    def test_span_find_searches_subtree(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    pass
        assert tr.find("a").find("c").name == "c"

    def test_duration_never_negative(self):
        sp = Span(name="x", t_start=5.0, t_end=1.0)
        assert sp.duration == 0.0
