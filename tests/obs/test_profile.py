"""Communication-profiler tests: collector attribution, per-class
matrices, backend equivalence, serialization round-trips, and the
Chrome-trace export."""

import json

import pytest

from repro.errors import MachineError
from repro.kernels import run_kernel
from repro.machine import Machine
from repro.machine.network import comm_tag, tag_class
from repro.obs import (
    CommProfile, MATRIX_CLASSES, PHASES, ProfileCollector, Tracer,
    chrome_trace, profile_from_json, profile_to_json, read_profile,
    write_profile,
)

LEVELS = ("O0", "O1", "O2", "O3", "O4")
NAMED_KERNELS = ("five_point", "nine_point", "purdue9")


def profiled(kernel="nine_point", level="O4", backend="perpe",
             grid=(2, 2), n=16, iterations=1):
    result = run_kernel(kernel, grid=grid, bindings={"N": n}, level=level,
                        backend=backend, iterations=iterations,
                        profile=True)
    assert result.profile is not None
    return result


class TestTagTaxonomy:
    def test_comm_tag_classes(self):
        assert comm_tag("U", 1, +1) == "halo:U:d1:+1"
        assert comm_tag("U", 2, -1, widened=True) == "rsd:U:d2:-1"
        assert comm_tag("__shiftbuf_U__", 1, +1) == \
            "bufshift:__shiftbuf_U__:d1:+1"
        # buffer prefix wins even for widened slabs
        assert comm_tag("__shiftbuf_U__", 1, +1, widened=True) \
            .startswith("bufshift:")

    def test_tag_class_parses_and_defaults(self):
        assert tag_class("halo:U:d1:+1") == "halo"
        assert tag_class("rsd:U:d2:-1") == "rsd"
        assert tag_class("bufshift:X:d1:+1") == "bufshift"
        assert tag_class("ovl:legacy") == "other"
        assert tag_class("") == "other"

    def test_o4_traffic_is_halo_plus_rsd(self):
        by_class = profiled(level="O4").profile.totals[
            "messages_by_class"]
        assert by_class["halo"] > 0
        assert by_class["rsd"] > 0
        assert by_class["bufshift"] == 0
        assert by_class["other"] == 0

    def test_o0_traffic_is_all_bufshift(self):
        by_class = profiled(level="O0").profile.totals[
            "messages_by_class"]
        assert by_class["bufshift"] > 0
        assert by_class["halo"] == 0
        assert by_class["rsd"] == 0


class TestMatrix:
    def test_matrix_counts_match_report(self):
        result = profiled()
        profile = result.profile
        total = sum(map(sum, profile.pair_matrix(key="messages")))
        assert total + profile.totals["messages_by_class"].get(
            "allreduce", 0) <= result.report.messages
        # nine_point has no reductions: every message is in the log
        assert total == result.report.messages
        assert sum(map(sum, profile.pair_matrix(key="bytes"))) == \
            result.report.message_bytes

    def test_reduction_logs_allreduce_butterfly(self):
        """Reduction collectives appear in the matrix: ceil(log2 4) = 2
        rounds x 4 PEs x 8 bytes per SUM, and the matrix total still
        equals the report's message counter."""
        import numpy as np

        from repro.compiler import compile_hpf

        source = ("      REAL, DIMENSION(N,N) :: A\n"
                  "!HPF$ DISTRIBUTE A(BLOCK,BLOCK)\n"
                  "      S = SUM(A)\n"
                  "      A = A + S * 0.001\n")
        compiled = compile_hpf(source, bindings={"N": 16}, level="O4",
                               outputs={"A"})
        machine = Machine(grid=(2, 2), keep_message_log=True)
        result = compiled.run(machine, inputs={"A": np.ones((16, 16))},
                              profile=True)
        by_class = result.profile.totals["messages_by_class"]
        assert by_class["allreduce"] == 8  # 2 rounds x 4 PEs
        assert result.profile.totals["bytes_by_class"]["allreduce"] \
            == 64
        total = sum(map(sum, result.profile.pair_matrix(
            key="messages")))
        assert total == result.report.messages

    def test_matrix_diagonal_is_empty(self):
        # self-sends are priced as copies, never logged as messages
        profile = profiled(grid=(2, 1)).profile
        m = profile.pair_matrix()
        for pe in range(profile.npes):
            assert m[pe][pe] == 0

    def test_neighbors_only_on_2x2(self):
        profile = profiled().profile
        m = profile.pair_matrix()
        # on a 2x2 grid every PE's traffic goes to grid neighbors only
        # (rank 0 <-> {1, 2}, never the diagonal partner 3)
        assert m[0][3] == 0 and m[3][0] == 0
        assert m[1][2] == 0 and m[2][1] == 0
        assert m[0][1] > 0 and m[0][2] > 0

    def test_all_classes_always_present(self):
        profile = profiled().profile
        assert set(profile.matrix) == set(MATRIX_CLASSES)
        for cls_matrix in profile.matrix.values():
            assert len(cls_matrix["messages"]) == profile.npes
            assert len(cls_matrix["bytes"]) == profile.npes


class TestTimeline:
    def test_phases_cover_the_report(self):
        result = profiled()
        profile = result.profile
        report = result.report
        for pe in range(profile.npes):
            ph = profile.phase_seconds(pe)
            assert set(ph) == set(PHASES)
            assert ph["comm"] == pytest.approx(
                report.pe_comm_times[pe])
            assert ph["copy"] == pytest.approx(
                report.pe_copy_times[pe])
            # compute is clamped >= 0 per op, so the sum can only
            # exceed the report's residual (never undershoot)
            residual = report.pe_times[pe] - report.pe_comm_times[pe] \
                - report.pe_copy_times[pe]
            assert ph["compute"] >= residual - 1e-12

    def test_segments_are_ordered_and_disjoint(self):
        profile = profiled(level="O0").profile
        for pe in range(profile.npes):
            t = 0.0
            for seg in profile.timeline[pe]:
                assert seg["t0"] == pytest.approx(t)
                assert seg["t1"] > seg["t0"]
                assert seg["phase"] in PHASES
                t = seg["t1"]

    def test_o0_timeline_has_copy_phase(self):
        profile = profiled(level="O0").profile
        assert profile.phase_seconds(0)["copy"] > 0

    def test_iterations_scale_the_timeline(self):
        one = profiled(iterations=1).profile.phase_seconds(0)
        two = profiled(iterations=2).profile.phase_seconds(0)
        assert two["comm"] == pytest.approx(2 * one["comm"])


class TestValidation:
    def test_rows_cover_comm_and_compute_ops(self):
        profile = profiled().profile
        rows = profile.validation["rows"]
        names = {r["name"] for r in rows}
        assert "overlap_shift" in names
        assert "loop_nest" in names
        for row in rows:
            assert row["modelled_s"] >= 0.0
            assert row["wall_s"] >= 0.0

    def test_summary_statistics_are_finite(self):
        val = profiled().profile.validation
        assert val["scale_wall_per_modelled"] > 0.0
        assert val["mape_pct"] >= 0.0


class TestSelfTimeAttribution:
    @pytest.mark.parametrize("kernel", NAMED_KERNELS)
    @pytest.mark.parametrize("level", ("O0", "O4"))
    def test_self_times_reconstruct_the_report(self, kernel, level):
        """Summing every op's self per-PE time reconstructs the cost
        report exactly — containers (DO loops, overlapped regions) own
        only the cost they charge directly, so nothing double-counts.
        (These kernels have no reductions and no hidden-credit clamp.)
        """
        result = profiled(kernel=kernel, level=level)
        profile = result.profile
        report = result.report
        tl_total = [sum(s["t1"] - s["t0"] for s in profile.timeline[pe])
                    for pe in range(profile.npes)]
        for pe in range(profile.npes):
            assert tl_total[pe] == pytest.approx(report.pe_times[pe])


class TestBackendEquivalence:
    @pytest.mark.parametrize("kernel", NAMED_KERNELS)
    @pytest.mark.parametrize("level", LEVELS)
    def test_matrices_bit_identical(self, kernel, level):
        profiles = {}
        logs = {}
        for backend in ("perpe", "vectorized"):
            result = profiled(kernel=kernel, level=level,
                              backend=backend)
            profiles[backend] = result.profile
        p, v = profiles["perpe"], profiles["vectorized"]
        assert p.matrix == v.matrix
        assert p.totals["messages_by_class"] == \
            v.totals["messages_by_class"]
        assert p.totals["bytes_by_class"] == v.totals["bytes_by_class"]

    def test_message_logs_identically_tagged(self):
        logs = {}
        for backend in ("perpe", "vectorized"):
            machine = Machine(grid=(2, 2), keep_message_log=True)
            run_kernel("nine_point", bindings={"N": 16}, level="O4",
                       backend=backend, machine=machine)
            logs[backend] = sorted(
                (m.src, m.dst, m.nbytes, m.tag)
                for m in machine.network.log)
        assert logs["perpe"] == logs["vectorized"]

    def test_timelines_identical(self):
        p = profiled(backend="perpe").profile
        v = profiled(backend="vectorized").profile
        assert p.timeline == v.timeline


class TestSerialization:
    def test_dict_round_trip_is_exact(self):
        profile = profiled().profile
        back = CommProfile.from_dict(profile.to_dict())
        assert back.to_dict() == profile.to_dict()
        assert back.grid == profile.grid
        assert back.matrix == profile.matrix

    def test_json_round_trip_is_exact(self):
        profile = profiled(level="O0").profile
        back = profile_from_json(profile_to_json(profile))
        assert back.to_dict() == profile.to_dict()
        # a second trip is a fixed point
        assert profile_to_json(back) == profile_to_json(profile)

    def test_json_document_is_versioned(self):
        doc = json.loads(profile_to_json(profiled().profile))
        assert doc["type"] == "comm_profile"
        assert doc["version"] == 1

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            profile_from_json('{"type": "trace", "version": 2}')
        with pytest.raises(ValueError):
            profile_from_json(
                '{"type": "comm_profile", "version": 99, "profile": {}}')

    def test_file_round_trip(self, tmp_path):
        profile = profiled().profile
        path = tmp_path / "profile.json"
        write_profile(profile, str(path))
        back = read_profile(str(path))
        assert back.to_dict() == profile.to_dict()


class TestChromeTrace:
    def test_one_track_per_pe(self):
        profile = profiled(grid=(2, 2)).profile
        doc = chrome_trace(profile)
        events = doc["traceEvents"]
        thread_names = {e["tid"]: e["args"]["name"] for e in events
                        if e.get("name") == "thread_name"
                        and e["pid"] == 1}
        assert set(thread_names) == {0, 1, 2, 3}
        assert thread_names[0].startswith("PE 0")

    def test_events_carry_phase_categories(self):
        doc = chrome_trace(profiled().profile)
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert cats <= set(PHASES)
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                assert e["ts"] >= 0.0
                assert e["dur"] > 0.0

    def test_compile_track_from_tracer(self):
        tracer = Tracer()
        result = run_kernel("nine_point", bindings={"N": 16},
                            level="O4", tracer=tracer, profile=True)
        doc = chrome_trace(result.profile, tracer=tracer)
        compile_events = [e for e in doc["traceEvents"]
                          if e["pid"] == 0 and e["ph"] == "X"]
        names = {e["name"] for e in compile_events}
        assert "compile" in names
        assert any(n.startswith("pass:") for n in names)
        # stable span ids ride along in args
        ids = {e["args"]["id"] for e in compile_events}
        assert "compile#0" in ids

    def test_golden_deterministic_output(self):
        """Modelled time is deterministic, so two runs of the same
        kernel serialize to the byte-identical Chrome document."""
        docs = [json.dumps(chrome_trace(profiled().profile),
                           sort_keys=True) for _ in range(2)]
        assert docs[0] == docs[1]

    def test_loads_as_json_object_format(self, tmp_path):
        from repro.obs import write_chrome_trace
        profile = profiled().profile
        path = tmp_path / "chrome.json"
        write_chrome_trace(profile, str(path))
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"


class TestCollectorErrors:
    def test_requires_message_log(self):
        machine = Machine(grid=(2, 2), keep_message_log=False)
        with pytest.raises(MachineError, match="keep_message_log"):
            ProfileCollector(machine)

    def test_execute_profile_requires_message_log(self):
        machine = Machine(grid=(2, 2), keep_message_log=False)
        with pytest.raises(MachineError, match="keep_message_log"):
            run_kernel("nine_point", bindings={"N": 16},
                       machine=machine, profile=True)

    def test_profile_off_by_default(self):
        result = run_kernel("nine_point", bindings={"N": 16})
        assert result.profile is None


class TestCommFreeValidation:
    """Regression: a plan that models zero seconds (nothing to
    communicate or charge) used to divide by ``sum_modelled == 0`` in
    the validation summary.  The scale and error statistics must be
    reported as absent — ``None`` in the document, ``n/a`` in the text
    report — never as a crash or a bogus 0.0."""

    def _comm_free(self):
        from repro.machine.cost_model import CostModel
        machine = Machine(
            grid=(1, 1), keep_message_log=True,
            cost_model=CostModel(flop=0.0, copy_elem=0.0, mem_load=0.0,
                                 cached_load=0.0, store=0.0,
                                 loop_overhead=0.0))
        return run_kernel("five_point", bindings={"N": 12}, level="O4",
                          machine=machine, profile=True)

    def test_scale_and_mape_absent(self):
        val = self._comm_free().profile.validation
        assert val["scale_wall_per_modelled"] is None
        assert val["mape_pct"] is None
        assert val["rows"], "wall-clock rows should still be recorded"

    def test_text_report_prints_na(self):
        from repro.analysis.report import describe_profile
        text = describe_profile(self._comm_free().profile)
        assert "n/a (no modelled time)" in text
        assert "weighted abs error" not in text

    def test_json_round_trip_preserves_none(self):
        profile = self._comm_free().profile
        revived = profile_from_json(profile_to_json(profile))
        assert revived.validation["scale_wall_per_modelled"] is None
        assert revived.validation["mape_pct"] is None

    def test_modelled_time_keeps_statistics(self):
        # the normal path still produces a positive scale (guards the
        # fix from over-reaching)
        val = profiled().profile.validation
        assert val["scale_wall_per_modelled"] > 0.0
        assert val["mape_pct"] >= 0.0
