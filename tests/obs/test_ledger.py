"""Run-ledger tests: atomic concurrent appends, corrupt-line recovery,
fingerprint keying, and schema versioning."""

import json
import multiprocessing as mp
import os

import pytest

from repro.machine import Machine
from repro.obs.ledger import LEDGER_SCHEMA, RunLedger


@pytest.fixture
def path(tmp_path):
    return tmp_path / "ledger.jsonl"


class TestAppend:
    def test_basic_record(self, path):
        ledger = RunLedger(path)
        rec = ledger.append(fingerprint="fp1", plan_key="abc",
                            backend="perpe",
                            factors={"level": "O4"},
                            metrics={"type": "metrics", "version": 1,
                                     "metrics": []},
                            timestamp=123.0)
        assert rec["type"] == "run" and rec["version"] == 1
        assert rec["timestamp"] == 123.0
        got = ledger.records()
        assert got == [rec]

    def test_machine_wins_over_fingerprint(self, path):
        machine = Machine(grid=(2, 2))
        ledger = RunLedger(path)
        rec = ledger.append(machine=machine, fingerprint="ignored")
        assert rec["fingerprint"] == machine.fingerprint()

    def test_missing_fingerprint_raises(self, path):
        with pytest.raises(ValueError, match="fingerprint"):
            RunLedger(path).append(plan_key="x")

    def test_creates_parent_dirs(self, tmp_path):
        nested = tmp_path / "a" / "b" / "ledger.jsonl"
        RunLedger(nested).append(fingerprint="fp")
        assert nested.exists()

    def test_timestamp_defaults_to_now(self, path):
        rec = RunLedger(path).append(fingerprint="fp")
        assert rec["timestamp"] > 1.5e9

    def test_extra_fields(self, path):
        ledger = RunLedger(path)
        ledger.append(fingerprint="fp", extra={"grid": "2x2"})
        assert ledger.records()[0]["extra"] == {"grid": "2x2"}


class TestRead:
    def test_missing_file_is_empty(self, path):
        ledger = RunLedger(path)
        assert ledger.records() == []
        assert len(ledger) == 0
        assert ledger.latest() is None

    def test_corrupt_trailing_line_recovery(self, path):
        ledger = RunLedger(path)
        ledger.append(fingerprint="fp", plan_key="k1")
        ledger.append(fingerprint="fp", plan_key="k2")
        # simulate a writer killed mid-write: torn trailing line
        with open(path, "a") as f:
            f.write('{"type": "run", "version": 1, "fi')
        records = ledger.records()
        assert [r["plan_key"] for r in records] == ["k1", "k2"]
        assert ledger.corrupt_lines == 1
        # later appends land on a fresh line and stay readable
        ledger.append(fingerprint="fp", plan_key="k3")
        records = ledger.records()
        assert [r["plan_key"] for r in records] == ["k1", "k2", "k3"]
        assert ledger.corrupt_lines == 1

    def test_junk_and_non_dict_lines_skipped(self, path):
        path.write_text('not json\n[1, 2]\n"str"\n'
                        '{"type": "other", "version": 1}\n')
        ledger = RunLedger(path)
        assert ledger.records() == []
        assert ledger.corrupt_lines == 4

    def test_unknown_version_skipped_not_error(self, path):
        ledger = RunLedger(path)
        ledger.append(fingerprint="fp", plan_key="old")
        future = dict(LEDGER_SCHEMA, version=999, fingerprint="fp",
                      plan_key="new")
        with open(path, "a") as f:
            f.write(json.dumps(future) + "\n")
        records = ledger.records()
        assert [r["plan_key"] for r in records] == ["old"]
        assert ledger.skipped_versions == 1
        assert ledger.corrupt_lines == 0

    def test_blank_lines_ignored(self, path):
        ledger = RunLedger(path)
        ledger.append(fingerprint="fp")
        with open(path, "a") as f:
            f.write("\n   \n")
        assert len(ledger.records()) == 1
        assert ledger.corrupt_lines == 0


class TestFingerprintKeying:
    def test_filtering_and_counts(self, path):
        ledger = RunLedger(path)
        for i in range(3):
            ledger.append(fingerprint="m1", plan_key=f"a{i}",
                          timestamp=float(i))
        ledger.append(fingerprint="m2", plan_key="b0", timestamp=10.0)
        assert len(ledger.records("m1")) == 3
        assert len(ledger.records("m2")) == 1
        assert ledger.records("m3") == []
        assert ledger.fingerprints() == {"m1": 3, "m2": 1}
        assert ledger.latest("m1")["plan_key"] == "a2"
        assert ledger.latest()["plan_key"] == "b0"

    def test_same_machine_same_key(self, path):
        ledger = RunLedger(path)
        ledger.append(machine=Machine(grid=(2, 2)))
        ledger.append(machine=Machine(grid=(2, 2)))
        ledger.append(machine=Machine(grid=(4, 1)))
        counts = ledger.fingerprints()
        assert sorted(counts.values()) == [1, 2]


class TestReaderWriterRace:
    """Readers racing a live O_APPEND writer observe whole lines only,
    and a torn tail left by a dead writer is skipped exactly once —
    one corrupt line, regardless of how many healed records follow or
    how many times the file is re-read."""

    def test_reader_racing_live_writer_sees_whole_records_only(
            self, path):
        total = 120
        method = "fork" if "fork" in mp.get_all_start_methods() \
            else "spawn"
        ctx = mp.get_context(method)
        writer = ctx.Process(target=_append_worker,
                             args=(str(path), 0, total))
        writer.start()
        try:
            import time
            reader = RunLedger(path)
            observed = 0
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                records = reader.records()
                # every record a mid-write read returns is complete
                # and well-formed; a partially flushed line may hide
                # the newest record but can never corrupt the view
                assert reader.corrupt_lines == 0
                assert len(records) >= observed, \
                    "records went backwards under a racing writer"
                observed = len(records)
                for record in records:
                    assert record["fingerprint"] == "w0"
                    assert record["metrics"]["pad"]
                if observed >= total:
                    break
        finally:
            writer.join(timeout=30)
        assert writer.exitcode == 0
        assert len(RunLedger(path).records()) == total

    def test_torn_tail_skipped_exactly_once(self, path):
        ledger = RunLedger(path)
        ledger.append(fingerprint="fp", plan_key="before")
        # a writer died mid-write: unterminated, unparseable tail
        with open(path, "ab") as f:
            f.write(b'{"type": "run", "version": 1, "fingerp')
        reader = RunLedger(path)
        assert [r["plan_key"] for r in reader.records()] == ["before"]
        assert reader.corrupt_lines == 1

        # healing appends start fresh lines; the torn fragment stays
        # one corrupt line, not one per subsequent record or re-read
        ledger.append(fingerprint="fp", plan_key="after-1")
        ledger.append(fingerprint="fp", plan_key="after-2")
        for _ in range(3):
            records = reader.records()
            assert [r["plan_key"] for r in records] == \
                ["before", "after-1", "after-2"]
            assert reader.corrupt_lines == 1


def _append_worker(path_str: str, wid: int, n: int) -> None:
    ledger = RunLedger(path_str)
    for i in range(n):
        ledger.append(fingerprint=f"w{wid}", plan_key=f"{wid}:{i}",
                      metrics={"pad": "x" * 512})


class TestConcurrentAppends:
    def test_multiprocess_appends_one_durable_line_each(self, path):
        """N processes x M appends each -> N*M whole lines, no torn or
        spliced records (single O_APPEND write per record)."""
        nproc, per = 4, 25
        method = "fork" if "fork" in mp.get_all_start_methods() \
            else "spawn"
        ctx = mp.get_context(method)
        procs = [ctx.Process(target=_append_worker,
                             args=(str(path), wid, per))
                 for wid in range(nproc)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)

        ledger = RunLedger(path)
        records = ledger.records()
        assert ledger.corrupt_lines == 0
        assert len(records) == nproc * per
        keys = {r["plan_key"] for r in records}
        assert keys == {f"{w}:{i}" for w in range(nproc)
                        for i in range(per)}
        counts = ledger.fingerprints()
        assert counts == {f"w{w}": per for w in range(nproc)}
        # every raw line is intact JSON (no interleaving inside lines)
        raw = path.read_text().splitlines()
        assert len(raw) == nproc * per
        for line in raw:
            json.loads(line)
