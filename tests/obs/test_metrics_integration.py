"""End-to-end instrumentation tests: every layer publishes into one
registry, the invariant series agree bitwise across all four backends,
and the disabled path stays a no-op."""

import pytest

from repro.compiler import PlanCache, compile_hpf
from repro.kernels import KERNELS, run_kernel
from repro.machine import Machine
from repro.obs import metrics as m
from repro.testing import (
    backend_equivalence_check, preferred_test_jit, random_inputs,
    random_program,
)

FIVE_POINT = KERNELS["five_point"]


def instrumented_run(backend="perpe", registry=None, **kwargs):
    with m.use_registry(registry) as reg:
        result = run_kernel("five_point", grid=(2, 2),
                            bindings={"N": 8}, backend=backend,
                            **kwargs)
    return reg, result


class TestLayerCoverage:
    def test_compiler_phases(self):
        with m.use_registry() as reg:
            compile_hpf(FIVE_POINT.source, bindings={"N": 8},
                        outputs=set(FIVE_POINT.outputs))
        hist = reg.get("repro_compile_phase_seconds")
        phases = {k[0][1] for k, _ in hist.samples()}
        assert {"parse", "passes", "codegen", "total"} <= phases
        assert not hist.deterministic
        assert reg.get("repro_compiles_total").value(level="O4") == 1.0
        ops = reg.get("repro_compile_plan_ops_total")
        assert ops.value(kind="loop_nest") >= 1.0

    def test_plan_cache_events(self):
        cache = PlanCache()
        with m.use_registry() as reg:
            for _ in range(3):
                compile_hpf(FIVE_POINT.source, bindings={"N": 8},
                            outputs=set(FIVE_POINT.outputs),
                            cache=cache)
        c = reg.get("repro_cache_events_total")
        assert c.value(cache="plan-memory", event="miss") == 1.0
        assert c.value(cache="plan-memory", event="hit") == 2.0
        assert cache.stats.snapshot()["hits"] == 2.0

    def test_executor_series(self):
        reg, result = instrumented_run("perpe", iterations=2)
        events = reg.get("repro_exec_events_total")
        assert events.invariant
        assert events.value(event="messages") == result.report.messages
        assert events.value(event="loop_points") == \
            result.report.loop_points
        modelled = reg.get("repro_exec_modelled_seconds_total")
        assert modelled.value() == result.modelled_time
        wall = reg.get("repro_exec_wall_seconds")
        assert not wall.deterministic
        assert wall.value(backend="perpe")["count"] == 1
        assert reg.get("repro_exec_runs_total") \
            .value(backend="perpe") == 1.0
        nest = reg.get("repro_nest_wall_seconds")
        assert nest.value(backend="perpe", kernel="interp")["count"] > 0

    def test_vectorized_nest_label(self):
        reg, _ = instrumented_run("vectorized")
        nest = reg.get("repro_nest_wall_seconds")
        assert nest.value(backend="vectorized", kernel="slab")["count"] > 0

    def test_compiled_jit_and_nest_series(self):
        from repro.codegen import cache as kcache
        from repro.codegen import codegen_options
        kcache.clear_modules()
        with codegen_options(jit=preferred_test_jit()):
            reg, _ = instrumented_run("compiled")
        jit = reg.get("repro_jit_materialize_seconds")
        assert jit is not None and not jit.deterministic
        nests = reg.get("repro_codegen_nests_total")
        assert sum(v for _, v in nests.samples()) >= 1.0
        # compiled backend ran native kernels and/or slab fallbacks
        nest = reg.get("repro_nest_wall_seconds")
        backends = {dict(k).get("backend") for k, _ in nest.samples()}
        assert "compiled" in backends

    def test_parallel_series(self):
        reg, _ = instrumented_run("parallel", workers=2)
        waits = reg.get("repro_parallel_barrier_waits")
        assert waits.value(worker="0") > 0
        assert waits.value(worker="1") == waits.value(worker="0")
        assert reg.get("repro_parallel_workers").value() == 2.0
        wall = reg.get("repro_parallel_barrier_wait_seconds")
        assert not wall.deterministic and not wall.invariant


class TestZeroOverheadWhenDisabled:
    def test_null_registry_stays_empty(self):
        assert m.get_registry() is m.NULL_REGISTRY
        run_kernel("five_point", grid=(2, 2), bindings={"N": 8})
        assert m.get_registry().metrics() == []

    def test_executor_caches_disabled_handle(self):
        from repro.plan import Plan
        from repro.runtime.executor import _Exec
        compiled = compile_hpf(FIVE_POINT.source, bindings={"N": 8},
                               outputs=set(FIVE_POINT.outputs))
        ex = _Exec(compiled.plan, Machine(grid=(2, 2)), None, True)
        assert ex._nest_wall is None  # hot loop skips timing entirely
        with m.use_registry():
            ex2 = _Exec(compiled.plan, Machine(grid=(2, 2)), None, True)
            assert ex2._nest_wall is not None


class TestBackendInvariance:
    def test_equivalence_check_compares_metrics(self):
        program = random_program(7)
        inputs = random_inputs(7, program)
        backend_equivalence_check(program, inputs, levels=("O4",))

    def test_divergent_invariant_metric_detected(self):
        """Seeding one backend's registry with a stray invariant series
        must trip the equivalence assertion."""
        program = random_program(7)
        inputs = random_inputs(7, program)

        class Poisoned(m.MetricsRegistry):
            count = 0

            def __init__(self):
                super().__init__()
                Poisoned.count += 1
                if Poisoned.count == 2:  # second backend in the sweep
                    self.counter("repro_poison_total",
                                 invariant=True).inc()

        orig = m.MetricsRegistry
        m.MetricsRegistry = Poisoned
        try:
            with pytest.raises(AssertionError,
                               match="invariant metric series"):
                backend_equivalence_check(program, inputs,
                                          levels=("O4",))
        finally:
            m.MetricsRegistry = orig


class TestDescribeMetrics:
    def test_renders_every_family(self):
        from repro.analysis.report import describe_metrics
        reg, _ = instrumented_run("perpe")
        text = describe_metrics(reg)
        assert "repro_exec_events_total" in text
        assert "backend-invariant" in text
        assert "wall-clock" in text
        assert describe_metrics(m.MetricsRegistry()) == \
            "no metrics recorded"
