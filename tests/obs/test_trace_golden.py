"""Golden-trace tests: compile PURDUE_PROBLEM9 at O0-O4 and check the
trace's per-pass counters against the paper's figures.

The numbers pinned here are exactly the ones the paper's argument turns
on: Problem 9 has 8 CSHIFTs (Figure 3), the offset-array pass converts
all 8 to OVERLAP_SHIFTs (Figure 13), and communication unioning merges
them down to 4 — one message per subgrid face (Figure 15) — halving
message count (section 4.1 / Figure 17's "message vectorization" step).
"""

import json

import numpy as np
import pytest

from repro import kernels
from repro.compiler import compile_hpf
from repro.machine import Machine
from repro.obs import Tracer

PIPELINE_O4 = ["pass:normalize", "pass:offset-arrays",
               "pass:context-partition", "pass:comm-union"]


def compile_traced(level: str) -> Tracer:
    tracer = Tracer()
    compile_hpf(kernels.PURDUE_PROBLEM9, bindings={"N": 32}, level=level,
                outputs={"T"}, tracer=tracer)
    return tracer


def pass_names(tracer: Tracer) -> list[str]:
    return [s.name for s in tracer.find("compile").children
            if s.kind == "pass"]


class TestPassOrdering:
    def test_o4_runs_the_paper_pipeline_in_order(self):
        assert pass_names(compile_traced("O4")) == PIPELINE_O4

    def test_o3_runs_the_same_passes(self):
        # O3 vs O4 differ only in codegen-side memory optimization
        assert pass_names(compile_traced("O3")) == PIPELINE_O4

    def test_lower_levels_truncate_the_pipeline(self):
        assert pass_names(compile_traced("O0")) == PIPELINE_O4[:1]
        assert pass_names(compile_traced("O1")) == PIPELINE_O4[:2]
        assert pass_names(compile_traced("O2")) == PIPELINE_O4[:3]

    def test_every_pass_span_is_timed(self):
        for span in compile_traced("O4").find("compile").children:
            assert span.t_end >= span.t_start


class TestPerPassCounters:
    def test_offset_arrays_converts_all_eight_shifts(self):
        span = compile_traced("O4").find("pass:offset-arrays")
        assert span.counters["shifts_converted"] == 8
        assert span.counters["ir.shift_intrinsics"] == 0
        assert span.counters["ir.shift_intrinsics_delta"] == -8
        assert span.counters["ir.overlap_shifts"] == 8
        # RIP/RIN die once uses read through U's overlap area (sec. 4.2)
        assert span.counters["dead_arrays"] == 1

    def test_comm_union_merges_eight_shifts_into_four(self):
        span = compile_traced("O4").find("pass:comm-union")
        assert span.counters["shifts_before"] == 8
        assert span.counters["shifts_after"] == 4
        assert span.counters["ir.overlap_shifts"] == 4
        assert span.counters["ir.overlap_shifts_delta"] == -4

    def test_compile_root_counters_match_figure17_structure(self):
        expect = {
            #        overlap, full, nests
            "O0": (0, 8, 7),
            "O1": (8, 0, 7),
            "O2": (8, 0, 1),
            "O3": (4, 0, 1),
            "O4": (4, 0, 1),
        }
        for level, (overlap, full, nests) in expect.items():
            root = compile_traced(level).find("compile")
            assert root.counters["overlap_shifts"] == overlap, level
            assert root.counters["full_shifts"] == full, level
            assert root.counters["loop_nests"] == nests, level

    def test_codegen_fuses_all_seven_statements_at_o2_plus(self):
        tracer = compile_traced("O4")
        assert tracer.find("codegen").counters["statements_fused"] == 7


class TestExecuteTrace:
    def run_traced(self, level: str) -> Tracer:
        tracer = Tracer()
        compiled = compile_hpf(kernels.PURDUE_PROBLEM9,
                               bindings={"N": 32}, level=level,
                               outputs={"T"}, tracer=tracer)
        machine = Machine(grid=(2, 2))
        rng = np.random.default_rng(0)
        inputs = {"U": rng.standard_normal((32, 32)).astype(np.float32)}
        compiled.run(machine, inputs=inputs, tracer=tracer)
        return tracer

    def test_o4_executes_four_overlap_shifts_and_one_nest(self):
        ops = [s.name for s in self.run_traced("O4").find("execute")
               .children if s.kind == "op"]
        assert ops.count("overlap_shift") == 4
        assert ops.count("loop_nest") == 1
        assert "full_cshift" not in ops

    def test_o0_executes_eight_full_shifts(self):
        ops = [s.name for s in self.run_traced("O0").find("execute")
               .children if s.kind == "op"]
        assert ops.count("full_cshift") == 8
        assert ops.count("loop_nest") == 7

    def test_unioning_halves_messages(self):
        msgs = {level: self.run_traced(level).find("execute")
                .counters["total_messages"] for level in ("O2", "O3")}
        assert msgs == {"O2": 32, "O3": 16}

    def test_op_spans_charge_cost_deltas(self):
        execute = self.run_traced("O4").find("execute")
        shifts = [s for s in execute.children
                  if s.name == "overlap_shift"]
        for span in shifts:
            assert span.counters["messages"] == 4  # one per PE on 2x2
            assert span.counters["bytes"] > 0
            assert span.counters["overlap_cells"] > 0
        nest = execute.find("loop_nest")
        assert nest.counters["compute_points"] == 32 * 32

    def test_offset_arrays_eliminate_copies(self):
        o0 = self.run_traced("O0").find("execute").counters
        o1 = self.run_traced("O1").find("execute").counters
        assert o0["total_copy_elements"] > 0
        assert o1["total_copy_elements"] == 0


class TestJsonlCoverage:
    def test_jsonl_covers_every_pass_and_plan_op(self, tmp_path):
        tracer = Tracer()
        compiled = compile_hpf(kernels.PURDUE_PROBLEM9,
                               bindings={"N": 32}, level="O4",
                               outputs={"T"}, tracer=tracer)
        machine = Machine(grid=(2, 2))
        compiled.run(machine, tracer=tracer)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        names = [e["name"] for e in events if e["type"] == "span"]
        for name in PIPELINE_O4:
            assert name in names
        executed = sum(1 for _ in compiled.plan.walk_ops())
        op_spans = [e for e in events
                    if e["type"] == "span" and e["kind"] == "op"]
        assert len(op_spans) == executed
        back = Tracer.from_jsonl(path.read_text())
        assert back.find("pass:comm-union").counters["shifts_after"] == 4

    def test_jsonl_ids_are_stable_paths(self):
        """Two identical compile+run sessions export identical span ids
        (the version-2 stable-id contract), and the ids spell out the
        pass pipeline."""
        def session() -> list[str]:
            tracer = Tracer()
            compiled = compile_hpf(kernels.PURDUE_PROBLEM9,
                                   bindings={"N": 32}, level="O4",
                                   outputs={"T"}, tracer=tracer)
            compiled.run(Machine(grid=(2, 2)), tracer=tracer)
            return [e["id"] for e in tracer.events()[1:]]

        first, second = session(), session()
        assert first == second
        assert "compile#0" in first
        assert "compile#0/pass:comm-union#0" in first
        assert "execute#0/overlap_shift#3" in first  # 4 unioned shifts
        assert "execute#0/overlap_shift#4" not in first
