"""Chrome-trace export degradation tests: op-less profiles, truncated
timeline rows, field-less worker events, and the compiled backend's
export path must all yield valid trace documents, never crash."""

import json

import pytest

from repro.kernels import run_kernel
from repro.obs import CommProfile, chrome_trace
from repro.obs.export import EXEC_PID, WORKERS_PID
from repro.obs.profile import MATRIX_CLASSES


def _empty_matrix(npes):
    return {c: {"messages": [[0] * npes for _ in range(npes)],
                "bytes": [[0] * npes for _ in range(npes)]}
            for c in MATRIX_CLASSES}


def make_profile(npes=4, timeline=None, worker_tracks=None):
    return CommProfile(
        grid=(2, 2), npes=npes, backend="perpe",
        matrix=_empty_matrix(npes),
        timeline=timeline if timeline is not None
        else [[] for _ in range(npes)],
        validation={"rows": [], "scale_wall_per_modelled": None,
                    "mape_pct": None},
        totals={"messages": 0, "message_bytes": 0, "copies": 0,
                "copy_elements": 0, "modelled_time_s": 0.0,
                "wall_s": 0.0,
                "messages_by_class": {c: 0 for c in MATRIX_CLASSES},
                "bytes_by_class": {c: 0 for c in MATRIX_CLASSES}},
        worker_tracks=worker_tracks)


def assert_valid_trace(doc, npes=4):
    assert set(doc) >= {"traceEvents", "displayTimeUnit"}
    json.dumps(doc)  # must be JSON-serializable as-is
    meta_tids = {e["tid"] for e in doc["traceEvents"]
                 if e["pid"] == EXEC_PID and e["ph"] == "M"
                 and e["name"] == "thread_name"}
    assert meta_tids == set(range(npes))
    for e in doc["traceEvents"]:
        if e["ph"] == "X":
            assert e["dur"] >= 0.0


class TestDegradation:
    def test_opless_profile(self):
        """Zero iterations / comm-free plan: metadata-only tracks."""
        doc = chrome_trace(make_profile())
        assert_valid_trace(doc)
        assert not [e for e in doc["traceEvents"] if e["ph"] == "X"]

    def test_empty_timeline_list(self):
        doc = chrome_trace(make_profile(timeline=[]))
        assert_valid_trace(doc)

    def test_truncated_timeline_rows(self):
        """A deserialized doc may carry fewer rows than PEs."""
        timeline = [[{"t0": 0.0, "t1": 1.0, "phase": "comm",
                      "op": 0, "name": "shift"}]]
        doc = chrome_trace(make_profile(timeline=timeline))
        assert_valid_trace(doc)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1 and slices[0]["tid"] == 0

    def test_missing_segment_fields(self):
        doc = chrome_trace(make_profile(timeline=[[{}], [], [], []]))
        assert_valid_trace(doc)
        (seg,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert seg["name"] == "?" and seg["dur"] == 0.0

    def test_negative_duration_clamped(self):
        timeline = [[{"t0": 5.0, "t1": 1.0, "phase": "comm",
                      "op": 0, "name": "x"}], [], [], []]
        (seg,) = [e for e in chrome_trace(
            make_profile(timeline=timeline))["traceEvents"]
            if e["ph"] == "X"]
        assert seg["dur"] == 0.0

    def test_worker_tracks_missing_fields(self):
        tracks = [{"events": [{}]},  # no worker id, no pes
                  {"worker": 1, "pes": [1, 3],
                   "events": [{"name": "nest", "t0": 0.0, "t1": -1.0}]}]
        doc = chrome_trace(make_profile(worker_tracks=tracks))
        assert_valid_trace(doc)
        wx = [e for e in doc["traceEvents"]
              if e["pid"] == WORKERS_PID and e["ph"] == "X"]
        assert len(wx) == 2
        assert all(e["dur"] >= 0.0 for e in wx)

    def test_round_trip_then_export(self):
        """to_dict -> from_dict -> chrome_trace, worker_tracks=None
        omitted from the doc along the way."""
        profile = make_profile()
        revived = CommProfile.from_dict(profile.to_dict())
        assert revived.worker_tracks is None
        assert_valid_trace(chrome_trace(revived))


class TestRealBackends:
    def test_compiled_backend_export(self):
        """The compiled backend (worker_tracks=None) must export the
        same PE tracks as perpe — regression for the export path the
        CLI --chrome flag drives."""
        from repro.codegen import codegen_options
        from repro.testing import preferred_test_jit
        with codegen_options(jit=preferred_test_jit()):
            result = run_kernel("five_point", grid=(2, 2),
                                bindings={"N": 8}, backend="compiled",
                                profile=True)
        doc = chrome_trace(result.profile)
        assert_valid_trace(doc)
        assert not [e for e in doc["traceEvents"]
                    if e["pid"] == WORKERS_PID]
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"]

    def test_parallel_backend_worker_tracks(self):
        result = run_kernel("five_point", grid=(2, 2),
                            bindings={"N": 8}, backend="parallel",
                            workers=2, profile=True)
        doc = chrome_trace(result.profile)
        assert_valid_trace(doc)
        worker_tids = {e["tid"] for e in doc["traceEvents"]
                       if e["pid"] == WORKERS_PID and e["ph"] == "X"}
        assert worker_tids == {0, 1}

    def test_zero_iteration_run_exports(self):
        result = run_kernel("five_point", grid=(2, 2),
                            bindings={"N": 8}, iterations=0,
                            profile=True)
        assert_valid_trace(chrome_trace(result.profile))
